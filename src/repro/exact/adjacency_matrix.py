"""Exact adjacency-matrix store with a dense node index.

Included for completeness and testing: the paper's Section III points out that
an adjacency matrix costs O(|V|^2) memory, which is why sketches are needed.
This implementation keeps a dict-of-dict matrix keyed by dense node indices so
small graphs can still be materialized and compared against the list store.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set

from repro.queries.primitives import SummaryShims


class AdjacencyMatrixGraph(SummaryShims):
    """Exact matrix-style store: row = source, column = destination."""

    def __init__(self) -> None:
        self._index_of: Dict[Hashable, int] = {}
        self._node_of: List[Hashable] = []
        self._rows: Dict[int, Dict[int, float]] = {}

    def _intern(self, node: Hashable) -> int:
        """Return (creating if needed) the dense index of ``node``."""
        index = self._index_of.get(node)
        if index is None:
            index = len(self._node_of)
            self._index_of[node] = index
            self._node_of.append(node)
        return index

    def update(self, source: Hashable, destination: Hashable, weight: float = 1.0) -> None:
        """Add ``weight`` to cell (source, destination)."""
        row = self._rows.setdefault(self._intern(source), {})
        column = self._intern(destination)
        new_weight = row.get(column, 0.0) + weight
        if new_weight == 0.0 and column in row:
            del row[column]
        else:
            row[column] = new_weight

    def edge_query(self, source: Hashable, destination: Hashable) -> Optional[float]:
        """Exact edge weight, or ``None`` when absent."""
        source_index = self._index_of.get(source)
        destination_index = self._index_of.get(destination)
        if source_index is None or destination_index is None:
            return None
        return self._rows.get(source_index, {}).get(destination_index)

    def successor_query(self, node: Hashable) -> Set[Hashable]:
        """Exact 1-hop successors of ``node``."""
        index = self._index_of.get(node)
        if index is None:
            return set()
        return {self._node_of[column] for column in self._rows.get(index, {})}

    def precursor_query(self, node: Hashable) -> Set[Hashable]:
        """Exact 1-hop precursors of ``node`` (column scan)."""
        index = self._index_of.get(node)
        if index is None:
            return set()
        result: Set[Hashable] = set()
        for row_index, columns in self._rows.items():
            if index in columns:
                result.add(self._node_of[row_index])
        return result

    @property
    def node_count(self) -> int:
        """Number of interned nodes."""
        return len(self._node_of)

    @property
    def edge_count(self) -> int:
        """Number of non-zero cells."""
        return sum(len(columns) for columns in self._rows.values())
