"""Sliding-window summarization built from per-slice GSS sketches.

The paper's subgraph-matching experiment (Figure 15) queries *windows* of the
stream, and its use cases (network monitoring, troubleshooting) naturally care
about "the graph of the last N minutes" rather than the whole history.  GSS
itself aggregates weights forever; this module layers a time-based sliding
window on top of it without touching the core sketch:

* the window of length ``window_span`` is divided into ``slices`` equal
  sub-intervals;
* every sub-interval owns an independent :class:`~repro.core.gss.GSS` built
  from the same :class:`~repro.core.config.GSSConfig`;
* an update with timestamp ``t`` goes to the slice covering ``t``; slices that
  fall out of the window are dropped wholesale, which makes expiry O(1) per
  slice instead of requiring per-edge deletions;
* queries are answered by combining the per-slice answers (sum of weights for
  edge/node queries, union for successor/precursor queries).

The result is an approximate sliding window: at any point the summary covers
between ``window_span * (slices - 1) / slices`` and ``window_span`` worth of
stream, exactly like the classic "panes"/"smooth histogram" constructions used
for window sketches.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.config import GSSConfig
from repro.core.gss import GSS
from repro.queries.primitives import Capabilities, SummaryShims


class WindowedGSS(SummaryShims):
    """Sliding-window graph-stream summary made of per-slice GSS sketches.

    Parameters
    ----------
    config:
        Configuration used for every per-slice sketch.  Each slice only holds
        a fraction of the window, so the per-slice width can be smaller than
        the width a monolithic sketch of the same stream would need.
    window_span:
        Length of the sliding window, in the same units as the stream item
        timestamps.
    slices:
        Number of sub-intervals the window is divided into.  More slices give
        a sharper window boundary at the cost of ``slices`` times the query
        work and memory.

    Examples
    --------
    >>> window = WindowedGSS(GSSConfig(matrix_width=32), window_span=60.0, slices=6)
    >>> window.update("a", "b", weight=1.0, timestamp=3.0)
    >>> window.update("a", "c", weight=2.0, timestamp=58.0)
    >>> window.edge_query("a", "b")
    1.0
    >>> window.update("x", "y", timestamp=500.0)       # far in the future
    >>> window.edge_query("a", "b") is None            # expired with its slice
    True
    """

    def __init__(self, config: GSSConfig, window_span: float, slices: int = 4) -> None:
        if window_span <= 0:
            raise ValueError("window_span must be positive")
        if slices < 1:
            raise ValueError("slices must be at least 1")
        self.config = config
        self.window_span = float(window_span)
        self.slices = slices
        self._slice_span = self.window_span / slices
        # slice index -> sketch for that sub-interval; only the slices inside
        # the current window are kept.
        self._sketches: Dict[int, GSS] = {}
        self._latest_timestamp: Optional[float] = None
        self._update_count = 0
        self._expired_slices = 0

    # -- window bookkeeping --------------------------------------------------

    def _slice_index(self, timestamp: float) -> int:
        """Index of the sub-interval that covers ``timestamp``."""
        return int(math.floor(timestamp / self._slice_span))

    def _evict_expired(self) -> None:
        """Drop every slice that ends before the start of the current window."""
        if self._latest_timestamp is None:
            return
        window_start = self._latest_timestamp - self.window_span
        expired = [
            index
            for index in self._sketches
            if (index + 1) * self._slice_span <= window_start
        ]
        for index in expired:
            del self._sketches[index]
            self._expired_slices += 1

    def _active_sketches(self) -> List[GSS]:
        """Sketches of the slices that intersect the current window."""
        return list(self._sketches.values())

    # -- updates ---------------------------------------------------------------

    def update(
        self,
        source: Hashable,
        destination: Hashable,
        weight: float = 1.0,
        timestamp: Optional[float] = None,
    ) -> None:
        """Apply one stream item with an explicit (or implicit) timestamp.

        When ``timestamp`` is omitted, items are assumed to arrive one time
        unit apart, which turns the window into a count-based window of
        ``window_span`` items.
        """
        if timestamp is None:
            timestamp = float(self._update_count)
        if self._latest_timestamp is not None and timestamp < self._latest_timestamp - self.window_span:
            # The item is already older than the whole window; nothing to record.
            self._update_count += 1
            return
        self._update_count += 1
        if self._latest_timestamp is None or timestamp > self._latest_timestamp:
            self._latest_timestamp = timestamp
        index = self._slice_index(timestamp)
        sketch = self._sketches.get(index)
        if sketch is None:
            sketch = GSS(self.config)
            self._sketches[index] = sketch
        sketch.update(source, destination, weight)
        self._evict_expired()

    def update_many(self, items: Iterable[Sequence]) -> int:
        """Apply a batch of stream items.

        Each item is a ``(source, destination, weight)`` triple or a
        ``(source, destination, weight, timestamp)`` quadruple; a missing (or
        ``None``) timestamp falls back to the implicit one-unit-per-item
        clock, exactly like :meth:`update`.  Items are routed to their slices
        first and each slice ingests its share through the batched
        :meth:`~repro.core.gss.GSS.update_many` fast path; slice eviction is
        deferred to the end of the batch, which yields the same final state
        because an evicted slice can never receive an in-window item again.

        Returns the number of items applied (including expired ones).
        """
        pending: Dict[int, List[Tuple[Hashable, Hashable, float]]] = {}
        count = 0
        for item in items:
            if len(item) == 4:
                source, destination, weight, timestamp = item
            else:
                source, destination, weight = item
                timestamp = None
            count += 1
            if timestamp is None:
                timestamp = float(self._update_count)
            if (
                self._latest_timestamp is not None
                and timestamp < self._latest_timestamp - self.window_span
            ):
                self._update_count += 1
                continue
            self._update_count += 1
            if self._latest_timestamp is None or timestamp > self._latest_timestamp:
                self._latest_timestamp = timestamp
            pending.setdefault(self._slice_index(timestamp), []).append(
                (source, destination, weight)
            )
        for index, triples in pending.items():
            sketch = self._sketches.get(index)
            if sketch is None:
                sketch = GSS(self.config)
                self._sketches[index] = sketch
            sketch.update_many(triples)
        self._evict_expired()
        return count

    def ingest(self, edges) -> "WindowedGSS":
        """Feed an iterable of :class:`~repro.streaming.edge.StreamEdge`."""
        self.update_many(
            (edge.source, edge.destination, edge.weight, edge.timestamp)
            for edge in edges
        )
        return self

    # -- queries ---------------------------------------------------------------

    def edge_query(self, source: Hashable, destination: Hashable) -> Optional[float]:
        """Aggregated in-window weight of the edge, or ``None`` when absent."""
        total = 0.0
        found = False
        for sketch in self._active_sketches():
            weight = sketch.edge_query(source, destination)
            if weight is not None:
                total += weight
                found = True
        return total if found else None

    def successor_query(self, node: Hashable) -> Set[Hashable]:
        """Union of the 1-hop successors reported by every live slice."""
        result: Set[Hashable] = set()
        for sketch in self._active_sketches():
            result.update(sketch.successor_query(node))
        return result

    def precursor_query(self, node: Hashable) -> Set[Hashable]:
        """Union of the 1-hop precursors reported by every live slice."""
        result: Set[Hashable] = set()
        for sketch in self._active_sketches():
            result.update(sketch.precursor_query(node))
        return result

    def node_out_weight(self, node: Hashable) -> float:
        """Total out-going weight of ``node`` inside the window."""
        return sum(sketch.node_out_weight(node) for sketch in self._active_sketches())

    def node_in_weight(self, node: Hashable) -> float:
        """Total in-coming weight of ``node`` inside the window."""
        return sum(sketch.node_in_weight(node) for sketch in self._active_sketches())

    # -- introspection ------------------------------------------------------------

    @property
    def active_slice_count(self) -> int:
        """Number of slices currently covering the window."""
        return len(self._sketches)

    @property
    def expired_slice_count(self) -> int:
        """Number of slices dropped so far because they aged out."""
        return self._expired_slices

    @property
    def update_count(self) -> int:
        """Number of stream items seen (including ones older than the window)."""
        return self._update_count

    @property
    def latest_timestamp(self) -> Optional[float]:
        """Timestamp of the most recent item, or ``None`` before any update."""
        return self._latest_timestamp

    def window_bounds(self) -> Optional[Tuple[float, float]]:
        """The ``(start, end)`` of the current window, or ``None`` when empty."""
        if self._latest_timestamp is None:
            return None
        return (self._latest_timestamp - self.window_span, self._latest_timestamp)

    def memory_bytes(self, include_node_index: bool = False) -> int:
        """Total memory of all live slices under the paper's C layout."""
        return sum(
            sketch.memory_bytes(include_node_index=include_node_index)
            for sketch in self._active_sketches()
        )

    def buffer_percentage(self) -> float:
        """Fraction of stored sketch edges that live in slice buffers."""
        matrix = sum(sketch.matrix_edge_count for sketch in self._active_sketches())
        buffered = sum(sketch.buffer_edge_count for sketch in self._active_sketches())
        total = matrix + buffered
        return buffered / total if total else 0.0

    @classmethod
    def capabilities(cls) -> Capabilities:
        """Feature descriptor: full query surface plus window expiry."""
        return Capabilities(windowed=True)
