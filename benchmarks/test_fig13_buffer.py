"""Benchmark: regenerate Figure 13 (buffer percentage, rooms x square hashing)."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import run_buffer_experiment
from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="module")
def buffer_config() -> ExperimentConfig:
    """Figure 13 uses the three larger datasets; we mirror that with the
    web / lkml / caida analogs and a width sweep around the recommended size."""
    return ExperimentConfig(
        datasets=("web-NotreDame", "lkml-reply", "caida-networkflow"),
        dataset_scale=0.25,
        width_factors=(0.8, 1.0, 1.2),
        fingerprint_bits=(16,),
        sequence_length=8,
        candidate_buckets=8,
    )


@pytest.mark.paper_artifact("fig13")
def test_fig13_buffer_percentage(benchmark, buffer_config):
    result = run_once(benchmark, run_buffer_experiment, buffer_config)
    print()
    print(result.to_text())

    def rows_of(configuration):
        return {
            (row["dataset"], row["width"]): row["buffer_pct"]
            for row in result.filter(configuration=configuration)
        }

    full = rows_of("Room=2")
    no_square = rows_of("Room=2(NoSquareHash)")
    one_room = rows_of("Room=1")
    one_room_no_square = rows_of("Room=1(NoSquareHash)")

    # Paper shape: square hashing is the dominant effect, multiple rooms help
    # further, and the fully improved GSS keeps the buffer near zero at the
    # recommended width.
    for key in full:
        assert full[key] <= no_square[key] + 1e-9
        assert one_room[key] <= one_room_no_square[key] + 1e-9
    widest = {key: value for key, value in full.items() if key[1] == max(k[1] for k in full)}
    assert all(value < 0.08 for value in widest.values())
