"""Accuracy metrics (Section VII-B of the paper).

* **Average Relative Error (ARE)** for edge and node queries:
  ``RE(q) = f_hat(q) / f(q) - 1`` averaged over the query set.
* **Average Precision** for 1-hop successor / precursor queries and pattern
  matching: ``|SS| / |SS_hat|`` where ``SS`` is the true neighbour set and
  ``SS_hat ⊇ SS`` the reported one (GSS and TCM have no false negatives).
* **True Negative Recall** for reachability: the fraction of genuinely
  unreachable query pairs reported as unreachable.
* **Buffer Percentage**: buffered edges divided by the total edges considered.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Set, Tuple


def relative_error(estimate: float, truth: float) -> float:
    """``estimate / truth - 1`` (the paper's RE); requires a non-zero truth."""
    if truth == 0:
        raise ValueError("relative error is undefined for a true value of zero")
    return estimate / truth - 1.0


def average_relative_error(pairs: Iterable[Tuple[float, float]]) -> float:
    """Mean relative error over ``(estimate, truth)`` pairs (ARE)."""
    errors = [relative_error(estimate, truth) for estimate, truth in pairs]
    if not errors:
        return 0.0
    return sum(errors) / len(errors)


def precision(true_set: Set, reported_set: Set) -> float:
    """``|SS| / |SS_hat|`` for one successor/precursor query.

    An empty reported set with an empty true set counts as a perfect answer;
    an empty reported set that misses true members scores 0 (cannot happen
    with GSS/TCM, which have no false negatives, but exact stores may be
    compared against stale truths in tests).
    """
    if not reported_set:
        return 1.0 if not true_set else 0.0
    return len(true_set & reported_set) / len(reported_set)


def average_precision(pairs: Iterable[Tuple[Set, Set]]) -> float:
    """Mean precision over ``(true_set, reported_set)`` pairs."""
    values = [precision(true_set, reported) for true_set, reported in pairs]
    if not values:
        return 0.0
    return sum(values) / len(values)


def true_negative_recall(reported_reachable: Sequence[bool]) -> float:
    """Fraction of (all unreachable) query pairs reported as unreachable."""
    if not reported_reachable:
        return 0.0
    negatives = sum(1 for reachable in reported_reachable if not reachable)
    return negatives / len(reported_reachable)


def buffer_percentage(buffered_edges: int, total_edges: int) -> float:
    """Buffered edges as a fraction of ``total_edges`` (Figure 13's metric)."""
    if total_edges <= 0:
        return 0.0
    return buffered_edges / total_edges
