"""The bundled synchronous client — :class:`ServeClient`.

Speaks the frame protocol of :mod:`repro.serve.protocol` over one TCP
connection.  The client is deliberately synchronous (plain sockets): ingest
feeds and load generators run it from ordinary threads, and the pipelining
the protocol needs — a window of unacknowledged ingest frames — is explicit
state here rather than an event loop.

Hash-once over the network: the server's hello frame advertises the
cluster's :class:`~repro.streaming.batch.HashSpec` (node hash family plus
routing seed).  :meth:`ingest` builds each chunk into a
:class:`~repro.streaming.batch.HashedBatch` against that spec — with
cross-batch memos, so a key seen twice is hashed once — and ships the
columns in a binary frame.  Server and workers never hash those keys again.
When either side lacks NumPy the same chunks travel as JSON item lists and
the server hashes them (the documented degrade, mirroring the cluster's
``shm`` → ``pipe`` fallback).

Backpressure: up to ``credits`` (server-granted) ingest frames may be in
flight.  On a ``busy`` reply the client stops sending, drains every
outstanding reply — the server's sticky busy mode guarantees the remainder
are ``busy`` too, preserving order — sleeps the server's ``retry_after``
hint, sends ``resume``, and resends the bounced frames in their original
order.  :meth:`drain` blocks until every sent frame is applied; every query
drains first, so a query observes everything the same client ingested
before it (read-your-writes).
"""

from __future__ import annotations

import json
import socket
import time
from collections import deque
from typing import Hashable, Iterable, List, Optional, Set, Tuple

from repro.serve import protocol
from repro.streaming.batch import HashedBatch, HashSpec

__all__ = [
    "ServeClient",
    "ServeClientError",
    "ServerBusy",
    "fetch_http_metrics",
    "fetch_http_metrics_text",
]


class ServeClientError(RuntimeError):
    """The server reported an error, or the connection broke."""


class ServerBusy(ServeClientError):
    """Raised only when ``max_busy_retries`` is exhausted."""


class ServeClient:
    """One protocol connection to a :class:`~repro.serve.SummaryServer`.

    Parameters
    ----------
    host, port:
        The server address.
    batch_size:
        Items per ingest frame built by :meth:`ingest`.
    max_busy_retries:
        Rounds of busy-backoff per frame before :class:`ServerBusy` is
        raised (a round = drain + sleep + resume + resend).
    timeout:
        Socket timeout in seconds.

    Examples
    --------
    ::

        with ServeClient("127.0.0.1", 8750) as client:
            client.ingest([("a", "b", 1.0), ("a", "c", 2.0)])
            client.flush()
            client.edge_query("a", "b")   # -> 1.0
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        batch_size: int = 1024,
        max_busy_retries: int = 200,
        timeout: float = 30.0,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.batch_size = batch_size
        self.max_busy_retries = max_busy_retries
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._file = self._sock.makefile("rwb")
        self._closed = False
        #: Frames sent but not yet acknowledged: (frame bytes, item count).
        self._outstanding: deque = deque()
        self._node_memo: dict = {}
        self._route_memo: dict = {}
        # Counters the load generator reports.
        self.items_sent = 0
        self.frames_sent = 0
        self.busy_retries = 0

        hello = self._round_trip({"op": "hello"})
        if hello.get("op") != "hello":
            raise ServeClientError(f"unexpected hello reply: {hello!r}")
        self.server_info = hello
        self.credits = max(1, int(hello.get("credits", 1)))
        self.retry_after = float(hello.get("retry_after", 0.05))
        self.workers: Optional[int] = hello.get("workers")
        self.hash_spec: Optional[HashSpec] = protocol.spec_from_wire(
            hello.get("hash_spec")
        )
        self.binary_ingest = bool(
            hello.get("binary_ingest")
            and protocol.binary_ingest_supported()
            and self.hash_spec is not None
        )

    # -- low-level frame IO --------------------------------------------------

    def _read_exact(self, count: int) -> bytes:
        data = self._file.read(count)
        if data is None or len(data) != count:
            raise ServeClientError("server closed the connection")
        return data

    def _send_frame(self, frame: bytes) -> None:
        try:
            self._file.write(frame)
            self._file.flush()
        except (BrokenPipeError, ConnectionError, OSError) as error:
            raise ServeClientError(f"connection lost: {error}") from None

    def _read_reply(self) -> dict:
        try:
            kind, payload = protocol.read_frame(self._read_exact)
        except (ConnectionError, OSError, protocol.ProtocolError) as error:
            raise ServeClientError(f"connection lost: {error}") from None
        if kind != protocol.FRAME_JSON:
            raise ServeClientError(f"unexpected reply frame kind {kind}")
        return protocol.decode_json_payload(payload)

    def _round_trip(self, document: dict) -> dict:
        """Send one op and read its reply (no outstanding frames allowed)."""
        self._send_frame(protocol.pack_json(document))
        reply = self._read_reply()
        if reply.get("op") == "error":
            raise ServeClientError(reply.get("error", "unknown server error"))
        return reply

    # -- ingest pipeline -----------------------------------------------------

    def _encode_batch(self, items: List[Tuple[Hashable, Hashable, float]]) -> Tuple[bytes, int]:
        """Build one ingest frame: hashed+binary when negotiated, JSON else."""
        if self.binary_ingest:
            batch = HashedBatch.from_items(
                items,
                self.hash_spec,
                node_memo=self._node_memo,
                route_memo=self._route_memo,
            )
            return protocol.encode_ingest_frame(batch), len(batch)
        return (
            protocol.pack_json({"op": "ingest", "items": [list(item) for item in items]}),
            len(items),
        )

    def _consume_ack(self) -> None:
        """Read one ingest acknowledgement; run the busy-recovery dance."""
        reply = self._read_reply()
        operation = reply.get("op")
        if operation == "ok":
            self._outstanding.popleft()
            return
        if operation == "error":
            self._outstanding.popleft()
            raise ServeClientError(reply.get("error", "ingest failed"))
        if operation != "busy":
            raise ServeClientError(f"unexpected ingest reply: {reply!r}")
        # Busy: the oldest outstanding frame was rejected, and the server's
        # sticky busy mode rejects every later one — drain them all into a
        # retry list (their order is their stream order), back off, resume,
        # resend.
        retry_after = float(reply.get("retry_after", self.retry_after))
        bounced = [self._outstanding.popleft()]
        while self._outstanding:
            follow_up = self._read_reply()
            if follow_up.get("op") != "busy":  # pragma: no cover - defensive
                raise ServeClientError(
                    f"expected busy for pipelined frame, got {follow_up!r}"
                )
            bounced.append(self._outstanding.popleft())
        for attempt in range(self.max_busy_retries):
            self.busy_retries += 1
            time.sleep(retry_after)
            resume = self._round_trip({"op": "resume"})
            if resume.get("op") != "ok":  # pragma: no cover - defensive
                raise ServeClientError(f"unexpected resume reply: {resume!r}")
            for frame, count in bounced:
                self._send_frame(frame)
            rejected = []
            for frame_entry in bounced:
                reply = self._read_reply()
                operation = reply.get("op")
                if operation == "ok":
                    continue
                if operation == "busy":
                    retry_after = float(reply.get("retry_after", retry_after))
                    rejected.append(frame_entry)
                else:
                    raise ServeClientError(
                        reply.get("error", f"unexpected retry reply: {reply!r}")
                    )
            if not rejected:
                return
            bounced = rejected
        raise ServerBusy(
            f"server still busy after {self.max_busy_retries} retries"
        )

    def ingest_batch(self, items: List[Tuple[Hashable, Hashable, float]]) -> None:
        """Ship one pre-chunked batch (pipelined within the credit window)."""
        if not items:
            return
        self._ensure_open()
        frame, count = self._encode_batch(items)
        while len(self._outstanding) >= self.credits:
            self._consume_ack()
        self._outstanding.append((frame, count))
        self._send_frame(frame)
        self.frames_sent += 1
        self.items_sent += count

    def ingest(self, items: Iterable) -> int:
        """Feed any iterable of items/edges, chunked by ``batch_size``."""
        total = 0
        chunk: List[Tuple[Hashable, Hashable, float]] = []
        for item in items:
            if hasattr(item, "source"):
                chunk.append((item.source, item.destination, item.weight))
            else:
                chunk.append((item[0], item[1], item[2]))
            if len(chunk) >= self.batch_size:
                self.ingest_batch(chunk)
                total += len(chunk)
                chunk = []
        if chunk:
            self.ingest_batch(chunk)
            total += len(chunk)
        return total

    def update(self, source: Hashable, destination: Hashable, weight: float = 1.0) -> None:
        """Convenience scalar update (one item, one frame)."""
        self.ingest_batch([(source, destination, weight)])

    def drain(self) -> None:
        """Block until every sent ingest frame has been applied."""
        while self._outstanding:
            self._consume_ack()

    # -- queries (drain first: read-your-writes) -----------------------------

    def _call(self, method: str, *args):
        self._ensure_open()
        self.drain()
        reply = self._round_trip(
            {
                "op": "call",
                "method": method,
                "args": [protocol.encode_value(value) for value in args],
            }
        )
        return protocol.decode_value(reply.get("value"))

    def edge_query(self, source: Hashable, destination: Hashable) -> Optional[float]:
        return self._call("edge_query", source, destination)

    def successor_query(self, node: Hashable) -> Set[Hashable]:
        return self._call("successor_query", node)

    def precursor_query(self, node: Hashable) -> Set[Hashable]:
        return self._call("precursor_query", node)

    def node_out_weight(self, node: Hashable) -> float:
        return self._call("node_out_weight", node)

    def node_in_weight(self, node: Hashable) -> float:
        return self._call("node_in_weight", node)

    def memory_bytes(self) -> int:
        return self._call("memory_bytes")

    # -- control ops ---------------------------------------------------------

    def flush(self) -> None:
        """Server-side barrier: every routed batch applied on every shard."""
        self._ensure_open()
        self.drain()
        self._round_trip({"op": "flush"})

    def checkpoint(self) -> str:
        """Ask the server to checkpoint into its configured directory."""
        self._ensure_open()
        self.drain()
        return self._round_trip({"op": "checkpoint"}).get("value")

    def metrics(self) -> dict:
        """The server's metrics document (same content as ``GET /metrics``)."""
        self._ensure_open()
        self.drain()
        return self._round_trip({"op": "metrics"}).get("metrics", {})

    # -- lifecycle -----------------------------------------------------------

    def _ensure_open(self) -> None:
        if self._closed:
            raise ServeClientError("the client has been closed")

    def close(self) -> None:
        """Drain outstanding frames, say goodbye, close the socket."""
        if self._closed:
            return
        try:
            self.drain()
            self._send_frame(protocol.pack_json({"op": "close"}))
            reply = self._read_reply()
            if reply.get("op") != "bye":  # pragma: no cover - defensive
                pass
        except ServeClientError:
            pass  # already disconnected
        finally:
            self._closed = True
            try:
                self._file.close()
            except OSError:  # pragma: no cover
                pass
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def fetch_http_metrics(host: str, port: int, timeout: float = 5.0) -> dict:
    """``GET /metrics`` over a throwaway socket (no protocol client needed)."""
    body = _fetch_http(host, port, accept=None, timeout=timeout)
    return json.loads(body.decode("utf-8"))


def fetch_http_metrics_text(host: str, port: int, timeout: float = 5.0) -> str:
    """``GET /metrics`` with ``Accept: text/plain`` — Prometheus exposition."""
    body = _fetch_http(host, port, accept="text/plain", timeout=timeout)
    return body.decode("utf-8")


def _fetch_http(
    host: str, port: int, *, accept: Optional[str], timeout: float
) -> bytes:
    request = "GET /metrics HTTP/1.0\r\n"
    if accept is not None:
        request += f"Accept: {accept}\r\n"
    request += "\r\n"
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(request.encode("ascii"))
        chunks = []
        while True:
            data = sock.recv(65536)
            if not data:
                break
            chunks.append(data)
    response = b"".join(chunks)
    head, _, body = response.partition(b"\r\n\r\n")
    status = head.split(b"\r\n", 1)[0].decode("latin-1", "replace")
    if " 200 " not in status + " ":
        raise ServeClientError(f"metrics endpoint answered {status!r}")
    return body
