#!/usr/bin/env python
"""Calibrate ``GSSConfig.scalar_tail_threshold`` for this machine.

The NumPy matrix backend routes small "tails" of a batch — the handful of
genuinely new edges (or unknown items) left over after the memoized
whole-array pass — through the scalar helpers instead of the vectorized
pipeline, because fixed per-call NumPy overhead beats vectorization on tiny
inputs.  The crossover point is machine-dependent; this script sweeps the
threshold over the Table I streams and reports the measured throughput per
setting, so the default (``NumpyMatrixBackend._SCALAR_TAIL_DEFAULT``, 96 at
the time of writing) can be re-checked on new hardware.

Placement is threshold-independent by construction (both paths share the
same address/candidate memos), so this is purely a speed knob — the sweep
asserts that queries agree across settings as a sanity check.

Usage::

    PYTHONPATH=src python scripts/calibrate_scalar_tail.py            # bench scale
    PYTHONPATH=src python scripts/calibrate_scalar_tail.py --quick    # smoke
    PYTHONPATH=src python scripts/calibrate_scalar_tail.py \
        --thresholds 0 32 64 96 128 256 --repeats 3
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.backends import NUMPY_AVAILABLE  # noqa: E402
from repro.core.config import GSSConfig  # noqa: E402
from repro.core.gss import GSS  # noqa: E402
from repro.experiments.config import ExperimentConfig, load_streams  # noqa: E402

DEFAULT_THRESHOLDS = (0, 16, 32, 48, 64, 96, 128, 192, 256)


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="tiny smoke configuration instead of bench scale")
    parser.add_argument("--scale", type=float, default=None,
                        help="override the dataset scale factor")
    parser.add_argument("--batch-size", type=int, default=1024,
                        help="update_many chunk size (default 1024)")
    parser.add_argument("--repeats", type=int, default=1,
                        help="cold runs averaged per threshold (default 1)")
    parser.add_argument("--thresholds", type=int, nargs="+",
                        default=list(DEFAULT_THRESHOLDS),
                        help="scalar_tail_threshold values to sweep")
    return parser.parse_args(argv)


def sketch_config(config: ExperimentConfig, width: int, threshold: int) -> GSSConfig:
    return GSSConfig(
        matrix_width=width,
        fingerprint_bits=max(config.fingerprint_bits),
        rooms=config.rooms,
        sequence_length=config.sequence_length,
        candidate_buckets=config.candidate_buckets,
        seed=config.seed,
        backend="numpy",
        scalar_tail_threshold=threshold,
    )


def measure(config: GSSConfig, edges, batch_size: int, repeats: int):
    """Average cold-ingest time over ``repeats`` fresh sketches."""
    elapsed = 0.0
    sketch = None
    for _ in range(repeats):
        sketch = GSS(config)
        begin = time.perf_counter()
        for start in range(0, len(edges), batch_size):
            sketch.update_many(edges[start : start + batch_size])
        elapsed += time.perf_counter() - begin
    return elapsed / repeats, sketch


def main(argv=None) -> int:
    args = parse_args(argv)
    if not NUMPY_AVAILABLE:
        print("NumPy is not available; the scalar tail only exists on the "
              "numpy backend, nothing to calibrate.")
        return 1
    config = ExperimentConfig.quick() if args.quick else ExperimentConfig()
    if args.scale is not None:
        config.dataset_scale = args.scale

    recommendations = {}
    for name, stream in load_streams(config):
        width = config.recommended_width(stream.statistics())
        edges = [(e.source, e.destination, e.weight) for e in stream]
        print(f"== {name}: {len(edges)} edges, width {width}, "
              f"batch {args.batch_size} ==")
        rates = {}
        reference_answers = None
        probe = edges[: min(200, len(edges))]
        for threshold in args.thresholds:
            seconds, sketch = measure(
                sketch_config(config, width, threshold),
                edges, args.batch_size, args.repeats,
            )
            rates[threshold] = len(edges) / seconds if seconds else 0.0
            answers = [sketch.edge_query(s, d) for s, d, _ in probe]
            if reference_answers is None:
                reference_answers = answers
            elif answers != reference_answers:
                print(f"!! threshold {threshold} changed query results — "
                      f"placement must be threshold-independent", file=sys.stderr)
                return 1
            print(f"  scalar_tail_threshold={threshold:<4d} "
                  f"{rates[threshold]:>12,.0f} edges/s")
        best = max(rates, key=rates.get)
        recommendations[name] = best
        print(f"  -> best on {name}: {best} "
              f"({rates[best] / rates[min(rates)] - 1:+.1%} vs "
              f"threshold {min(rates)})")
    print()
    print("per-dataset best thresholds:", recommendations)
    print("(the default is deliberately a midpoint of the flat region — "
          "only change GSSConfig.scalar_tail_threshold or "
          "NumpyMatrixBackend._SCALAR_TAIL_DEFAULT if the sweep is "
          "consistently off the plateau)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
