"""Stream perturbations for robustness and failure-injection tests.

GSS must behave sensibly on streams that are messier than the clean analogs:
bursts of duplicates, deletions (negative weights), adversarially skewed
sources and re-orderings.  Each perturbation takes a
:class:`~repro.streaming.stream.GraphStream` and returns a new one, leaving
the input untouched, so test cases can compose them freely.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Hashable, List, Optional

from repro.streaming.edge import StreamEdge
from repro.streaming.stream import GraphStream


def inject_duplicates(
    stream: GraphStream, duplication_factor: float, seed: int = 71
) -> GraphStream:
    """Replay a random subset of items so the stream has extra duplicates.

    ``duplication_factor`` is the expected number of *extra* copies per item;
    0.5 roughly multiplies the item count by 1.5.  Timestamps of the copies
    follow the original item so arrival order stays realistic.
    """
    if duplication_factor < 0:
        raise ValueError("duplication_factor must be non-negative")
    rng = random.Random(seed)
    items: List[StreamEdge] = []
    for edge in stream:
        items.append(edge)
        copies = int(duplication_factor)
        if rng.random() < (duplication_factor - copies):
            copies += 1
        for copy_index in range(copies):
            items.append(
                StreamEdge(
                    source=edge.source,
                    destination=edge.destination,
                    weight=edge.weight,
                    timestamp=edge.timestamp + (copy_index + 1) * 1e-3,
                    label=edge.label,
                )
            )
    return GraphStream(items, name=stream.name)


def inject_deletions(
    stream: GraphStream, deletion_fraction: float, seed: int = 73
) -> GraphStream:
    """Append deletion items (negative weights) for a fraction of the edges.

    Each selected item gets a matching item with the opposite weight appended
    at the end of the stream, exercising the streaming-graph semantics of
    Definition 1 ("an item with w < 0 means deleting a former data item").
    """
    if not 0.0 <= deletion_fraction <= 1.0:
        raise ValueError("deletion_fraction must be in [0, 1]")
    rng = random.Random(seed)
    items = list(stream)
    deletions: List[StreamEdge] = []
    last_timestamp = items[-1].timestamp if items else 0.0
    for edge in items:
        if rng.random() < deletion_fraction:
            last_timestamp += 1.0
            deletions.append(
                StreamEdge(
                    source=edge.source,
                    destination=edge.destination,
                    weight=-edge.weight,
                    timestamp=last_timestamp,
                    label=edge.label,
                )
            )
    return GraphStream(items + deletions, name=stream.name)


def shuffle_stream(stream: GraphStream, seed: int = 79) -> GraphStream:
    """Randomly permute arrival order (timestamps are re-assigned in order)."""
    rng = random.Random(seed)
    items = list(stream)
    rng.shuffle(items)
    stamped = [
        StreamEdge(
            source=edge.source,
            destination=edge.destination,
            weight=edge.weight,
            timestamp=float(position),
            label=edge.label,
        )
        for position, edge in enumerate(items)
    ]
    return GraphStream(stamped, name=stream.name)


def burst_stream(
    stream: GraphStream, burst_edge_index: int = 0, burst_size: int = 100, seed: int = 83
) -> GraphStream:
    """Insert a burst of repetitions of one edge in the middle of the stream.

    Models a sudden traffic spike (DDoS-like pattern in the network use case):
    the ``burst_edge_index``-th distinct edge is replayed ``burst_size`` times
    half-way through the stream.
    """
    if burst_size < 0:
        raise ValueError("burst_size must be non-negative")
    keys = stream.distinct_edge_keys()
    if not keys:
        return GraphStream([], name=stream.name)
    source, destination = keys[burst_edge_index % len(keys)]
    rng = random.Random(seed)
    items = list(stream)
    middle = len(items) // 2
    base_timestamp = items[middle - 1].timestamp if middle > 0 else 0.0
    burst = [
        StreamEdge(
            source=source,
            destination=destination,
            weight=float(rng.randint(1, 5)),
            timestamp=base_timestamp + (position + 1) * 1e-3,
        )
        for position in range(burst_size)
    ]
    return GraphStream(items[:middle] + burst + items[middle:], name=stream.name)


def adversarial_single_row_stream(
    edge_count: int, hub: Hashable = "hub", name: str = "adversarial-row"
) -> GraphStream:
    """Every edge shares one source node — the worst case for a single row.

    Without square hashing all these edges map to the same matrix row, so at
    most ``width * rooms`` of them fit and the rest spill to the buffer; with
    square hashing they spread over ``r`` rows.  The buffer ablation uses this
    stream to demonstrate the difference at its most extreme.
    """
    if edge_count < 0:
        raise ValueError("edge_count must be non-negative")
    items = [
        StreamEdge(source=hub, destination=f"d{index}", weight=1.0, timestamp=float(index))
        for index in range(edge_count)
    ]
    return GraphStream(items, name=name)


def relabel_nodes(
    stream: GraphStream,
    mapping: Optional[Dict[Hashable, Hashable]] = None,
    prefix: str = "x",
) -> GraphStream:
    """Rename every node, either through ``mapping`` or with a fresh prefix.

    Renaming must not change any structural property of the summarized graph;
    the property-based tests use this to assert that GSS accuracy metrics are
    invariant under node relabeling (up to hash randomness).
    """
    assigned: Dict[Hashable, Hashable] = dict(mapping) if mapping else {}

    def rename(node: Hashable) -> Hashable:
        if node not in assigned:
            assigned[node] = f"{prefix}{len(assigned)}"
        return assigned[node]

    items = [
        StreamEdge(
            source=rename(edge.source),
            destination=rename(edge.destination),
            weight=edge.weight,
            timestamp=edge.timestamp,
            label=edge.label,
        )
        for edge in stream
    ]
    return GraphStream(items, name=stream.name)


def apply_chain(stream: GraphStream, *perturbations: Callable[[GraphStream], GraphStream]) -> GraphStream:
    """Apply several perturbations left to right and return the final stream."""
    current = stream
    for perturbation in perturbations:
        current = perturbation(current)
    return current
