"""Experiment harness: one runner per table and figure of the paper.

Every runner takes an :class:`~repro.experiments.config.ExperimentConfig`
(whose defaults are sized so a full run finishes on a laptop in pure Python)
and returns an :class:`~repro.experiments.report.ExperimentResult` holding the
result rows plus a plain-text table identical in structure to the paper's
artifact.  ``python -m repro <experiment>`` prints those tables from the
command line; the pytest-benchmark modules under ``benchmarks/`` call the same
runners.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import ExperimentResult, format_table
from repro.experiments.theory import run_figure3
from repro.experiments.edge_query import run_edge_query_experiment
from repro.experiments.successor_precursor import (
    run_precursor_experiment,
    run_successor_experiment,
)
from repro.experiments.node_query import run_node_query_experiment
from repro.experiments.reachability import run_reachability_experiment
from repro.experiments.buffer_size import run_buffer_experiment
from repro.experiments.update_speed import run_update_speed_experiment
from repro.experiments.triangle import run_triangle_experiment
from repro.experiments.subgraph import run_subgraph_experiment
from repro.experiments.ablation import (
    run_candidate_ablation,
    run_fingerprint_ablation,
    run_rooms_ablation,
    run_sequence_length_ablation,
)
from repro.experiments.window import run_window_experiment
from repro.experiments.partition import run_partition_experiment
from repro.experiments.heavy_change import run_heavy_changer_experiment
from repro.experiments.algorithms import run_algorithm_agreement_experiment
from repro.experiments.memory_comparison import run_memory_experiment

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "format_table",
    "run_figure3",
    "run_edge_query_experiment",
    "run_successor_experiment",
    "run_precursor_experiment",
    "run_node_query_experiment",
    "run_reachability_experiment",
    "run_buffer_experiment",
    "run_update_speed_experiment",
    "run_triangle_experiment",
    "run_subgraph_experiment",
    "run_fingerprint_ablation",
    "run_sequence_length_ablation",
    "run_candidate_ablation",
    "run_rooms_ablation",
    "run_window_experiment",
    "run_partition_experiment",
    "run_heavy_changer_experiment",
    "run_algorithm_agreement_experiment",
    "run_memory_experiment",
]
