"""Figure 12 — true-negative recall of reachability queries.

The query set contains only node pairs that are unreachable in the exact
streaming graph (as in the paper), so the metric is the fraction of pairs the
summary correctly reports as unreachable.  False-positive edges in a summary
can create spurious paths, which is exactly what distinguishes GSS from TCM.

For efficiency the runner materializes the summarized successor relation once
per structure (one successor query per node) and answers all reachability
pairs by BFS over that adjacency; the result is identical to running BFS with
per-step successor queries because the node set is fixed.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Sequence, Set, Tuple

from repro.datasets.synthetic import unreachable_pairs
from repro.experiments.config import ExperimentConfig, load_streams
from repro.experiments.report import ExperimentResult
from repro.metrics.accuracy import true_negative_recall


def materialized_successors(store, nodes) -> Dict[Hashable, Set[Hashable]]:
    """One successor query per node, restricted to the known node set."""
    node_set = set(nodes)
    return {
        node: {successor for successor in store.successor_query(node) if successor in node_set}
        for node in node_set
    }


def reachable_in_adjacency(
    adjacency: Dict[Hashable, Set[Hashable]], source: Hashable, destination: Hashable
) -> bool:
    """BFS reachability over a materialized successor map."""
    if source == destination:
        return True
    visited = {source}
    queue = deque([source])
    while queue:
        current = queue.popleft()
        for successor in adjacency.get(current, ()):  # pragma: no branch
            if successor == destination:
                return True
            if successor not in visited:
                visited.add(successor)
                queue.append(successor)
    return False


def _recall_of(store, nodes, pairs: Sequence[Tuple[Hashable, Hashable]]) -> float:
    adjacency = materialized_successors(store, nodes)
    outcomes = [
        reachable_in_adjacency(adjacency, source, destination)
        for source, destination in pairs
    ]
    return true_negative_recall(outcomes)


def run_reachability_experiment(config: ExperimentConfig = None) -> ExperimentResult:
    """Reproduce Figure 12: true-negative recall for GSS and memory-boosted TCM."""
    config = config or ExperimentConfig()
    result = ExperimentResult(
        experiment="fig12",
        description="true negative recall of reachability queries vs matrix width",
        columns=["dataset", "width", "structure", "true_negative_recall"],
    )
    for name, stream in load_streams(config):
        statistics = stream.statistics()
        pairs = unreachable_pairs(stream, config.reachability_pairs, seed=config.seed)
        if not pairs:
            continue
        nodes = stream.nodes()
        for width in config.widths_for(statistics):
            reference = None
            for bits in config.fingerprint_bits:
                sketch = config.feed(config.build_gss(width, bits), stream)
                if bits == max(config.fingerprint_bits):
                    reference = sketch
                result.add(
                    dataset=name,
                    width=width,
                    structure=f"GSS(fsize={bits})",
                    true_negative_recall=_recall_of(sketch, nodes, pairs),
                )
            tcm = config.feed(
                config.build_tcm(reference, config.tcm_topology_memory_ratio), stream
            )
            result.add(
                dataset=name,
                width=width,
                structure=f"TCM({int(config.tcm_topology_memory_ratio)}x memory)",
                true_negative_recall=_recall_of(tcm, nodes, pairs),
            )
            for extra_name in config.extra_sketches_with("successor_queries"):
                extra = config.feed(
                    config.build_sketch(
                        extra_name, reference.config.matrix_memory_bytes()
                    ),
                    stream,
                )
                result.add(
                    dataset=name,
                    width=width,
                    structure=f"{extra_name}(equal memory)",
                    true_negative_recall=_recall_of(extra, nodes, pairs),
                )
    return result
