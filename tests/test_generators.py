"""Tests for the random-graph stream generators."""

from __future__ import annotations

import pytest

from repro.datasets.generators import (
    barabasi_albert_stream,
    bipartite_stream,
    complete_graph_stream,
    erdos_renyi_stream,
    rmat_stream,
    star_stream,
)


class TestErdosRenyi:
    def test_edge_count(self):
        stream = erdos_renyi_stream(100, 300, seed=1)
        assert stream.statistics().distinct_edges == 300

    def test_no_duplicates_by_default(self):
        stream = erdos_renyi_stream(50, 200, seed=2)
        stats = stream.statistics()
        assert stats.item_count == stats.distinct_edges

    def test_allow_duplicates(self):
        stream = erdos_renyi_stream(10, 200, seed=3, allow_duplicates=True)
        stats = stream.statistics()
        assert stats.item_count >= stats.distinct_edges

    def test_no_self_loops(self):
        stream = erdos_renyi_stream(20, 100, seed=4)
        assert all(edge.source != edge.destination for edge in stream)

    def test_deterministic_under_seed(self):
        first = erdos_renyi_stream(30, 60, seed=5)
        second = erdos_renyi_stream(30, 60, seed=5)
        assert [e.key for e in first] == [e.key for e in second]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            erdos_renyi_stream(1, 10)
        with pytest.raises(ValueError):
            erdos_renyi_stream(10, -1)


class TestBarabasiAlbert:
    def test_produces_edges(self):
        stream = barabasi_albert_stream(200, edges_per_node=3, seed=6)
        assert len(stream) > 200

    def test_degree_skew(self):
        stream = barabasi_albert_stream(300, edges_per_node=3, seed=7)
        stats = stream.statistics()
        average_in = stats.distinct_edges / max(1, stats.node_count)
        assert stats.max_in_degree > 3 * average_in

    def test_no_self_loops(self):
        stream = barabasi_albert_stream(100, seed=8)
        assert all(edge.source != edge.destination for edge in stream)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            barabasi_albert_stream(1)
        with pytest.raises(ValueError):
            barabasi_albert_stream(10, edges_per_node=0)


class TestRMAT:
    def test_item_count_close_to_requested(self):
        stream = rmat_stream(8, 2000, seed=9)
        # Self-loops are skipped, so the count can be slightly below target.
        assert 0.9 * 2000 <= len(stream) <= 2000

    def test_nodes_within_scale(self):
        stream = rmat_stream(6, 500, seed=10)
        limit = 2 ** 6
        for edge in stream:
            assert int(edge.source[1:]) < limit
            assert int(edge.destination[1:]) < limit

    def test_skewed_endpoints(self):
        stream = rmat_stream(8, 4000, seed=11)
        stats = stream.statistics()
        assert stats.max_out_degree > 4 * stats.distinct_edges / max(1, stats.node_count)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            rmat_stream(0, 10)
        with pytest.raises(ValueError):
            rmat_stream(4, -1)
        with pytest.raises(ValueError):
            rmat_stream(4, 10, probabilities=(0.5, 0.5, 0.5, 0.5))


class TestBipartite:
    def test_endpoints_stay_on_their_side(self):
        stream = bipartite_stream(20, 30, 200, seed=12)
        for edge in stream:
            assert edge.source.startswith("u")
            assert edge.destination.startswith("i")

    def test_item_count(self):
        assert len(bipartite_stream(10, 10, 150, seed=13)) == 150

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            bipartite_stream(0, 10, 5)
        with pytest.raises(ValueError):
            bipartite_stream(10, 10, -1)


class TestCompleteAndStar:
    def test_complete_edge_count(self):
        stream = complete_graph_stream(5)
        assert len(stream) == 5 * 4

    def test_complete_with_self_loops(self):
        stream = complete_graph_stream(4, include_self_loops=True)
        assert len(stream) == 16

    def test_complete_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            complete_graph_stream(0)

    def test_star_out_edges(self):
        stream = star_stream(10)
        assert all(edge.source == "hub" for edge in stream)
        assert len(stream) == 10

    def test_star_reversed(self):
        stream = star_stream(10, reversed_edges=True)
        assert all(edge.destination == "hub" for edge in stream)

    def test_star_rejects_zero_leaves(self):
        with pytest.raises(ValueError):
            star_stream(0)
