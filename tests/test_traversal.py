"""Tests for the traversal algorithms built on the query primitives."""

from __future__ import annotations

import pytest

from repro.core.config import GSSConfig
from repro.core.gss import GSS
from repro.exact.adjacency_list import AdjacencyListGraph
from repro.queries.traversal import (
    ancestors,
    bfs_levels,
    bfs_order,
    descendants,
    dfs_order,
    has_cycle,
    strongly_connected_components,
    topological_order,
)


def chain_store(length: int = 5) -> AdjacencyListGraph:
    """n0 -> n1 -> ... -> n{length-1}."""
    store = AdjacencyListGraph()
    for index in range(length - 1):
        store.update(f"n{index}", f"n{index + 1}")
    return store


def diamond_store() -> AdjacencyListGraph:
    """a -> b, a -> c, b -> d, c -> d."""
    store = AdjacencyListGraph()
    for source, destination in [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]:
        store.update(source, destination)
    return store


class TestBFS:
    def test_order_starts_at_root(self):
        assert bfs_order(chain_store(), "n0")[0] == "n0"

    def test_chain_visits_every_node(self):
        assert bfs_order(chain_store(5), "n0") == ["n0", "n1", "n2", "n3", "n4"]

    def test_node_limit_caps_visits(self):
        assert len(bfs_order(chain_store(10), "n0", node_limit=3)) == 3

    def test_unreachable_nodes_excluded(self):
        store = diamond_store()
        store.update("x", "y")
        assert "x" not in bfs_order(store, "a")

    def test_levels_are_hop_distances(self):
        levels = bfs_levels(diamond_store(), "a")
        assert levels == {"a": 0, "b": 1, "c": 1, "d": 2}

    def test_levels_max_depth(self):
        levels = bfs_levels(chain_store(6), "n0", max_depth=2)
        assert max(levels.values()) == 2
        assert "n3" not in levels

    def test_levels_node_limit(self):
        levels = bfs_levels(chain_store(10), "n0", node_limit=4)
        assert len(levels) == 4


class TestDFS:
    def test_order_starts_at_root(self):
        assert dfs_order(diamond_store(), "a")[0] == "a"

    def test_chain_same_as_bfs(self):
        assert dfs_order(chain_store(4), "n0") == ["n0", "n1", "n2", "n3"]

    def test_visits_all_reachable(self):
        assert set(dfs_order(diamond_store(), "a")) == {"a", "b", "c", "d"}

    def test_node_limit(self):
        assert len(dfs_order(chain_store(10), "n0", node_limit=5)) == 5

    def test_deterministic(self):
        store = diamond_store()
        assert dfs_order(store, "a") == dfs_order(store, "a")


class TestDescendantsAncestors:
    def test_descendants_exclude_start(self):
        assert descendants(diamond_store(), "a") == {"b", "c", "d"}

    def test_descendants_of_sink_empty(self):
        assert descendants(diamond_store(), "d") == set()

    def test_ancestors_exclude_target(self):
        assert ancestors(diamond_store(), "d") == {"a", "b", "c"}

    def test_ancestors_of_source_empty(self):
        assert ancestors(diamond_store(), "a") == set()


class TestStronglyConnectedComponents:
    def test_dag_gives_singletons(self):
        components = strongly_connected_components(diamond_store(), ["a", "b", "c", "d"])
        assert sorted(len(c) for c in components) == [1, 1, 1, 1]

    def test_cycle_is_one_component(self):
        store = AdjacencyListGraph()
        for source, destination in [("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")]:
            store.update(source, destination)
        components = strongly_connected_components(store, ["a", "b", "c", "d"])
        sizes = sorted(len(c) for c in components)
        assert sizes == [1, 3]
        assert {"a", "b", "c"} in components

    def test_every_node_assigned_once(self):
        store = diamond_store()
        nodes = ["a", "b", "c", "d"]
        components = strongly_connected_components(store, nodes)
        assigned = [node for component in components for node in component]
        assert sorted(assigned, key=repr) == sorted(nodes, key=repr)


class TestTopologicalOrder:
    def test_dag_order_respects_edges(self):
        store = diamond_store()
        order = topological_order(store, ["a", "b", "c", "d"])
        assert order is not None
        position = {node: index for index, node in enumerate(order)}
        assert position["a"] < position["b"] < position["d"]
        assert position["a"] < position["c"] < position["d"]

    def test_cycle_returns_none(self):
        store = AdjacencyListGraph()
        store.update("a", "b")
        store.update("b", "a")
        assert topological_order(store, ["a", "b"]) is None

    def test_has_cycle(self):
        store = AdjacencyListGraph()
        store.update("a", "b")
        store.update("b", "a")
        assert has_cycle(store, ["a", "b"])
        assert not has_cycle(diamond_store(), ["a", "b", "c", "d"])


class TestOnSketch:
    """The traversals must run unchanged on a GSS and cover the true graph."""

    @pytest.fixture()
    def sketch(self, small_stream):
        stats = small_stream.statistics()
        config = GSSConfig.for_edge_count(
            stats.distinct_edges, sequence_length=4, candidate_buckets=4
        )
        return GSS(config).ingest(small_stream)

    def test_bfs_covers_exact_reachable_set(self, small_stream, sketch):
        exact = AdjacencyListGraph()
        for edge in small_stream:
            exact.update(edge.source, edge.destination, edge.weight)
        start = small_stream.nodes()[0]
        exact_reach = set(bfs_order(exact, start, node_limit=200))
        sketch_reach = set(bfs_order(sketch, start, node_limit=5000))
        # The sketch has only false positives, so it reaches at least as much.
        assert exact_reach <= sketch_reach or len(sketch_reach) >= 200

    def test_levels_never_deeper_than_exact(self, small_stream, sketch):
        exact = AdjacencyListGraph()
        for edge in small_stream:
            exact.update(edge.source, edge.destination, edge.weight)
        start = small_stream.nodes()[0]
        exact_levels = bfs_levels(exact, start, max_depth=3)
        sketch_levels = bfs_levels(sketch, start, max_depth=3)
        for node, depth in exact_levels.items():
            assert node in sketch_levels
            assert sketch_levels[node] <= depth
