"""Benchmarks: extension studies (window, partition, changers, algorithms, memory).

These are not paper artifacts; they regenerate the extension tables recorded
in EXPERIMENTS.md and assert the qualitative shape (GSS-based deployments stay
accurate, sharding stays balanced within the skew of the workload, the
injected burst is detected).
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import (
    run_algorithm_agreement_experiment,
    run_heavy_changer_experiment,
    run_memory_experiment,
    run_partition_experiment,
    run_window_experiment,
)


@pytest.mark.paper_artifact("extension:window")
def test_ext_window(benchmark, small_bench_config):
    result = run_once(benchmark, run_window_experiment, small_bench_config)
    print()
    print(result.to_text())
    assert result.rows
    for row in result.rows:
        assert 0.0 <= row["successor_precision"] <= 1.0
        assert row["edge_are"] >= 0.0


@pytest.mark.paper_artifact("extension:partition")
def test_ext_partition(benchmark, small_bench_config):
    result = run_once(benchmark, run_partition_experiment, small_bench_config)
    print()
    print(result.to_text())
    assert result.rows
    # Sharding must not destroy accuracy: precision stays high at every count.
    for row in result.rows:
        assert row["successor_precision"] >= 0.5
        assert row["load_imbalance"] >= 1.0


@pytest.mark.paper_artifact("extension:changers")
def test_ext_heavy_changers(benchmark, small_bench_config):
    result = run_once(benchmark, run_heavy_changer_experiment, small_bench_config)
    print()
    print(result.to_text())
    gss_rows = [row for row in result.rows if row["structure"].startswith("GSS")]
    assert gss_rows
    for row in gss_rows:
        assert row["burst_recall"] >= 0.5


@pytest.mark.paper_artifact("extension:algorithms")
def test_ext_algorithm_agreement(benchmark, small_bench_config):
    result = run_once(benchmark, run_algorithm_agreement_experiment, small_bench_config)
    print()
    print(result.to_text())
    gss = [row for row in result.rows if row["structure"].startswith("GSS")]
    tcm = [row for row in result.rows if row["structure"].startswith("TCM")]
    assert gss and tcm
    gss_score = sum(row["pagerank_overlap"] + row["degree_overlap"] for row in gss)
    tcm_score = sum(row["pagerank_overlap"] + row["degree_overlap"] for row in tcm)
    assert gss_score >= tcm_score


@pytest.mark.paper_artifact("extension:memory")
def test_ext_memory(benchmark, small_bench_config):
    result = run_once(benchmark, run_memory_experiment, small_bench_config)
    print()
    print(result.to_text())
    analytical = result.filter(scope="paper size (analytical)")
    assert analytical
    for row in analytical:
        assert row["adjacency_matrix_bytes"] > row["gss_bytes"]
