"""Exposition formats for :mod:`repro.obs` snapshots.

Three consumers, three renderers:

* :func:`render_prometheus` — Prometheus text format 0.0.4 (the classic
  ``# HELP``/``# TYPE`` + sample lines scrape format) from any snapshot
  document.  Histograms expose the conventional cumulative
  ``_bucket{le="..."}`` series plus ``_sum``/``_count``; the snapshot's
  non-cumulative bucket counts are cumulated here, on render.
* :func:`parse_prometheus` / :func:`validate_prometheus` — a deliberately
  minimal parser for the same subset, used by the CI smoke assertion
  (``curl /metrics | python -m repro obs --check-prometheus -``) and the
  test suite: every sample must belong to a declared family, and every
  histogram series must be internally consistent (cumulative ``_bucket``
  counts, a ``+Inf`` bucket equal to ``_count``, a ``_sum``).
* :func:`describe_snapshot` — the human-oriented table behind
  ``python -m repro obs``.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Mapping, Optional, Tuple

from repro.obs.registry import histogram_quantile

__all__ = [
    "describe_snapshot",
    "parse_prometheus",
    "render_prometheus",
    "validate_prometheus",
]

_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}

_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _escape_label(value: str) -> str:
    return "".join(_LABEL_ESCAPES.get(ch, ch) for ch in value)


def _format_value(value: float) -> str:
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: Mapping[str, str], extra: str = "") -> str:
    pairs = [f'{key}="{_escape_label(str(value))}"' for key, value in sorted(labels.items())]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def render_prometheus(snapshot: Optional[Dict]) -> str:
    """Render a snapshot document as Prometheus text format 0.0.4."""
    lines: List[str] = []
    families = (snapshot or {}).get("families", {})
    for name in sorted(families):
        family = families[name]
        kind = family["kind"]
        help_text = family.get("help", "")
        if help_text:
            lines.append(f"# HELP {name} {_escape_label(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        for series in family.get("series", {}).values():
            labels = series.get("labels", {})
            if kind == "histogram":
                bounds = family.get("buckets", [])
                cumulative = 0
                for index, bound in enumerate(bounds):
                    cumulative += series["counts"][index]
                    le = _format_labels(labels, f'le="{bound:.9g}"')
                    lines.append(f"{name}_bucket{le} {cumulative}")
                cumulative += series["counts"][len(bounds)]
                le = _format_labels(labels, 'le="+Inf"')
                lines.append(f"{name}_bucket{le} {cumulative}")
                lines.append(
                    f"{name}_sum{_format_labels(labels)} "
                    f"{_format_value(series['sum'])}"
                )
                lines.append(f"{name}_count{_format_labels(labels)} {cumulative}")
            else:
                lines.append(
                    f"{name}{_format_labels(labels)} "
                    f"{_format_value(series['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def _parse_labels(raw: Optional[str]) -> Dict[str, str]:
    if not raw:
        return {}
    labels: Dict[str, str] = {}
    for match in _LABEL_PAIR.finditer(raw):
        value = match.group(2)
        value = (
            value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
        )
        labels[match.group(1)] = value
    return labels


def parse_prometheus(text: str) -> Dict[str, Dict]:
    """Parse Prometheus text into ``{family: {type, help, samples}}``.

    ``samples`` is a list of ``(sample_name, labels, value)`` tuples; a
    histogram family's ``_bucket``/``_sum``/``_count`` samples are grouped
    under the declared family name.  Raises ``ValueError`` on lines that
    are neither comments, blank, declarations, nor well-formed samples, and
    on samples that belong to no declared family.
    """
    families: Dict[str, Dict] = {}
    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                families.setdefault(
                    parts[2], {"type": None, "help": "", "samples": []}
                )["type"] = parts[3] if len(parts) > 3 else ""
            elif len(parts) >= 3 and parts[1] == "HELP":
                families.setdefault(
                    parts[2], {"type": None, "help": "", "samples": []}
                )["help"] = parts[3] if len(parts) > 3 else ""
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {raw_line!r}")
        sample_name = match.group("name")
        try:
            value = float(match.group("value"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: non-numeric value {match.group('value')!r}"
            ) from None
        family_name = sample_name
        if family_name not in families:
            for suffix in ("_bucket", "_sum", "_count"):
                if sample_name.endswith(suffix):
                    family_name = sample_name[: -len(suffix)]
                    break
        if family_name not in families:
            raise ValueError(
                f"line {lineno}: sample {sample_name!r} has no # TYPE declaration"
            )
        families[family_name]["samples"].append(
            (sample_name, _parse_labels(match.group("labels")), value)
        )
    return families


def _histogram_series_key(labels: Mapping[str, str]) -> str:
    return ",".join(
        f"{key}={value}" for key, value in sorted(labels.items()) if key != "le"
    )


def validate_prometheus(text: str) -> Dict[str, Dict]:
    """Parse *and* cross-check the text; raise ``ValueError`` on any defect.

    Beyond :func:`parse_prometheus`'s well-formedness, asserts per
    histogram series: ``_bucket`` values are cumulative (non-decreasing in
    ``le`` order), a ``+Inf`` bucket exists and equals ``_count``, and a
    ``_sum`` sample is present.  Returns the parsed families on success.
    """
    families = parse_prometheus(text)
    for name, family in families.items():
        if family["type"] is None:
            raise ValueError(f"family {name!r} has samples but no # TYPE")
        if family["type"] != "histogram":
            continue
        buckets: Dict[str, List[Tuple[float, float]]] = {}
        sums: Dict[str, float] = {}
        counts: Dict[str, float] = {}
        for sample_name, labels, value in family["samples"]:
            key = _histogram_series_key(labels)
            if sample_name == f"{name}_bucket":
                le_raw = labels.get("le")
                if le_raw is None:
                    raise ValueError(f"{name}: _bucket sample without le label")
                le = math.inf if le_raw == "+Inf" else float(le_raw)
                buckets.setdefault(key, []).append((le, value))
            elif sample_name == f"{name}_sum":
                sums[key] = value
            elif sample_name == f"{name}_count":
                counts[key] = value
        for key, series_buckets in buckets.items():
            series_buckets.sort(key=lambda pair: pair[0])
            values = [pair[1] for pair in series_buckets]
            if any(b < a for a, b in zip(values, values[1:])):
                raise ValueError(
                    f"{name}{{{key}}}: _bucket counts are not cumulative"
                )
            if not series_buckets or series_buckets[-1][0] != math.inf:
                raise ValueError(f"{name}{{{key}}}: missing le=\"+Inf\" bucket")
            if key not in counts:
                raise ValueError(f"{name}{{{key}}}: missing _count sample")
            if series_buckets[-1][1] != counts[key]:
                raise ValueError(
                    f"{name}{{{key}}}: +Inf bucket {series_buckets[-1][1]} "
                    f"!= _count {counts[key]}"
                )
            if key not in sums:
                raise ValueError(f"{name}{{{key}}}: missing _sum sample")
    return families


def describe_snapshot(snapshot: Optional[Dict]) -> str:
    """The ``python -m repro obs`` table: one block per family.

    Histogram rows estimate p50/p99 from the bucket counts (the same
    estimator the load generator uses for server-side latency)."""
    families = (snapshot or {}).get("families", {})
    if not families:
        return "no instruments recorded"
    lines: List[str] = []
    for name in sorted(families):
        family = families[name]
        header = f"{name}  [{family['kind']}]"
        if family.get("help"):
            header += f"  — {family['help']}"
        lines.append(header)
        if family.get("dropped_series"):
            lines.append(
                f"  (cardinality guard collapsed {family['dropped_series']} "
                "label set(s) into the overflow series)"
            )
        for key in sorted(family.get("series", {})):
            series = family["series"][key]
            label_text = key or "(no labels)"
            if family["kind"] == "histogram":
                bounds = family.get("buckets", [])
                p50 = histogram_quantile(bounds, series["counts"], 0.50)
                p99 = histogram_quantile(bounds, series["counts"], 0.99)
                quantiles = (
                    f"p50={p50 * 1e3:.3f}ms p99={p99 * 1e3:.3f}ms"
                    if p50 is not None
                    else "empty"
                )
                lines.append(
                    f"  {label_text:<40} count={series['count']:<8} "
                    f"sum={series['sum']:.6f}s {quantiles}"
                )
            else:
                lines.append(f"  {label_text:<40} {_format_value(series['value'])}")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
