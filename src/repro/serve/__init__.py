"""``repro.serve`` — the asyncio network front end over a sharded summary.

The cluster of :mod:`repro.cluster` is a process tree reachable only from
the Python process that built it.  ``repro.serve`` puts a long-lived TCP
server in front of one :class:`~repro.cluster.ShardedSummary` so many
concurrent ingest feeds and query clients — separate processes, separate
machines — share one live summary:

* :mod:`repro.serve.protocol` — length-prefixed frames (JSON control frames
  plus a binary ingest frame that reuses the cluster transport's
  :class:`~repro.streaming.batch.HashedBatch` encoding, extended with the
  routing-hash column, so node and routing hashes are computed **once on the
  client** and flow edge-to-worker untouched);
* :mod:`repro.serve.server` — :class:`SummaryServer`: one asyncio acceptor,
  per-connection FIFO reply queues, a single summary executor thread (the
  cluster pipes are single-consumer), credit-window admission control with
  explicit ``busy``/retry-after frames instead of unbounded buffering,
  snapshot-consistent checkpoints, graceful signal-driven drain, and a plain
  HTTP ``GET /metrics`` answered on the same port;
* :mod:`repro.serve.client` — :class:`ServeClient`: the bundled synchronous
  client speaking the same protocol module (pipelined ingest window,
  busy-retry, hash-once batch building against the server's advertised
  :class:`~repro.streaming.batch.HashSpec`);
* :mod:`repro.serve.metrics` — the counters behind ``/metrics`` (per-shard
  items, queue-depth high water, routing imbalance, in-flight credits,
  connection and busy counts);
* :mod:`repro.serve.loadgen` — the measurement harness behind
  ``scripts/load_gen.py`` and ``scripts/record_bench.py --serve``.

Start a server with ``python -m repro serve --workers 2 --port 8750`` and
point :class:`ServeClient` (or ``scripts/load_gen.py``) at it.  The protocol
trusts its network: binary ingest frames carry pickled node keys (exactly
like the cluster's own shared-memory data plane), so bind the server to
loopback or a private network only.
"""

from repro.serve.client import (
    ServeClient,
    ServeClientError,
    ServerBusy,
    fetch_http_metrics,
)
from repro.serve.protocol import PROTOCOL_VERSION
from repro.serve.server import ServeConfig, ServerHandle, SummaryServer, serve_in_thread

__all__ = [
    "PROTOCOL_VERSION",
    "ServeClient",
    "ServeClientError",
    "ServeConfig",
    "ServerBusy",
    "ServerHandle",
    "SummaryServer",
    "fetch_http_metrics",
    "serve_in_thread",
]
