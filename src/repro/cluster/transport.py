"""Data-plane transports for the sharded cluster.

The cluster separates two planes:

* **control plane** — always a duplex :class:`multiprocessing.Pipe` per
  worker, carrying queries, flush barriers, snapshots, stop requests and the
  acknowledgement of every data-plane batch (replies are FIFO, which is what
  makes any query a per-shard barrier);
* **data plane** — how a routed :class:`~repro.streaming.batch.HashedBatch`
  reaches its worker.  Two interchangeable implementations:

  - ``pipe`` — the batch object travels pickled through the control pipe
    (an ``hbatch`` message).  Zero extra dependencies; the automatic
    fallback when NumPy or :mod:`multiprocessing.shared_memory` is missing.
  - ``shm`` — the batch's numeric columns travel as raw bytes through a
    per-worker **shared-memory ring buffer**; only a tiny doorbell message
    (``shmbatch``, carrying the segment's offset and length) goes through
    the pipe.  The worker maps the segment with ``np.frombuffer`` — node
    hashes and weights cross the process boundary without pickling and
    without copies on the read side.

Ring discipline (single producer, single consumer): the client allocates
contiguous byte ranges head-to-tail with :class:`RingAllocator` and frees
them strictly FIFO when the corresponding batch acknowledgement is consumed
— valid because replies come back in request order.  A batch that cannot fit
(bigger than the ring, or the ring is full and nothing is pending) falls
back to an ``hbatch`` pipe message, so transport choice never changes
semantics, only speed.

Segment layout (native endianness; both ends are the same machine)::

    header:  count (u64), keys_nbytes (u64)
    columns: count x u64 source hashes | count x u64 destination hashes
             | count x f64 weights
    keys:    pickled (sources, destinations) key lists — the worker needs
             the original keys for its reverse node index

Original keys still travel (pickled) because workers answer
successor/precursor queries over original IDs; the numeric hot path is what
the ring removes from pickle's hands.
"""

from __future__ import annotations

import pickle
import struct
import warnings
from typing import Optional, Tuple

from repro.hashing.vectorized import NUMPY_AVAILABLE, load_numpy
from repro.streaming.batch import HashedBatch, HashSpec

__all__ = [
    "DEFAULT_RING_BYTES",
    "RingAllocator",
    "TRANSPORTS",
    "attach_shared_memory",
    "decode_hashed_batch",
    "encode_hashed_batch",
    "resolve_transport",
    "shm_available",
]

#: Per-worker ring capacity.  4 MiB holds several thousand in-flight edges
#: per batch at 24 bytes of numeric columns each plus the key blob; batches
#: beyond it degrade gracefully to the pipe.
DEFAULT_RING_BYTES = 1 << 22

#: The recognised transport names (``auto`` resolves to one of the others).
TRANSPORTS = ("auto", "shm", "pipe")

_HEADER = struct.Struct("=QQ")


def shm_available() -> bool:
    """Whether the shared-memory data plane can run in this environment.

    Requires NumPy (the ring carries raw arrays) and
    :mod:`multiprocessing.shared_memory` (Python >= 3.8, but absent on some
    restricted platforms).
    """
    if not NUMPY_AVAILABLE:
        return False
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - platform-dependent
        return False
    return True


def resolve_transport(requested: str) -> str:
    """Resolve a requested transport name to the one actually used.

    ``auto`` picks ``shm`` when available; an explicit ``shm`` request
    degrades to ``pipe`` with a warning when the environment cannot support
    it, mirroring how ``GSSConfig.backend='numpy'`` degrades — a cluster
    configured on one machine keeps working on another.
    """
    if requested not in TRANSPORTS:
        raise ValueError(
            f"unknown transport {requested!r}; expected one of {TRANSPORTS}"
        )
    if requested == "auto":
        return "shm" if shm_available() else "pipe"
    if requested == "shm" and not shm_available():
        warnings.warn(
            "transport='shm' requires NumPy and multiprocessing.shared_memory; "
            "falling back to the pipe transport",
            RuntimeWarning,
            stacklevel=3,
        )
        return "pipe"
    return requested


def attach_shared_memory(name: str):
    """Attach an existing shared-memory block without adopting ownership.

    On Python < 3.13 attaching by name registers the segment with the
    ``resource_tracker`` a second time; depending on the start method that
    either makes the attaching process's tracker unlink a segment the parent
    still owns (spawn), or — with fork, where the tracker process is shared —
    leaves an entry that ``unregister`` calls from either side would race
    over.  Suppressing the registration during the attach sidesteps both;
    3.13+ has ``track=False`` for exactly this purpose.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register

        def _register_except_shm(resource_name, rtype):
            if rtype != "shared_memory":
                original_register(resource_name, rtype)

        resource_tracker.register = _register_except_shm
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register


class RingAllocator:
    """Contiguous byte-range allocator with strictly FIFO frees.

    ``head``/``tail`` are monotonic byte counters; the live region is
    ``[tail, head)`` modulo ``size``.  A range must be contiguous in the
    underlying buffer, so an allocation that would straddle the end of the
    ring pads to the wrap point first (the padding is freed together with
    the range, as one reservation).  The caller frees reservations in
    allocation order — exactly the order batch acknowledgements arrive.
    """

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError("ring size must be positive")
        self.size = size
        self._head = 0
        self._tail = 0

    def alloc(self, nbytes: int) -> Optional[Tuple[int, int]]:
        """Reserve ``nbytes`` contiguous bytes.

        Returns ``(offset, reservation)`` — pass ``reservation`` (which may
        exceed ``nbytes`` by wrap padding) to :meth:`free` — or ``None``
        when the ring cannot currently hold the range.
        """
        if nbytes > self.size:
            return None
        position = self._head % self.size
        padding = 0
        if position + nbytes > self.size:
            padding = self.size - position
            position = 0
        reservation = padding + nbytes
        if (self._head - self._tail) + reservation > self.size:
            return None
        self._head += reservation
        return position, reservation

    def free(self, reservation: int) -> None:
        """Release the oldest reservation (FIFO)."""
        self._tail += reservation

    @property
    def used_bytes(self) -> int:
        """Bytes currently reserved (including wrap padding)."""
        return self._head - self._tail


def encode_hashed_batch(batch: HashedBatch) -> bytes:
    """Serialize a hashed batch into one contiguous ring segment."""
    np = load_numpy()
    count = len(batch)
    source_hashes = np.ascontiguousarray(
        np.asarray(batch.source_hashes, dtype=np.uint64)
    )
    destination_hashes = np.ascontiguousarray(
        np.asarray(batch.destination_hashes, dtype=np.uint64)
    )
    weights = np.ascontiguousarray(np.asarray(batch.weights, dtype=np.float64))
    keys_blob = pickle.dumps(
        (batch.sources, batch.destinations), protocol=pickle.HIGHEST_PROTOCOL
    )
    return b"".join(
        (
            _HEADER.pack(count, len(keys_blob)),
            source_hashes.tobytes(),
            destination_hashes.tobytes(),
            weights.tobytes(),
            keys_blob,
        )
    )


def decode_hashed_batch(
    buffer, offset: int, nbytes: int, spec: Optional[HashSpec]
) -> HashedBatch:
    """Rebuild a hashed batch from a ring segment, reading columns in place.

    The numeric columns are ``np.frombuffer`` views into the shared-memory
    buffer — zero-copy.  They stay valid until the client reuses the
    segment, which cannot happen before the caller acknowledges the batch
    (the client frees ring space only on acknowledgement), so consuming the
    batch fully before replying is the worker's contract.  Keys are
    unpickled (owned copies) because they outlive the segment in the
    worker's reverse node index.
    """
    np = load_numpy()
    count, keys_nbytes = _HEADER.unpack_from(buffer, offset)
    cursor = offset + _HEADER.size
    source_hashes = np.frombuffer(buffer, dtype=np.uint64, count=count, offset=cursor)
    cursor += 8 * count
    destination_hashes = np.frombuffer(
        buffer, dtype=np.uint64, count=count, offset=cursor
    )
    cursor += 8 * count
    weights = np.frombuffer(buffer, dtype=np.float64, count=count, offset=cursor)
    cursor += 8 * count
    sources, destinations = pickle.loads(buffer[cursor : cursor + keys_nbytes])
    return HashedBatch.from_columns(
        spec, sources, destinations, weights, source_hashes, destination_hashes
    )
