"""An ensemble of independent GSS sketches (the multi-sketch estimator).

Section II of the paper notes that, when memory allows, one can "build
multiple sketches with different hash functions, and report the most accurate
value in queries" — TCM's standard trick.  GSS rarely needs it (its errors are
already tiny), but the ensemble is useful in two situations the extension
experiments look at:

* extremely tight fingerprints (4–8 bits), where individual sketches do
  collide and taking the minimum across independent hash functions removes
  most of the remaining over-estimation;
* neighbor queries on very dense sketches, where intersecting the successor
  sets of independent sketches strips false positives.

Because every member only over-estimates weights and only adds false-positive
neighbors, the combination rules are simply *min* for weights and
*intersection* for neighbor sets, both of which preserve the one-sided error
guarantees (never under-estimate, never miss a true neighbor).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Hashable, Iterable, List, Optional, Set, Tuple

from repro.core.config import GSSConfig
from repro.core.gss import GSS
from repro.queries.primitives import Capabilities, SummaryShims


class GSSEnsemble(SummaryShims):
    """Several independent GSS sketches queried together.

    Parameters
    ----------
    config:
        Base configuration; member ``i`` uses ``seed + i`` so the node hash
        functions are independent.
    sketches:
        Number of member sketches (the ensemble uses ``sketches`` times the
        memory of a single GSS).

    Examples
    --------
    >>> ensemble = GSSEnsemble(GSSConfig(matrix_width=16, fingerprint_bits=8), sketches=3)
    >>> ensemble.update("a", "b", 2.0)
    >>> ensemble.edge_query("a", "b")
    2.0
    """

    def __init__(self, config: GSSConfig, sketches: int = 2) -> None:
        if sketches < 1:
            raise ValueError("sketches must be at least 1")
        self.config = config
        self._members: List[GSS] = [
            GSS(replace(config, seed=config.seed + offset)) for offset in range(sketches)
        ]
        self._update_count = 0

    @property
    def members(self) -> List[GSS]:
        """The member sketches (read-only use intended)."""
        return self._members

    @property
    def update_count(self) -> int:
        """Number of stream items applied to the ensemble."""
        return self._update_count

    # -- updates --------------------------------------------------------------

    def update(self, source: Hashable, destination: Hashable, weight: float = 1.0) -> None:
        """Apply one stream item to every member sketch."""
        self._update_count += 1
        for member in self._members:
            member.update(source, destination, weight)

    def update_many(self, items: Iterable[Tuple[Hashable, Hashable, float]]) -> int:
        """Apply a batch of ``(source, destination, weight)`` items to every member."""
        triples = list(items)
        for member in self._members:
            member.update_many(triples)
        self._update_count += len(triples)
        return len(triples)

    def ingest(self, edges) -> "GSSEnsemble":
        """Feed an iterable of :class:`~repro.streaming.edge.StreamEdge`."""
        self.update_many((edge.source, edge.destination, edge.weight) for edge in edges)
        return self

    # -- query primitives ------------------------------------------------------

    def edge_query(self, source: Hashable, destination: Hashable) -> Optional[float]:
        """Minimum of the members' estimates (the most accurate one).

        Returns ``None`` when any member is certain the edge never appeared,
        which preserves the no-false-negative property.
        """
        estimates = []
        for member in self._members:
            estimate = member.edge_query(source, destination)
            if estimate is None:
                return None
            estimates.append(estimate)
        return min(estimates)

    def successor_query(self, node: Hashable) -> Set[Hashable]:
        """Intersection of the members' successor sets."""
        result: Set[Hashable] = self._members[0].successor_query(node)
        for member in self._members[1:]:
            result &= member.successor_query(node)
        return result

    def precursor_query(self, node: Hashable) -> Set[Hashable]:
        """Intersection of the members' precursor sets."""
        result: Set[Hashable] = self._members[0].precursor_query(node)
        for member in self._members[1:]:
            result &= member.precursor_query(node)
        return result

    def node_out_weight(self, node: Hashable) -> float:
        """Minimum of the members' node-query estimates."""
        return min(member.node_out_weight(node) for member in self._members)

    def node_in_weight(self, node: Hashable) -> float:
        """Minimum of the members' in-weight estimates."""
        return min(member.node_in_weight(node) for member in self._members)

    # -- introspection -----------------------------------------------------------

    def memory_bytes(self, include_node_index: bool = False) -> int:
        """Total memory of every member under the paper's C layout."""
        return sum(
            member.memory_bytes(include_node_index=include_node_index)
            for member in self._members
        )

    @property
    def buffer_percentage(self) -> float:
        """Mean buffer share across members."""
        if not self._members:
            return 0.0
        return sum(member.buffer_percentage for member in self._members) / len(self._members)

    @classmethod
    def capabilities(cls) -> Capabilities:
        """Feature descriptor: the full query surface of the member sketches."""
        return Capabilities()
