"""TCM (Tang, Chen, Mitra — SIGMOD 2016): hashed adjacency-matrix sketches.

TCM compresses the streaming graph with a node hash of range ``M`` equal to
the matrix width and stores the graph sketch in an ``M x M`` counter matrix;
the counter in row ``H(s)``, column ``H(d)`` accumulates the weight of every
edge mapped there.  Several sketches with independent hash functions can be
kept, and queries report the most accurate (smallest, since errors are
one-sided over-estimates) answer.

The reverse node table used to answer successor/precursor queries over
original node IDs is the same construction the paper allows TCM ("a hash table
that stores the hash value and the original ID pairs").
"""

from __future__ import annotations

from itertools import chain
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.core.backends import resolve_counter_backend_name
from repro.core.reverse_index import NodeIndex
from repro.hashing.hash_functions import NodeHasher
from repro.hashing.vectorized import load_numpy, node_hashes_array
from repro.queries.primitives import Capabilities, SummaryShims


class _TCMSketch:
    """One hashed adjacency matrix of counters."""

    def __init__(self, width: int, seed: int, numpy_counters: bool = False) -> None:
        self.width = width
        self.hasher = NodeHasher(value_range=width, seed=seed)
        if numpy_counters:
            np = load_numpy()
            self.counters = np.zeros(width * width, dtype=np.float64)
        else:
            self.counters: List[float] = [0.0] * (width * width)
        self.node_index = NodeIndex()

    def update(self, source: Hashable, destination: Hashable, weight: float) -> None:
        source_hash = self.hasher(source)
        destination_hash = self.hasher(destination)
        self.node_index.record(source, source_hash)
        self.node_index.record(destination, destination_hash)
        self.counters[source_hash * self.width + destination_hash] += weight

    def update_hashed(self, positions, weights) -> None:
        """Vectorized counter update for pre-hashed batch positions."""
        np = load_numpy()
        self.counters += np.bincount(
            positions, weights=weights, minlength=len(self.counters)
        )

    def edge_weight(self, source: Hashable, destination: Hashable) -> float:
        source_hash = self.hasher(source)
        destination_hash = self.hasher(destination)
        return float(self.counters[source_hash * self.width + destination_hash])

    def successor_ids(self, node: Hashable) -> Set[Hashable]:
        node_hash = self.hasher(node)
        base = node_hash * self.width
        hashes = [
            column for column in range(self.width) if self.counters[base + column] > 0
        ]
        return self.node_index.expand(hashes)

    def precursor_ids(self, node: Hashable) -> Set[Hashable]:
        node_hash = self.hasher(node)
        hashes = [
            row
            for row in range(self.width)
            if self.counters[row * self.width + node_hash] > 0
        ]
        return self.node_index.expand(hashes)

    def node_out_weight(self, node: Hashable) -> float:
        node_hash = self.hasher(node)
        base = node_hash * self.width
        return float(sum(self.counters[base:base + self.width]))

    def node_in_weight(self, node: Hashable) -> float:
        node_hash = self.hasher(node)
        return float(
            sum(self.counters[row * self.width + node_hash] for row in range(self.width))
        )


class TCM(SummaryShims):
    """Multi-sketch TCM summary.

    Parameters
    ----------
    width:
        Matrix side length ``M`` of each sketch.
    depth:
        Number of independent sketches (the paper's experiments use 4).
    seed:
        Base seed; sketch ``i`` uses ``seed + i``.
    backend:
        ``"python"`` (list counters), ``"numpy"`` (array counters plus the
        vectorized :meth:`update_many` pipeline) or ``"auto"``.  Matches the
        GSS backend contract, including the fallback-with-warning when NumPy
        is requested but missing, so Table I compares both structures on the
        same substrate.
    """

    def __init__(
        self, width: int, depth: int = 4, seed: int = 0, backend: str = "python"
    ) -> None:
        if width <= 0:
            raise ValueError("width must be positive")
        if depth < 1:
            raise ValueError("depth must be at least 1")
        self.width = width
        self.depth = depth
        self.seed = seed
        self.backend = resolve_counter_backend_name(backend)
        numpy_counters = self.backend == "numpy"
        self._sketches = [
            _TCMSketch(width, seed + index, numpy_counters=numpy_counters)
            for index in range(depth)
        ]
        self._update_count = 0

    # -- updates ------------------------------------------------------------

    def update(self, source: Hashable, destination: Hashable, weight: float = 1.0) -> None:
        """Apply one stream item to every sketch."""
        self._update_count += 1
        for sketch in self._sketches:
            sketch.update(source, destination, weight)

    def update_many(self, items: Iterable[Tuple[Hashable, Hashable, float]]) -> int:
        """Apply a batch of ``(source, destination, weight)`` stream items.

        Items hitting the same counter are pre-aggregated (exact for the
        weight sums the experiments use), and on the NumPy backend node
        hashing and the counter scatter run as array operations per sketch.
        Returns the number of items applied.
        """
        triples = items if isinstance(items, list) else list(items)
        if not triples:
            return 0
        count = len(triples)
        if self.backend != "numpy":
            aggregated: Dict[Tuple[Hashable, Hashable], float] = {}
            for source, destination, weight in triples:
                key = (source, destination)
                aggregated[key] = aggregated.get(key, 0.0) + weight
            for (source, destination), weight in aggregated.items():
                for sketch in self._sketches:
                    sketch.update(source, destination, weight)
            self._update_count += count
            return count
        np = load_numpy()
        sources, destinations, weights = zip(*triples)
        weight_array = np.asarray(weights, dtype=np.float64)
        distinct = list(dict.fromkeys(chain.from_iterable(zip(sources, destinations))))
        for sketch in self._sketches:
            hashed = node_hashes_array(distinct, self.width, sketch.hasher.seed).tolist()
            node_index = sketch.node_index
            for node, node_hash in zip(distinct, hashed):
                node_index.record(node, node_hash)
            lookup = dict(zip(distinct, hashed))
            positions = np.fromiter(
                map(lookup.__getitem__, chain(sources, destinations)),
                dtype=np.int64,
                count=2 * count,
            )
            sketch.update_hashed(
                positions[:count] * self.width + positions[count:], weight_array
            )
        self._update_count += count
        return count

    def ingest(self, edges) -> "TCM":
        """Feed an iterable of stream edges."""
        for edge in edges:
            self.update(edge.source, edge.destination, edge.weight)
        return self

    # -- primitives ------------------------------------------------------------

    def edge_query(self, source: Hashable, destination: Hashable) -> Optional[float]:
        """Minimum counter over the sketches; ``None`` when it is zero.

        A non-zero minimum — including a negative one after deletions — is
        reported as-is, so a real edge deleted below zero stays
        distinguishable from an absent edge (only a counter deleted to
        exactly zero is indistinguishable, which is inherent to counter
        sketches).
        """
        estimate = min(
            sketch.edge_weight(source, destination) for sketch in self._sketches
        )
        return estimate if estimate != 0.0 else None

    def successor_query(self, node: Hashable) -> Set[Hashable]:
        """Intersection of the per-sketch successor candidates (original IDs)."""
        results = [sketch.successor_ids(node) for sketch in self._sketches]
        common = results[0]
        for candidate in results[1:]:
            common &= candidate
        return common

    def precursor_query(self, node: Hashable) -> Set[Hashable]:
        """Intersection of the per-sketch precursor candidates."""
        results = [sketch.precursor_ids(node) for sketch in self._sketches]
        common = results[0]
        for candidate in results[1:]:
            common &= candidate
        return common

    # -- compound helpers -------------------------------------------------------

    def node_out_weight(self, node: Hashable) -> float:
        """Node query: smallest per-sketch estimate of the aggregated out-weight."""
        return min(sketch.node_out_weight(node) for sketch in self._sketches)

    def node_in_weight(self, node: Hashable) -> float:
        """Smallest per-sketch estimate of the aggregated in-weight."""
        return min(sketch.node_in_weight(node) for sketch in self._sketches)

    # -- introspection ------------------------------------------------------------

    @property
    def update_count(self) -> int:
        """Number of stream items applied."""
        return self._update_count

    def memory_bytes(self) -> int:
        """Counter memory under a C layout (32-bit counters)."""
        return self.depth * self.width * self.width * 4

    @classmethod
    def capabilities(cls) -> Capabilities:
        """Feature descriptor: full query surface, counters serialize exactly."""
        return Capabilities(serializable=True)

    def to_dict(self, include_node_index: bool = True) -> Dict:
        """Serialize the counter matrices (and reverse tables) to a document."""
        document = {
            "sketch": "tcm",
            "width": self.width,
            "depth": self.depth,
            "seed": self.seed,
            "backend": self.backend,
            "update_count": self._update_count,
            "counters": [
                [float(value) for value in sketch.counters]
                for sketch in self._sketches
            ],
        }
        if include_node_index:
            for sketch in self._sketches:
                for node in sketch.node_index.known_nodes():
                    if not isinstance(node, (str, int, float, bool)):
                        raise ValueError(
                            "TCM serialization with the node index requires "
                            f"scalar node IDs; {node!r} cannot be stored in "
                            "JSON (serialize with include_node_index=False "
                            "to drop topology queries instead)"
                        )
            document["node_index"] = [
                [
                    {"raw": node, "hash": sketch.node_index.hash_of(node)}
                    for node in sketch.node_index.known_nodes()
                ]
                for sketch in self._sketches
            ]
        return document

    @classmethod
    def from_dict(cls, document: Dict, backend: Optional[str] = None) -> "TCM":
        """Rebuild a TCM from a :meth:`to_dict` document.

        ``backend`` overrides the recorded counter backend, mirroring the GSS
        snapshot contract.
        """
        summary = cls(
            width=document["width"],
            depth=document["depth"],
            seed=document.get("seed", 0),
            backend=backend if backend is not None else document.get("backend", "python"),
        )
        for sketch, counters in zip(summary._sketches, document["counters"]):
            if summary.backend == "numpy":
                np = load_numpy()
                sketch.counters = np.asarray(counters, dtype=np.float64)
            else:
                sketch.counters = [float(value) for value in counters]
        for sketch, entries in zip(summary._sketches, document.get("node_index", [])):
            for entry in entries:
                sketch.node_index.record(entry["raw"], entry["hash"])
        summary._update_count = document.get("update_count", 0)
        return summary

    @classmethod
    def with_memory_of(
        cls,
        gss_memory_bytes: int,
        memory_ratio: float = 8.0,
        depth: int = 4,
        seed: int = 0,
        backend: str = "python",
    ) -> "TCM":
        """Build a TCM whose total counter memory is ``memory_ratio`` times a
        given GSS memory budget — the construction used throughout Section VII
        (TCM is allowed 8x memory for edge queries, 256x for the others).
        """
        total_bytes = gss_memory_bytes * memory_ratio
        per_sketch_counters = max(1.0, total_bytes / (4 * depth))
        width = max(2, int(per_sketch_counters ** 0.5))
        return cls(width=width, depth=depth, seed=seed, backend=backend)


def tcm_successor_union(tcm: TCM, node: Hashable) -> Dict[str, Set[Hashable]]:
    """Debug helper returning both the union and intersection candidate sets."""
    per_sketch = [sketch.successor_ids(node) for sketch in tcm._sketches]
    union: Set[Hashable] = set()
    for candidates in per_sketch:
        union |= candidates
    intersection = per_sketch[0]
    for candidates in per_sketch[1:]:
        intersection &= candidates
    return {"union": union, "intersection": intersection}
