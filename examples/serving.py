"""Serving a summary over the network: ``repro.serve`` end to end.

The scenario: the traffic-analysis cluster of the other examples stops being
a library inside one Python process and becomes a *service* — collectors on
other machines feed edges over TCP while dashboards query the same live
summary.  This example runs the whole story in one process:

1. build a 2-worker ``sharded-gss`` cluster and put a
   :class:`~repro.serve.SummaryServer` in front of it (background thread
   here; ``python -m repro serve`` in production);
2. connect a :class:`~repro.serve.ServeClient`, negotiate hash-once binary
   ingest (the client hashes every key exactly once, workers never re-hash),
   and feed an edge stream with credit-window backpressure;
3. query the served summary — answers are bit-identical to calling the
   cluster directly — and read ``GET /metrics`` from the same port;
4. checkpoint through the protocol, stop the server gracefully, and restore
   the checkpoint to show nothing was lost.

Run with::

    PYTHONPATH=src python examples/serving.py
"""

from __future__ import annotations

import tempfile

from repro.api import build
from repro.cluster import load_checkpoint
from repro.datasets.registry import load_dataset
from repro.serve import ServeClient, ServeConfig, fetch_http_metrics, serve_in_thread


def main() -> None:
    stream = load_dataset("email-EuAll", scale=0.05)
    edges = [(edge.source, edge.destination, edge.weight) for edge in stream]
    print(f"stream: {len(edges)} items")

    cluster = build("sharded-gss", memory_bytes=256 * 1024, params={"workers": 2})

    with tempfile.TemporaryDirectory() as checkpoint_dir:
        # --- 1. the server: one asyncio front end over the cluster ---------
        handle = serve_in_thread(
            cluster,
            ServeConfig(checkpoint_dir=checkpoint_dir, close_summary=False),
        )
        print(f"serving on {handle.host}:{handle.port}")

        # --- 2. a collector: hash-once ingest with backpressure -------------
        with ServeClient(handle.host, handle.port, batch_size=512) as client:
            print(
                f"negotiated: binary_ingest={client.binary_ingest} "
                f"credits={client.credits} workers={client.workers}"
            )
            client.ingest(edges)
            client.flush()
            print(f"fed {client.items_sent} items in {client.frames_sent} frames "
                  f"({client.busy_retries} busy backoffs)")

            # --- 3. a dashboard: queries + /metrics on the same port --------
            source, destination, _ = edges[0]
            served = client.edge_query(source, destination)
            direct = cluster.edge_query(source, destination)
            print(f"edge {source}->{destination}: served={served} direct={direct} "
                  f"identical={served == direct}")
            out_degree = len(client.successor_query(source))
            print(f"|successors({source})| = {out_degree}")
            metrics = fetch_http_metrics(handle.host, handle.port)
            print(
                f"GET /metrics: ingest_items={metrics['ingest_items']} "
                f"shards={metrics['shards']['items_routed']} "
                f"imbalance={metrics['shards']['routing_imbalance']:.3f}"
            )

            # --- 4. checkpoint through the protocol --------------------------
            client.checkpoint()

        handle.stop()
        print("server stopped (drained + flushed)")

        restored = load_checkpoint(checkpoint_dir)
        try:
            print(
                f"checkpoint restore: {restored.update_count} items, "
                f"edge still {restored.edge_query(source, destination)}"
            )
        finally:
            restored.close()
    cluster.close()


if __name__ == "__main__":
    main()
