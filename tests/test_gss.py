"""Unit tests for the full (augmented) GSS of Section V."""

import pytest

from repro.core.config import GSSConfig
from repro.core.gss import GSS
from repro.queries.primitives import EDGE_NOT_FOUND, consume_stream


def make_gss(width=32, bits=16, **overrides) -> GSS:
    defaults = dict(sequence_length=8, candidate_buckets=8)
    defaults.update(overrides)
    return GSS(GSSConfig(matrix_width=width, fingerprint_bits=bits, **defaults))


class TestGSSUpdateAndEdgeQuery:
    def test_single_edge_round_trip(self):
        sketch = make_gss()
        sketch.update("a", "b", 3.5)
        assert sketch.edge_query("a", "b") == 3.5

    def test_weights_accumulate(self):
        sketch = make_gss()
        sketch.update("a", "b", 1.0)
        sketch.update("a", "b", 2.0)
        sketch.update("a", "b", 0.5)
        assert sketch.edge_query("a", "b") == 3.5

    def test_deletion_via_negative_weight(self):
        sketch = make_gss()
        sketch.update("a", "b", 5.0)
        sketch.update("a", "b", -2.0)
        assert sketch.edge_query("a", "b") == 3.0

    def test_absent_edge_not_found(self):
        sketch = make_gss()
        sketch.update("a", "b", 1.0)
        assert sketch.edge_query("nope", "way") is None

    def test_direction_matters(self):
        sketch = make_gss()
        sketch.update("a", "b", 1.0)
        assert sketch.edge_query("b", "a") is None

    def test_never_underestimates_on_real_stream(self, small_stream, small_gss):
        truth = small_stream.aggregate_weights()
        for key, weight in truth.items():
            assert small_gss.edge_query(*key) >= weight - 1e-9

    def test_update_count_tracked(self, small_stream, small_gss):
        assert small_gss.update_count == len(small_stream)

    def test_exactness_on_paper_example(self, paper_stream):
        sketch = make_gss(width=8, bits=16)
        sketch.ingest(paper_stream)
        for key, weight in paper_stream.aggregate_weights().items():
            assert sketch.edge_query(*key) == weight


class TestGSSNeighborQueries:
    def test_successors_superset_of_truth(self, small_stream, small_gss):
        truth = small_stream.successors()
        for node in list(truth)[:80]:
            assert truth[node] <= small_gss.successor_query(node)

    def test_precursors_superset_of_truth(self, small_stream, small_gss):
        truth = small_stream.precursors()
        for node in list(truth)[:80]:
            assert truth[node] <= small_gss.precursor_query(node)

    def test_high_precision_with_16_bit_fingerprints(self, small_stream, small_gss):
        from repro.metrics.accuracy import average_precision

        truth = small_stream.successors()
        nodes = small_stream.nodes()[:120]
        pairs = [(truth.get(node, set()), small_gss.successor_query(node)) for node in nodes]
        assert average_precision(pairs) > 0.95

    def test_unknown_node_has_no_neighbors(self, small_gss):
        assert small_gss.successor_query("definitely-not-a-node") == set()

    def test_hash_level_queries_without_index(self, paper_stream):
        sketch = make_gss(width=8, keep_node_index=False)
        sketch.ingest(paper_stream)
        assert sketch.successor_hashes("a")  # hashes are available
        with pytest.raises(RuntimeError):
            sketch.successor_query("a")

    def test_node_weights_match_exact(self, paper_stream):
        sketch = make_gss(width=8)
        sketch.ingest(paper_stream)
        out_truth = paper_stream.node_out_weights()
        for node, weight in out_truth.items():
            assert sketch.node_out_weight(node) >= weight - 1e-9
        in_truth = {}
        for (source, destination), weight in paper_stream.aggregate_weights().items():
            in_truth[destination] = in_truth.get(destination, 0.0) + weight
        for node, weight in in_truth.items():
            assert sketch.node_in_weight(node) >= weight - 1e-9


class TestGSSVariants:
    @pytest.mark.parametrize("rooms", [1, 2, 3])
    @pytest.mark.parametrize("square_hashing", [True, False])
    def test_all_variants_answer_queries(self, paper_stream, rooms, square_hashing):
        sketch = make_gss(width=8, rooms=rooms, square_hashing=square_hashing)
        sketch.ingest(paper_stream)
        truth = paper_stream.aggregate_weights()
        for key, weight in truth.items():
            assert sketch.edge_query(*key) >= weight
        successors = paper_stream.successors()
        for node in successors:
            assert successors[node] <= sketch.successor_query(node)

    def test_no_sampling_variant(self, paper_stream):
        sketch = make_gss(width=8, sampling=False)
        sketch.ingest(paper_stream)
        for key, weight in paper_stream.aggregate_weights().items():
            assert sketch.edge_query(*key) == weight

    def test_square_hashing_reduces_buffer(self, medium_stream):
        stats = medium_stream.statistics()
        width = max(4, int((stats.distinct_edges / 2) ** 0.5))
        with_square = make_gss(width=width, rooms=2, square_hashing=True)
        without_square = make_gss(width=width, rooms=2, square_hashing=False)
        with_square.ingest(medium_stream)
        without_square.ingest(medium_stream)
        assert with_square.buffer_edge_count <= without_square.buffer_edge_count

    def test_more_rooms_reduce_buffer(self, medium_stream):
        stats = medium_stream.statistics()
        width = max(4, int((stats.distinct_edges / 2) ** 0.5))
        one_room = make_gss(width=width, rooms=1)
        two_rooms = make_gss(width=width, rooms=2)
        one_room.ingest(medium_stream)
        two_rooms.ingest(medium_stream)
        assert two_rooms.buffer_edge_count <= one_room.buffer_edge_count

    def test_buffer_edges_remain_queryable(self, medium_stream):
        # Deliberately undersized matrix: many edges must go to the buffer,
        # but every edge stays answerable and never under-estimated.
        sketch = make_gss(width=10, rooms=1)
        sketch.ingest(medium_stream)
        assert sketch.buffer_edge_count > 0
        truth = medium_stream.aggregate_weights()
        for key, weight in list(truth.items())[:200]:
            assert sketch.edge_query(*key) >= weight - 1e-9


class TestGSSIntrospection:
    def test_occupancy_and_counts(self, small_gss, small_stream):
        stats = small_stream.statistics()
        stored = small_gss.matrix_edge_count + small_gss.buffer_edge_count
        assert stored <= stats.distinct_edges
        assert 0 < small_gss.occupancy() <= 1.0
        assert 0 <= small_gss.buffer_percentage <= 1.0

    def test_memory_accounting(self, small_gss):
        base = small_gss.memory_bytes()
        with_index = small_gss.memory_bytes(include_node_index=True)
        assert with_index >= base
        assert base >= small_gss.config.matrix_memory_bytes()

    def test_reconstruct_sketch_edges(self, paper_stream):
        sketch = make_gss(width=8)
        sketch.ingest(paper_stream)
        reconstructed = sketch.reconstruct_sketch_edges()
        # Every streaming-graph edge must appear (via its hashes) with a
        # weight at least as large as the truth.
        truth = paper_stream.aggregate_weights()
        weights = {}
        for source_hash, destination_hash, weight in reconstructed:
            weights[(source_hash, destination_hash)] = weights.get(
                (source_hash, destination_hash), 0.0
            ) + weight
        for (source, destination), weight in truth.items():
            key = (sketch.node_hash(source), sketch.node_hash(destination))
            assert key in weights
            assert weights[key] >= weight

    def test_node_index_exposed(self, small_gss):
        assert small_gss.node_index is not None
        assert len(small_gss.node_index) > 0

    def test_ingest_returns_self(self, paper_stream):
        sketch = make_gss()
        assert sketch.ingest(paper_stream) is sketch
