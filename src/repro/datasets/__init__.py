"""Synthetic dataset substitutes for the paper's evaluation graphs.

The paper evaluates on five public datasets (email-EuAll, cit-HepPh,
web-NotreDame, lkml-reply and a CAIDA network-flow trace).  This environment
has no network access, so :mod:`repro.datasets` generates synthetic analogs
with the properties GSS accuracy actually depends on: number of nodes and
distinct edges, power-law degree skew, Zipfian edge multiplicities and
timestamped arrival order.  ``DESIGN.md`` documents the substitution.
"""

from repro.datasets.zipf import ZipfSampler, zipf_weights
from repro.datasets.synthetic import (
    SyntheticGraphSpec,
    power_law_stream,
    communication_stream,
    citation_stream,
    web_stream,
)
from repro.datasets.registry import DATASET_SPECS, load_dataset, list_datasets
from repro.datasets.generators import (
    barabasi_albert_stream,
    bipartite_stream,
    complete_graph_stream,
    erdos_renyi_stream,
    rmat_stream,
    star_stream,
)
from repro.datasets.perturbations import (
    adversarial_single_row_stream,
    burst_stream,
    inject_deletions,
    inject_duplicates,
    relabel_nodes,
    shuffle_stream,
)

__all__ = [
    "ZipfSampler",
    "zipf_weights",
    "SyntheticGraphSpec",
    "power_law_stream",
    "communication_stream",
    "citation_stream",
    "web_stream",
    "DATASET_SPECS",
    "load_dataset",
    "list_datasets",
    "erdos_renyi_stream",
    "barabasi_albert_stream",
    "rmat_stream",
    "bipartite_stream",
    "complete_graph_stream",
    "star_stream",
    "inject_duplicates",
    "inject_deletions",
    "shuffle_stream",
    "burst_stream",
    "adversarial_single_row_stream",
    "relabel_nodes",
]
