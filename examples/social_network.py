"""Use case 2 (paper Section I): social-network analysis.

Interactions between users form a weighted graph stream.  This example uses a
mailing-list analog (lkml-reply) and GSS to

* recommend "potential friends" — users two hops away that share many
  neighbours with the queried user,
* track how a piece of news can spread from a user (multi-hop reachability),
* estimate how clustered a community is (triangle counting vs TRIEST).

Run with::

    python examples/social_network.py
"""

from __future__ import annotations

from repro import GSS, GSSConfig, AdjacencyListGraph
from repro.baselines import TriestImproved
from repro.datasets import load_dataset
from repro.queries.primitives import consume_stream
from repro.queries.reachability import reachable_set
from repro.queries.triangle import count_triangles


def potential_friends(store, user, limit: int = 5):
    """Friend-of-a-friend recommendation built purely on the query primitives."""
    direct = store.successor_query(user) | store.precursor_query(user)
    scores = {}
    for friend in direct:
        for candidate in store.successor_query(friend) | store.precursor_query(friend):
            if candidate != user and candidate not in direct:
                scores[candidate] = scores.get(candidate, 0) + 1
    ranked = sorted(scores.items(), key=lambda item: item[1], reverse=True)
    return ranked[:limit]


def main() -> None:
    stream = load_dataset("lkml-reply", scale=0.2)
    statistics = stream.statistics()
    print(f"interaction stream: {statistics.item_count} interactions, "
          f"{statistics.node_count} users, {statistics.distinct_edges} relationships")

    config = GSSConfig.for_edge_count(
        statistics.distinct_edges, fingerprint_bits=16, sequence_length=8, candidate_buckets=8
    )
    sketch = GSS(config)
    sketch.ingest(stream)
    exact = consume_stream(AdjacencyListGraph(), stream)

    # -- friend recommendation ------------------------------------------------
    successor_truth = stream.successors()
    active_user = max(successor_truth, key=lambda node: len(successor_truth[node]))
    print(f"\nfriend recommendations for the most active user {active_user!r}:")
    gss_recommendations = potential_friends(sketch, active_user)
    exact_recommendations = dict(potential_friends(exact, active_user, limit=50))
    for candidate, shared in gss_recommendations:
        marker = "(confirmed)" if candidate in exact_recommendations else "(false positive)"
        print(f"  {candidate:>8}: {shared} shared contacts {marker}")

    # -- news spreading ----------------------------------------------------------
    audience = reachable_set(sketch, active_user, max_nodes=3000)
    audience_truth = reachable_set(exact, active_user)
    print(f"\nif {active_user!r} posts news, it can reach "
          f"{len(audience_truth)} users (GSS estimate: {len(audience)}; "
          f"GSS never misses a reachable user)")

    # -- community clustering ------------------------------------------------------
    unique = stream.unique_edges()
    community = unique.nodes()[:400]
    gss_triangles = count_triangles(sketch, community)
    exact_triangles = count_triangles(consume_stream(AdjacencyListGraph(), unique), community)
    triest = TriestImproved(reservoir_size=max(6, len(unique) // 2), seed=1)
    triest.ingest(unique)
    print(f"\ntriangles among the first {len(community)} users: "
          f"GSS {gss_triangles}, exact {exact_triangles}")
    print(f"global triangle estimate from TRIEST (half-size reservoir): "
          f"{triest.triangle_estimate():.0f}")


if __name__ == "__main__":
    main()
