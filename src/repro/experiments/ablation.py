"""Ablation sweeps over GSS design parameters.

DESIGN.md calls out the design choices worth ablating beyond the paper's own
Figure 13 / Table I ablations: fingerprint length, address-sequence length
``r``, number of sampled candidate buckets ``k`` and rooms per bucket.  Each
sweep reports the accuracy/buffer trade-off so the effect of every knob is
visible in one table.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.config import ExperimentConfig, load_streams
from repro.experiments.report import ExperimentResult
from repro.metrics.accuracy import average_precision, average_relative_error
from repro.queries.primitives import edge_weight_or_zero


def _score(sketch, stream, truth, successor_truth, nodes, edges):
    """Edge ARE, successor precision and buffer share of one sketch."""
    pairs = [(edge_weight_or_zero(sketch, *key), truth[key]) for key in edges]
    precision_pairs = [
        (successor_truth.get(node, set()), sketch.successor_query(node)) for node in nodes
    ]
    return {
        "edge_are": average_relative_error(pairs),
        "successor_precision": average_precision(precision_pairs),
        "buffer_pct": sketch.buffer_percentage,
    }


def run_fingerprint_ablation(
    config: ExperimentConfig = None, fingerprint_bits: Sequence[int] = (4, 8, 12, 16)
) -> ExperimentResult:
    """Sweep the fingerprint length: accuracy grows with the hash range M = m*F."""
    config = config or ExperimentConfig()
    result = ExperimentResult(
        experiment="ablation-fingerprint",
        description="accuracy vs fingerprint length (everything else fixed)",
        columns=["dataset", "fingerprint_bits", "edge_are", "successor_precision", "buffer_pct"],
    )
    for name, stream in load_streams(config):
        statistics = stream.statistics()
        width = config.recommended_width(statistics)
        truth = stream.aggregate_weights()
        successor_truth = stream.successors()
        edges = config.sample_items(list(truth))
        nodes = config.sample_items(stream.nodes())
        for bits in fingerprint_bits:
            sketch = config.feed(config.build_gss(width, bits), stream)
            result.add(
                dataset=name,
                fingerprint_bits=bits,
                **_score(sketch, stream, truth, successor_truth, nodes, edges),
            )
    return result


def run_sequence_length_ablation(
    config: ExperimentConfig = None, sequence_lengths: Sequence[int] = (1, 2, 4, 8, 16)
) -> ExperimentResult:
    """Sweep ``r``: longer address sequences shrink the buffer (square hashing)."""
    config = config or ExperimentConfig()
    result = ExperimentResult(
        experiment="ablation-sequence-length",
        description="buffer share vs address-sequence length r",
        columns=["dataset", "sequence_length", "edge_are", "successor_precision", "buffer_pct"],
    )
    bits = max(config.fingerprint_bits)
    for name, stream in load_streams(config):
        statistics = stream.statistics()
        width = config.recommended_width(statistics)
        truth = stream.aggregate_weights()
        successor_truth = stream.successors()
        edges = config.sample_items(list(truth))
        nodes = config.sample_items(stream.nodes())
        for length in sequence_lengths:
            sweep_config = ExperimentConfig(
                datasets=config.datasets,
                dataset_scale=config.dataset_scale,
                fingerprint_bits=config.fingerprint_bits,
                sequence_length=length,
                candidate_buckets=min(config.candidate_buckets, length * length),
                rooms=config.rooms,
                seed=config.seed,
            )
            sketch = sweep_config.feed(sweep_config.build_gss(width, bits), stream)
            result.add(
                dataset=name,
                sequence_length=length,
                **_score(sketch, stream, truth, successor_truth, nodes, edges),
            )
    return result


def run_candidate_ablation(
    config: ExperimentConfig = None, candidate_counts: Sequence[int] = (1, 2, 4, 8, 16)
) -> ExperimentResult:
    """Sweep ``k``: more probed candidates reduce the buffer at higher update cost."""
    config = config or ExperimentConfig()
    result = ExperimentResult(
        experiment="ablation-candidates",
        description="buffer share vs sampled candidate buckets k",
        columns=["dataset", "candidate_buckets", "edge_are", "successor_precision", "buffer_pct"],
    )
    bits = max(config.fingerprint_bits)
    for name, stream in load_streams(config):
        statistics = stream.statistics()
        width = config.recommended_width(statistics)
        truth = stream.aggregate_weights()
        successor_truth = stream.successors()
        edges = config.sample_items(list(truth))
        nodes = config.sample_items(stream.nodes())
        for candidates in candidate_counts:
            sweep_config = ExperimentConfig(
                datasets=config.datasets,
                dataset_scale=config.dataset_scale,
                fingerprint_bits=config.fingerprint_bits,
                sequence_length=config.sequence_length,
                candidate_buckets=candidates,
                rooms=config.rooms,
                seed=config.seed,
            )
            sketch = sweep_config.feed(sweep_config.build_gss(width, bits), stream)
            result.add(
                dataset=name,
                candidate_buckets=candidates,
                **_score(sketch, stream, truth, successor_truth, nodes, edges),
            )
    return result


def run_rooms_ablation(
    config: ExperimentConfig = None, room_counts: Sequence[int] = (1, 2, 3, 4)
) -> ExperimentResult:
    """Sweep ``l`` at constant memory: more rooms per bucket vs a wider matrix."""
    config = config or ExperimentConfig()
    result = ExperimentResult(
        experiment="ablation-rooms",
        description="buffer share vs rooms per bucket at constant memory",
        columns=["dataset", "rooms", "width", "edge_are", "successor_precision", "buffer_pct"],
    )
    bits = max(config.fingerprint_bits)
    for name, stream in load_streams(config):
        statistics = stream.statistics()
        base_width = config.recommended_width(statistics)
        base_capacity = base_width * base_width * config.rooms
        truth = stream.aggregate_weights()
        successor_truth = stream.successors()
        edges = config.sample_items(list(truth))
        nodes = config.sample_items(stream.nodes())
        for rooms in room_counts:
            width = max(4, int((base_capacity / rooms) ** 0.5))
            sketch = config.feed(config.build_gss(width, bits, rooms=rooms), stream)
            result.add(
                dataset=name,
                rooms=rooms,
                width=width,
                **_score(sketch, stream, truth, successor_truth, nodes, edges),
            )
    return result
