"""Unit tests for windowing and stream file IO."""

import pytest

from repro.streaming.edge import StreamEdge
from repro.streaming.io import read_edge_file, write_edge_file
from repro.streaming.stream import GraphStream
from repro.streaming.window import SlidingWindow, tumbling_windows


class TestSlidingWindow:
    def test_push_below_capacity_returns_none(self):
        window = SlidingWindow(3)
        assert window.push(StreamEdge("a", "b")) is None
        assert len(window) == 1
        assert not window.is_full

    def test_eviction_order_is_fifo(self):
        window = SlidingWindow(2)
        first = StreamEdge("a", "b")
        window.push(first)
        window.push(StreamEdge("b", "c"))
        evicted = window.push(StreamEdge("c", "d"))
        assert evicted is first
        assert len(window) == 2
        assert window.is_full

    def test_to_stream(self):
        window = SlidingWindow(2)
        window.push(StreamEdge("a", "b"))
        stream = window.to_stream(name="w")
        assert isinstance(stream, GraphStream)
        assert len(stream) == 1
        assert stream.name == "w"

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            SlidingWindow(0)


class TestTumblingWindows:
    def test_covers_whole_stream(self, paper_stream):
        windows = list(tumbling_windows(paper_stream, 4))
        assert sum(len(w) for w in windows) == len(paper_stream)
        assert len(windows) == 4  # 4 + 4 + 4 + 3

    def test_rejects_bad_size(self, paper_stream):
        with pytest.raises(ValueError):
            list(tumbling_windows(paper_stream, 0))


class TestStreamIO:
    def test_round_trip(self, tmp_path, paper_stream):
        path = tmp_path / "stream.txt"
        write_edge_file(paper_stream, path)
        loaded = read_edge_file(path, name="figure1")
        assert len(loaded) == len(paper_stream)
        assert loaded[0].source == "a" and loaded[0].destination == "b"
        assert loaded.aggregate_weights()[("a", "c")] == 5.0

    def test_labels_survive_round_trip(self, tmp_path):
        stream = GraphStream([StreamEdge("x", "y", 1.0, 0.0, label="tcp")])
        path = tmp_path / "labeled.txt"
        write_edge_file(stream, path)
        assert read_edge_file(path)[0].label == "tcp"

    def test_reads_bare_edge_lists(self, tmp_path):
        path = tmp_path / "snap.txt"
        path.write_text("# comment\n1 2\n2 3\n")
        stream = read_edge_file(path)
        assert len(stream) == 2
        assert stream[0].weight == 1.0
        assert stream[1].timestamp == 2.0  # line position

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("only_one_field\n")
        with pytest.raises(ValueError):
            read_edge_file(path)
