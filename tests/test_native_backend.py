"""Native (compiled-kernel) backend: gates, degrades, and exact equivalence.

The broad observational-equivalence laws already run against the native
backend through the parametrized suites in ``tests/test_numpy_backend.py``
and ``tests/test_api_conformance.py``.  This module covers what is specific
to the compiled backend:

* availability gating — the ``REPRO_DISABLE_NATIVE`` / ``REPRO_DISABLE_NUMBA``
  escape hatches, and graceful degrade-with-warning when the kernel cannot
  run (so no-toolchain and no-numpy environments stay green);
* the kernel envelope — packed uint64 keys and a uint8 fill table — with
  silent degrade under ``auto`` and a warning on explicit requests;
* the persistent C edge->slot map, including the ``2^64 - 1`` side slot;
* the whole-batch text ingestion path and its fallbacks (non-string node
  IDs, embedded NUL bytes), which must be invisible to every observer:
  queries, node index, serialization, and the hash-once counter;
* snapshots recording the *resolved* backend name, and old snapshots
  (written before ``scalar_tail_threshold`` existed) loading unchanged.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core.backends import (
    NUMPY_AVAILABLE,
    resolve_backend_name,
    resolve_counter_backend_name,
)
from repro.core.config import GSSConfig
from repro.core.gss import GSS
from repro.core.merge import merge_sketches
from repro.core.serialization import sketch_from_dict, sketch_to_dict
from repro.hashing.hash_functions import count_key_hashes


def _native_ready() -> bool:
    from repro.core._native import native_available

    return native_available()


requires_native = pytest.mark.skipif(
    not _native_ready(), reason="native kernel unavailable or disabled"
)

CONFIG = dict(matrix_width=16, fingerprint_bits=8, sequence_length=4,
              candidate_buckets=4)


def make(backend: str, **overrides) -> GSS:
    return GSS(GSSConfig(backend=backend, **{**CONFIG, **overrides}))


def stream(count: int = 300, nodes: int = 40):
    return [
        (f"s{(i * 7) % nodes}", f"d{(i * 11 + 3) % nodes}", float(1 + i % 5))
        for i in range(count)
    ]


class TestAvailabilityGates:
    @pytest.mark.parametrize("variable", ["REPRO_DISABLE_NATIVE", "REPRO_DISABLE_NUMBA"])
    def test_escape_hatches_disable_the_kernel(self, monkeypatch, variable):
        from repro.core import _native

        monkeypatch.setenv(variable, "1")
        assert _native.native_disabled()
        assert not _native.native_available()
        assert resolve_backend_name("auto") in ("numpy", "python")

    def test_explicit_native_degrades_with_warning_when_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_NATIVE", "1")
        with pytest.warns(RuntimeWarning, match="falling back"):
            sketch = make("native")
        expected = "numpy" if NUMPY_AVAILABLE else "python"
        assert sketch.backend_name == expected
        sketch.update("a", "b", 1.0)
        assert sketch.edge_query("a", "b") == 1.0

    def test_auto_degrades_silently_when_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_NUMBA", "1")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            sketch = make("auto")
        assert sketch.backend_name != "native"

    def test_counter_backends_never_take_the_kernel(self):
        assert resolve_counter_backend_name("native") == (
            "numpy" if NUMPY_AVAILABLE else "python"
        )
        assert resolve_counter_backend_name("auto") == (
            "numpy" if NUMPY_AVAILABLE else "python"
        )

    @requires_native
    def test_warm_up_reports_ready(self):
        from repro.core._native import warm_up

        assert warm_up() is True


@requires_native
class TestKernelEnvelope:
    def test_wide_hash_range_degrades_to_numpy_with_warning(self):
        with pytest.warns(RuntimeWarning, match="envelope"):
            sketch = make("native", fingerprint_bits=32)
        assert sketch.backend_name == "numpy"

    def test_many_rooms_degrade_to_numpy_with_warning(self):
        with pytest.warns(RuntimeWarning, match="envelope"):
            sketch = make("native", rooms=255)
        assert sketch.backend_name == "numpy"

    def test_auto_degrades_outside_envelope_without_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            sketch = make("auto", fingerprint_bits=32)
        assert sketch.backend_name in ("numpy", "python")


@requires_native
class TestEdgeSlotMap:
    def test_map_roundtrip_and_len(self):
        sketch = make("native")
        table = sketch._matrix._edge_slot
        assert table.get(123) is None
        assert table.get(123, -7) == -7
        table[123] = 5
        assert table.get(123) == 5
        assert 123 in table
        assert 456 not in table
        assert len(table) == 1
        table.update([(456, 9), (789, -1)])
        assert table.get(456) == 9
        assert table.get(789) == -1
        assert len(table) == 3

    def test_max_uint64_key_side_slot(self):
        sketch = make("native")
        table = sketch._matrix._edge_slot
        sentinel = (1 << 64) - 1
        assert table.get(sentinel) is None
        assert sentinel not in table
        table[sentinel] = 42
        assert table.get(sentinel) == 42
        assert sentinel in table
        assert len(table) == 1

    def test_map_survives_growth(self):
        sketch = make("native")
        table = sketch._matrix._edge_slot
        for key in range(5000):
            table[key] = key * 2
        for key in range(0, 5000, 97):
            assert table.get(key) == key * 2
        assert len(table) == 5000


@requires_native
class TestTextPathEquivalence:
    def assert_equal(self, first: GSS, second: GSS, items) -> None:
        assert first.reconstruct_sketch_edges() == second.reconstruct_sketch_edges()
        assert sorted(first.buffer.edges()) == sorted(second.buffer.edges())
        assert first.matrix_edge_count == second.matrix_edge_count
        nodes = {item[0] for item in items} | {item[1] for item in items}
        for node in nodes:
            assert first.successor_query(node) == second.successor_query(node)
            assert first.precursor_query(node) == second.precursor_query(node)

    def test_string_batches_match_numpy_exactly(self):
        items = stream()
        native = make("native")
        reference = make("numpy")
        for offset in range(0, len(items), 64):
            native.update_many(items[offset : offset + 64])
            reference.update_many(items[offset : offset + 64])
        self.assert_equal(native, reference, items)
        assert set(native.node_index.known_nodes()) == set(
            reference.node_index.known_nodes()
        )
        for node in reference.node_index.known_nodes():
            assert native.node_index.hash_of(node) == reference.node_index.hash_of(node)

    def test_hash_once_counter_matches_numpy(self):
        items = stream()
        counts = {}
        for backend in ("numpy", "native"):
            sketch = make(backend)
            with count_key_hashes() as counter:
                sketch.update_many(items)
                sketch.update_many(items)  # all memoized: no extra hashing
            counts[backend] = counter.count
        assert counts["native"] == counts["numpy"]

    def test_non_string_ids_fall_back_identically(self):
        items = [(i % 9, (i * 5 + 1) % 9, 1.0) for i in range(100)]
        native = make("native")
        reference = make("numpy")
        native.update_many(items)
        reference.update_many(items)
        self.assert_equal(native, reference, items)

    def test_embedded_nul_and_mixed_batches_fall_back_identically(self):
        items = [
            ("a\x00b", "plain", 2.0),
            ("plain", "a\x00b", 1.0),
            ("", "empty-source-ok", 1.5),
            ("héllo", "wörld", 1.0),
            (7, "mixed-types", 1.0),
            ("\x00", "\x00\x00", 3.0),
        ]
        native = make("native")
        reference = make("numpy")
        native.update_many(items)
        reference.update_many(items)
        self.assert_equal(native, reference, items)

    def test_scalar_and_batched_updates_interleave(self):
        items = stream(120)
        native = make("native")
        reference = make("numpy")
        native.update_many(items[:50])
        reference.update_many(items[:50])
        for source, destination, weight in items[50:70]:
            native.update(source, destination, weight)
            reference.update(source, destination, weight)
        native.update_many(items[70:])
        reference.update_many(items[70:])
        self.assert_equal(native, reference, items)


@requires_native
class TestSerializationAndMerge:
    def test_snapshot_records_resolved_backend_name(self):
        sketch = make("auto")
        assert sketch.backend_name == "native"
        sketch.update_many(stream(50))
        document = sketch_to_dict(sketch)
        assert document["config"]["backend"] == "native"
        restored = sketch_from_dict(document)
        assert restored.backend_name == "native"
        assert restored.reconstruct_sketch_edges() == sketch.reconstruct_sketch_edges()

    def test_old_snapshot_without_new_config_keys_loads(self):
        sketch = make("numpy")
        sketch.update_many(stream(50))
        document = sketch_to_dict(sketch)
        # Simulate a snapshot written before this release.
        del document["config"]["scalar_tail_threshold"]
        restored = sketch_from_dict(document, backend="native")
        assert restored.backend_name == "native"
        assert restored.reconstruct_sketch_edges() == sketch.reconstruct_sketch_edges()

    def test_mixed_backend_merge_includes_native(self):
        items = stream(240)
        parts = []
        for backend, chunk in zip(
            ("python", "numpy", "native"),
            (items[:80], items[80:160], items[160:]),
        ):
            part = make(backend, seed=5)
            part.update_many(chunk)
            parts.append(part)
        merged = merge_sketches(parts)
        reference = make("native", seed=5)
        reference.update_many(items)
        keys = {(source, destination) for source, destination, _ in items}
        for key in sorted(keys):
            assert merged.edge_query(*key) == reference.edge_query(*key)


class TestScalarTailKnob:
    def test_knob_validates(self):
        with pytest.raises(ValueError, match="scalar_tail_threshold"):
            GSSConfig(matrix_width=8, scalar_tail_threshold=-1)

    @pytest.mark.skipif(not NUMPY_AVAILABLE, reason="NumPy not installed")
    def test_knob_threads_into_numpy_backend(self):
        default = make("numpy")
        assert default._matrix._scalar_tail == default._matrix._SCALAR_TAIL_DEFAULT
        tuned = make("numpy", scalar_tail_threshold=7)
        assert tuned._matrix._scalar_tail == 7
        # Zero disables the scalar tail entirely; results are unaffected.
        vectorized = make("numpy", scalar_tail_threshold=0)
        items = stream(90)
        tuned.update_many(items)
        vectorized.update_many(items)
        assert tuned.reconstruct_sketch_edges() == vectorized.reconstruct_sketch_edges()

    def test_knob_round_trips_through_snapshots(self):
        sketch = GSS(GSSConfig(matrix_width=8, sequence_length=2,
                               candidate_buckets=2, scalar_tail_threshold=13))
        sketch.update("a", "b", 1.0)
        document = sketch_to_dict(sketch)
        assert document["config"]["scalar_tail_threshold"] == 13
        restored = sketch_from_dict(document)
        assert restored.config.scalar_tail_threshold == 13


class TestCompileFlags:
    """The kernel build is strict by construction, and the sanitize mode
    is a first-class flavor of the same cache."""

    def test_default_flags_are_warning_strict(self):
        from repro.core import _native

        flags = _native.compile_flags()
        assert "-Wall" in flags and "-Wextra" in flags
        assert "-O3" in flags
        assert not any(flag.startswith("-fsanitize") for flag in flags)

    def test_sanitize_mode_selects_asan_ubsan_flags(self, monkeypatch):
        from repro.core import _native

        monkeypatch.setenv("REPRO_NATIVE_SANITIZE", "1")
        flags = _native.compile_flags()
        assert "-fsanitize=address,undefined" in flags
        assert "-fno-sanitize-recover=all" in flags
        assert "-Werror" in flags and "-Wall" in flags and "-Wextra" in flags

    def test_flag_flavors_key_separate_cache_entries(self, monkeypatch):
        from repro.core import _native

        default_tag = _native._source_tag()
        monkeypatch.setenv("REPRO_NATIVE_SANITIZE", "1")
        assert _native._source_tag() != default_tag

    def test_sanitize_without_asan_preload_degrades_cleanly(self, monkeypatch):
        from repro.core import _native

        monkeypatch.setenv("REPRO_NATIVE_SANITIZE", "1")
        monkeypatch.delenv("LD_PRELOAD", raising=False)
        _native._reset_for_tests()
        try:
            with pytest.raises(_native.NativeUnavailable, match="ASan runtime"):
                _native.load_native()
            assert not _native.native_available()
        finally:
            # Drop the cached failure so later tests re-probe with the
            # default (non-sanitized) flavor.
            _native._reset_for_tests()
