"""Benchmark: regenerate Table I (update speed of the four structures).

The paper measures million insertions per second of a C++ implementation; a
pure-Python reproduction cannot match the absolute numbers (see EXPERIMENTS.md
for the discussion), so the assertions below check the relationships that
survive the language change: GSS and TCM update within a small constant factor
of each other, and candidate-bucket sampling does not slow updates down
meaningfully.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import run_update_speed_experiment
from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="module")
def speed_config() -> ExperimentConfig:
    return ExperimentConfig(
        datasets=("email-EuAll", "cit-HepPh", "web-NotreDame"),
        dataset_scale=0.25,
        fingerprint_bits=(16,),
        sequence_length=8,
        candidate_buckets=8,
        extras={"speed_repeats": 2},
    )


@pytest.mark.paper_artifact("tab1")
def test_tab1_update_speed(benchmark, speed_config):
    result = run_once(benchmark, run_update_speed_experiment, speed_config)
    print()
    print(result.to_text())

    structures = {row["structure"] for row in result.rows}
    assert structures == {
        "GSS",
        "GSS(update_many)",
        "GSS(no sampling)",
        "TCM",
        "TCM(update_many)",
        "Adjacency Lists",
    }
    assert all(row["edges_per_second"] > 0 for row in result.rows)

    # The batched ingestion path must not be meaningfully slower than scalar
    # updates.  The generous factor absorbs shared-runner timing noise, like
    # the wide relative_to_tcm band below; typical observed speedup is 1.4-2x.
    for dataset in {row["dataset"] for row in result.rows}:
        rates = {
            row["structure"]: row["edges_per_second"]
            for row in result.rows
            if row["dataset"] == dataset
        }
        assert rates["GSS(update_many)"] >= rates["GSS"] * 0.5

    # GSS update speed is within a small factor of TCM's on every dataset
    # (the paper reports them as similar).
    for dataset in {row["dataset"] for row in result.rows}:
        gss = next(
            row for row in result.rows if row["dataset"] == dataset and row["structure"] == "GSS"
        )
        assert 0.2 <= gss["relative_to_tcm"] <= 10.0


@pytest.mark.paper_artifact("tab1")
def test_tab1_numpy_backend_speedup(benchmark, speed_config):
    """The vectorized backend must beat the pure-Python batched path.

    The hard perf target (>= 5x at full Table I scale, 3.5-5x at this bench
    scale; see BENCH_tab1.json) is tracked by scripts/record_bench.py; the
    assertion here is a conservative floor so shared-runner noise cannot
    flake the suite while still catching a vectorization regression.
    """
    from dataclasses import replace as dc_replace

    from repro.core.backends import NUMPY_AVAILABLE

    if not NUMPY_AVAILABLE:
        pytest.skip("NumPy not installed")
    numpy_config = dc_replace(speed_config, backend="numpy")
    numpy_config.extras = dict(speed_config.extras)
    result = run_once(benchmark, run_update_speed_experiment, numpy_config)
    print()
    print(result.to_text())
    python_result = run_update_speed_experiment(speed_config)
    for dataset in {row["dataset"] for row in result.rows}:
        numpy_rate = next(
            row["edges_per_second"] for row in result.rows
            if row["dataset"] == dataset and row["structure"] == "GSS(update_many)"
        )
        python_rate = next(
            row["edges_per_second"] for row in python_result.rows
            if row["dataset"] == dataset and row["structure"] == "GSS(update_many)"
        )
        assert numpy_rate >= python_rate * 1.5, (dataset, numpy_rate, python_rate)
