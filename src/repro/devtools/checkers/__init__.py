"""The repo-specific rules, one module each.

===============  =============================================================
rule             protects
===============  =============================================================
``abi-check``    the ctypes bindings never drift from ``kernel.c``'s exported
                 signatures/struct layouts (silent ABI drift corrupts memory)
``hash-once``    node/route hashing happens once at the system edge — never
                 per item inside a routing or ingest loop
``determinism``  placement-affecting code never iterates unordered sets or
                 consumes unseeded randomness / wall-clock values
``asyncio-safety``  the serve event loop never blocks: no sync sleeps/IO,
                 no summary calls off the executor, no lock held across await
``api-surface``  every registered sketch implements ``GraphSummary``; the
                 deprecated ``-1.0`` sentinel stays dead; experiments build
                 sketches through the factory only
===============  =============================================================
"""

from typing import List

from repro.devtools.checkers.abi import AbiChecker
from repro.devtools.checkers.api_surface import ApiSurfaceChecker
from repro.devtools.checkers.asyncio_safety import AsyncioSafetyChecker
from repro.devtools.checkers.determinism import DeterminismChecker
from repro.devtools.checkers.hash_once import HashOnceChecker
from repro.devtools.framework import Checker

__all__ = [
    "AbiChecker",
    "ApiSurfaceChecker",
    "AsyncioSafetyChecker",
    "DeterminismChecker",
    "HashOnceChecker",
    "default_checkers",
]


def default_checkers() -> List[Checker]:
    """All five rules, in report order."""
    return [
        AbiChecker(),
        HashOnceChecker(),
        DeterminismChecker(),
        AsyncioSafetyChecker(),
        ApiSurfaceChecker(),
    ]
