"""asyncio-safety: nothing may block the serve event loop.

``repro.serve`` runs one event loop for every connection; a single
blocking call inside an ``async def`` stalls *every* client (the served-
throughput numbers in BENCH_tab1.json assume the loop always accepts
while the summary executor grinds).  The summary itself is pipe-backed
and blocking, which is why all summary work must go through the
single-thread executor (``self._run``).  This rule statically enforces
the contract inside every ``async def`` in ``serve/``:

* **no sync sleeps or sync I/O**: ``time.sleep``, ``socket.*``
  connect/accept/recv/send families, ``subprocess``/``os.system``,
  ``open()``/``Path.read_*``/``Path.write_*``, ``select.select``;
* **no blocking joins**: ``fut.result()``, ``thread.join()`` (bare or
  with ``timeout=``; ``str.join(iterable)`` is not flagged),
  ``executor.shutdown(wait=True)``, ``event.wait()``;
* **no direct summary calls off the executor**: ``*.summary.method(...)``
  must be wrapped in ``run_in_executor`` (the server's ``_run``) — the
  worker pipes block and their FIFO discipline is the consistency
  argument;
* **no sync lock held across an await**: a ``with <...lock...>:`` block
  (name containing "lock") whose body awaits parks the lock across a
  scheduling point and can deadlock the loop.

Awaited calls are never flagged (``await loop.run_in_executor(...)`` is
the pattern this rule pushes toward).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.devtools.framework import Checker, PyFile, Violation, iter_parents

__all__ = ["AsyncioSafetyChecker"]

#: Dotted call paths that always block.
_BLOCKING_PATHS = frozenset(
    {
        "time.sleep",
        "socket.create_connection",
        "socket.getaddrinfo",
        "socket.gethostbyname",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "os.system",
        "os.waitpid",
        "select.select",
        "sleep",  # `from time import sleep`
    }
)
#: Method names that block regardless of receiver (socket/file objects).
_BLOCKING_METHODS = frozenset(
    {
        "recv",
        "recv_into",
        "sendall",
        "accept",
        "connect",
        "read_text",
        "read_bytes",
        "write_text",
        "write_bytes",
    }
)


def _call_path(node: ast.Call) -> str:
    parts: List[str] = []
    current: ast.AST = node.func
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
    return ".".join(reversed(parts))


def _is_awaited(pyfile: PyFile, node: ast.Call) -> bool:
    parent = pyfile.parent(node)
    return isinstance(parent, ast.Await)


def _receiver_name(node: ast.Call) -> str:
    """Name of the object a method is called on (``self._executor`` → ``_executor``)."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return ""
    value = func.value
    if isinstance(value, ast.Attribute):
        return value.attr
    if isinstance(value, ast.Name):
        return value.id
    return ""


def _scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk ``scope`` without descending into nested function scopes."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))


class AsyncioSafetyChecker(Checker):
    rule = "asyncio-safety"
    description = (
        "no blocking calls, direct summary calls, or sync locks held "
        "across await inside serve/ coroutines"
    )
    scope = ("serve",)

    def check_file(self, pyfile: PyFile) -> Iterator[Violation]:
        for node in pyfile.walk():
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_coroutine(pyfile, node)

    def _check_coroutine(
        self, pyfile: PyFile, coroutine: ast.AsyncFunctionDef
    ) -> Iterator[Violation]:
        for node in _scope_nodes(coroutine):
            if isinstance(node, ast.Call) and not _is_awaited(pyfile, node):
                problem = self._blocking_problem(node)
                if problem is not None:
                    yield self.violation(
                        pyfile,
                        node,
                        f"{problem} inside `async def {coroutine.name}` blocks "
                        "the event loop — move it behind "
                        "run_in_executor/asyncio equivalents",
                    )
                    continue
                summary_method = self._summary_call(node)
                if summary_method is not None:
                    yield self.violation(
                        pyfile,
                        node,
                        f"direct summary call .summary.{summary_method}(...) "
                        f"inside `async def {coroutine.name}` — summary "
                        "operations block on worker pipes and must go "
                        "through the single-thread executor",
                    )
            elif isinstance(node, ast.With):
                yield from self._check_lock_across_await(pyfile, coroutine, node)

    def _blocking_problem(self, node: ast.Call) -> Optional[str]:
        path = _call_path(node)
        if path in _BLOCKING_PATHS:
            return f"blocking call {path}()"
        tail = path.rsplit(".", 1)[-1]
        if tail in _BLOCKING_METHODS and isinstance(node.func, ast.Attribute):
            return f"blocking method .{tail}()"
        if path == "open" or tail == "open":
            return "sync file open()"
        if isinstance(node.func, ast.Attribute):
            if node.func.attr == "result":
                return "Future.result() (blocking join)"
            if node.func.attr == "join" and (
                not node.args or any(k.arg == "timeout" for k in node.keywords)
            ):
                # str.join takes exactly one positional and no timeout=.
                return "thread/process .join()"
            if node.func.attr == "wait" and not node.args:
                receiver = _receiver_name(node)
                if "event" in receiver.lower() or "thread" in receiver.lower():
                    return f"{receiver}.wait() (blocking)"
            if node.func.attr == "shutdown" and any(
                keyword.arg == "wait"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
                for keyword in node.keywords
            ):
                return "executor .shutdown(wait=True) (joins worker threads)"
        return None

    def _summary_call(self, node: ast.Call) -> Optional[str]:
        """``<anything>.summary.<method>(...)`` → the method name."""
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "summary"
        ):
            return func.attr
        return None

    def _check_lock_across_await(
        self, pyfile: PyFile, coroutine: ast.AsyncFunctionDef, node: ast.With
    ) -> Iterator[Violation]:
        holds_lock = any(
            "lock" in _context_name(item.context_expr).lower()
            for item in node.items
        )
        if not holds_lock:
            return
        for inner in ast.walk(node):
            if isinstance(inner, ast.Await):
                yield self.violation(
                    pyfile,
                    node,
                    f"sync lock held across `await` in `async def "
                    f"{coroutine.name}` — the lock parks on the loop across "
                    "a scheduling point (use asyncio.Lock, or don't await "
                    "under the lock)",
                )
                return


def _context_name(expr: ast.AST) -> str:
    if isinstance(expr, ast.Call):
        expr = expr.func
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return ""
