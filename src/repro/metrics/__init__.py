"""Evaluation metrics used throughout Section VII of the paper."""

from repro.metrics.accuracy import (
    average_precision,
    average_relative_error,
    buffer_percentage,
    precision,
    relative_error,
    true_negative_recall,
)
from repro.metrics.throughput import Throughput, measure_update_throughput

__all__ = [
    "relative_error",
    "average_relative_error",
    "precision",
    "average_precision",
    "true_negative_recall",
    "buffer_percentage",
    "Throughput",
    "measure_update_throughput",
]
