"""A sharded GSS, modelling deployment inside a distributed graph system.

The paper's introduction notes that GSS "can also be used in existing
distributed graph systems" (GraphX, PowerGraph, Pregel, GraphLab).  Those
systems partition the edge set across workers; this module reproduces that
deployment pattern on a single machine:

* edges are routed to one of ``partitions`` independent GSS shards by hashing
  the *source* node (source-cut partitioning, the scheme Pregel-style systems
  use for out-edges);
* every shard is an ordinary :class:`~repro.core.gss.GSS` with its own matrix
  and buffer, so shard updates are independent and could run in parallel;
* edge and successor queries touch exactly one shard (the owner of the source
  node); precursor queries and node in-weight must fan out to all shards,
  mirroring the scatter/gather cost profile of real distributed systems.

The class implements the same query-primitive interface as ``GSS`` itself, so
the whole compound-query layer (reachability, triangles, subgraph matching,
PageRank, ...) runs unchanged on top of a partitioned deployment.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.core.config import GSSConfig
from repro.core.gss import GSS
from repro.hashing.hash_functions import hash_key
from repro.queries.primitives import Capabilities, ShardIngestStats, SummaryShims
from repro.streaming.batch import HashedBatch, HashSpec


class PartitionedGSS(SummaryShims):
    """GSS sharded over ``partitions`` source-partitioned shards.

    Parameters
    ----------
    config:
        Configuration of every shard.  A deployment that wants the same total
        capacity as a monolithic sketch of width ``m`` should use shards of
        width roughly ``m / sqrt(partitions)``;
        :meth:`for_total_capacity` does that arithmetic.
    partitions:
        Number of shards.
    routing_seed:
        Seed of the hash used to route source nodes to shards, independent
        from the sketches' own node hash.

    Examples
    --------
    >>> sharded = PartitionedGSS(GSSConfig(matrix_width=16), partitions=4)
    >>> sharded.update("a", "b", 2.0)
    >>> sharded.edge_query("a", "b")
    2.0
    >>> sorted(sharded.successor_query("a"))
    ['b']
    """

    def __init__(
        self, config: GSSConfig, partitions: int = 4, routing_seed: int = 97
    ) -> None:
        if partitions < 1:
            raise ValueError("partitions must be at least 1")
        self.config = config
        self.partitions = partitions
        self._routing_seed = routing_seed
        self._shards: List[GSS] = [GSS(config) for _ in range(partitions)]
        self._update_count = 0
        self._shard_item_counts: List[int] = [0] * partitions
        # Cross-batch hash memos threaded through HashedBatch.from_items so a
        # key seen in an earlier batch is never hashed again.
        self._node_memo: Dict[Hashable, int] = {}
        self._route_memo: Dict[Hashable, int] = {}

    @classmethod
    def for_total_capacity(
        cls,
        expected_edges: int,
        partitions: int = 4,
        fingerprint_bits: int = 16,
        **config_overrides,
    ) -> "PartitionedGSS":
        """Build shards whose combined matrix holds ``expected_edges`` rooms.

        Each shard receives an equal portion of the expected edges, so the
        per-shard width follows the paper's ``m ~ sqrt(|E| / partitions)``
        guidance.
        """
        if expected_edges <= 0:
            raise ValueError("expected_edges must be positive")
        per_shard = max(1, expected_edges // max(1, partitions))
        config = GSSConfig.for_edge_count(
            per_shard, fingerprint_bits=fingerprint_bits, **config_overrides
        )
        return cls(config, partitions=partitions)

    # -- routing ------------------------------------------------------------

    def shard_of(self, node: Hashable) -> int:
        """Index of the shard that owns the out-edges of ``node``."""
        return hash_key(node, seed=self._routing_seed) % self.partitions

    @property
    def shards(self) -> List[GSS]:
        """The underlying per-partition sketches (read-only use intended)."""
        return self._shards

    # -- updates --------------------------------------------------------------

    def update(self, source: Hashable, destination: Hashable, weight: float = 1.0) -> None:
        """Route one stream item to the shard owning its source node."""
        self._update_count += 1
        shard = self.shard_of(source)
        self._shard_item_counts[shard] += 1
        self._shards[shard].update(source, destination, weight)

    def hash_spec(self) -> HashSpec:
        """Shard node-hash family plus this deployment's routing seed.

        Batches built under this spec carry both the sketch node hashes the
        shards place by and the routing hashes :meth:`update_many_hashed`
        splits on — each computed exactly once at batch-build time.
        """
        return HashSpec(
            seed=self.config.seed,
            hash_range=self.config.hash_range,
            routing_seed=self._routing_seed,
        )

    def update_many(self, items: Iterable[Tuple[Hashable, Hashable, float]]) -> int:
        """Apply a batch of ``(source, destination, weight)`` stream items.

        The items become one :class:`~repro.streaming.batch.HashedBatch`
        (node and routing hashes computed once, vectorized when NumPy is
        available), which is group-split by routing hash and fed to each
        owning shard's hashed ingest path — no per-edge hashing or Python
        routing loop.  Returns the number of items applied.
        """
        return self.update_many_hashed(
            HashedBatch.from_items(
                items,
                self.hash_spec(),
                node_memo=self._node_memo,
                route_memo=self._route_memo,
            )
        )

    def update_many_hashed(self, batch: HashedBatch) -> int:
        """Route a prepared :class:`HashedBatch` to its owning shards.

        A batch built under a different hash family (or without routing
        hashes) is re-hashed once here; a matching batch flows through with
        zero additional hash work.
        """
        spec = self.hash_spec()
        if (
            not batch.hashed
            or batch.spec is None
            or not batch.spec.matches(spec)
            or batch.spec.routing_seed != self._routing_seed
            or batch.route_hashes is None
        ):
            batch = HashedBatch.from_items(
                batch.items(),
                spec,
                node_memo=self._node_memo,
                route_memo=self._route_memo,
            )
        count = 0
        for shard_index, sub_batch in batch.split_by_route(self.partitions):
            self._shard_item_counts[shard_index] += len(sub_batch)
            self._shards[shard_index].update_many_hashed(sub_batch)
            count += len(sub_batch)
        self._update_count += count
        return count

    def ingest(self, edges) -> "PartitionedGSS":
        """Feed an iterable of :class:`~repro.streaming.edge.StreamEdge`."""
        self.update_many((edge.source, edge.destination, edge.weight) for edge in edges)
        return self

    # -- query primitives ------------------------------------------------------

    def edge_query(self, source: Hashable, destination: Hashable) -> Optional[float]:
        """Edge query served by the single shard owning ``source``.

        ``None`` reports an absent edge, matching the shard's own convention.
        """
        return self._shards[self.shard_of(source)].edge_query(source, destination)

    def successor_query(self, node: Hashable) -> Set[Hashable]:
        """Successor query served by the single shard owning ``node``."""
        return self._shards[self.shard_of(node)].successor_query(node)

    def precursor_query(self, node: Hashable) -> Set[Hashable]:
        """Precursor query: fans out to every shard and unions the answers."""
        result: Set[Hashable] = set()
        for shard in self._shards:
            result.update(shard.precursor_query(node))
        return result

    def node_out_weight(self, node: Hashable) -> float:
        """Node query (total out-weight), served by the owning shard."""
        return self._shards[self.shard_of(node)].node_out_weight(node)

    def node_in_weight(self, node: Hashable) -> float:
        """Total in-coming weight of ``node``, gathered from every shard."""
        return sum(shard.node_in_weight(node) for shard in self._shards)

    # -- introspection -----------------------------------------------------------

    @property
    def update_count(self) -> int:
        """Number of stream items applied across all shards."""
        return self._update_count

    @property
    def matrix_edge_count(self) -> int:
        """Distinct sketch edges stored in shard matrices."""
        return sum(shard.matrix_edge_count for shard in self._shards)

    @property
    def buffer_edge_count(self) -> int:
        """Distinct sketch edges stored in shard buffers."""
        return sum(shard.buffer_edge_count for shard in self._shards)

    @property
    def buffer_percentage(self) -> float:
        """Fraction of stored sketch edges that had to go to shard buffers."""
        total = self.matrix_edge_count + self.buffer_edge_count
        return self.buffer_edge_count / total if total else 0.0

    def shard_loads(self) -> List[int]:
        """Number of sketch edges (matrix + buffer) stored per shard.

        Source-cut routing follows the node-popularity skew of the stream, so
        the spread of this list quantifies the load imbalance a real
        distributed deployment would see.
        """
        return [
            shard.matrix_edge_count + shard.buffer_edge_count for shard in self._shards
        ]

    def load_imbalance(self) -> float:
        """Max shard load divided by the mean shard load (1.0 = perfectly even).

        Safe on an empty deployment and on deployments where some (or all)
        shards never received an update: an all-zero load vector reports a
        perfectly even 1.0 instead of dividing by zero.
        """
        loads = self.shard_loads()
        mean = sum(loads) / len(loads) if loads else 0.0
        if mean == 0:
            return 1.0
        return max(loads) / mean

    def shard_buffer_percentages(self) -> List[float]:
        """Buffer fraction of each shard, 0.0 for shards that stored nothing.

        The per-shard breakdown of :attr:`buffer_percentage`; zero-update
        shards report 0.0 rather than dividing by an empty store.
        """
        percentages = []
        for shard in self._shards:
            stored = shard.matrix_edge_count + shard.buffer_edge_count
            percentages.append(shard.buffer_edge_count / stored if stored else 0.0)
        return percentages

    def shard_ingest_stats(self) -> ShardIngestStats:
        """Items routed per shard (see :class:`ShardIngestStats`).

        The in-process deployment applies every item synchronously, so the
        queue-depth high-water mark is always 0; the multi-process
        :class:`~repro.cluster.ShardedSummary` reports the same shape with a
        real queue depth, which is what lets ``StreamSession`` surface both
        uniformly.
        """
        return ShardIngestStats(
            items_routed=list(self._shard_item_counts), queue_depth_high_water=0
        )

    def matrix_memory_bytes(self) -> int:
        """Combined matrix budget of all shards under the paper's C layout.

        Parity with ``GSS.config.matrix_memory_bytes()`` *totalled over the
        deployment*: callers doing equal-memory comparisons against a
        partitioned sketch must use this (or :meth:`memory_bytes`), never the
        per-shard ``config.matrix_memory_bytes()``, which accounts a single
        shard only.
        """
        return sum(shard.config.matrix_memory_bytes() for shard in self._shards)

    def memory_bytes(self, include_node_index: bool = False) -> int:
        """Total memory of all shards under the paper's C layout."""
        return sum(
            shard.memory_bytes(include_node_index=include_node_index)
            for shard in self._shards
        )

    def merge_into_single(self, config: Optional[GSSConfig] = None) -> GSS:
        """Collapse the shards back into one monolithic sketch.

        The shards' sketch edges are replayed by hash into a fresh ``GSS``
        (default: same per-shard config), demonstrating that a partitioned
        deployment can hand a combined summary to a central analyser.  Note
        that node-ID recovery requires the shards' node indexes, which are
        merged when present.

        The target configuration must keep the shards' node-hash parameters
        (same ``hash_range`` and ``seed``), otherwise the replayed hashes
        would not correspond to the same nodes.
        """
        target_config = config if config is not None else self.config
        if (
            target_config.hash_range != self.config.hash_range
            or target_config.seed != self.config.seed
        ):
            raise ValueError(
                "merge target must use the same hash_range and seed as the shards"
            )
        target = GSS(target_config)
        for shard in self._shards:
            target.update_many_by_hash(shard.reconstruct_sketch_edges())
            if shard.node_index is not None and target.node_index is not None:
                for node in shard.node_index.known_nodes():
                    target.node_index.record(node, shard.node_index.hash_of(node))
        return target

    @classmethod
    def capabilities(cls) -> Capabilities:
        """Feature descriptor: full query surface, shards mergeable into one."""
        return Capabilities(mergeable=True)
