"""Unit tests for the evaluation metrics."""

import pytest

from repro.metrics.accuracy import (
    average_precision,
    average_relative_error,
    buffer_percentage,
    precision,
    relative_error,
    true_negative_recall,
)
from repro.metrics.throughput import Throughput, measure_update_throughput, relative_speed
from repro.streaming.edge import StreamEdge


class TestRelativeError:
    def test_exact_estimate_is_zero(self):
        assert relative_error(10.0, 10.0) == 0.0

    def test_overestimate_positive(self):
        assert relative_error(12.0, 10.0) == pytest.approx(0.2)

    def test_zero_truth_rejected(self):
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)

    def test_average(self):
        assert average_relative_error([(12, 10), (10, 10)]) == pytest.approx(0.1)
        assert average_relative_error([]) == 0.0


class TestPrecision:
    def test_perfect(self):
        assert precision({"a", "b"}, {"a", "b"}) == 1.0

    def test_false_positives_lower_precision(self):
        assert precision({"a"}, {"a", "b", "c", "d"}) == 0.25

    def test_empty_sets(self):
        assert precision(set(), set()) == 1.0
        assert precision({"a"}, set()) == 0.0

    def test_average(self):
        pairs = [({"a"}, {"a"}), ({"a"}, {"a", "b"})]
        assert average_precision(pairs) == pytest.approx(0.75)
        assert average_precision([]) == 0.0


class TestTrueNegativeRecall:
    def test_all_correct(self):
        assert true_negative_recall([False, False, False]) == 1.0

    def test_partially_correct(self):
        assert true_negative_recall([False, True, False, True]) == 0.5

    def test_empty(self):
        assert true_negative_recall([]) == 0.0


class TestBufferPercentage:
    def test_fraction(self):
        assert buffer_percentage(5, 100) == 0.05

    def test_zero_total(self):
        assert buffer_percentage(5, 0) == 0.0


class TestThroughput:
    def test_rates(self):
        measurement = Throughput(label="x", items=2_000_000, seconds=2.0)
        assert measurement.items_per_second == 1_000_000
        assert measurement.mips == pytest.approx(1.0)

    def test_zero_seconds(self):
        assert Throughput("x", 10, 0.0).items_per_second == float("inf")

    def test_measure_update_throughput(self):
        class Counter:
            def __init__(self):
                self.count = 0

            def update(self, source, destination, weight=1.0):
                self.count += 1

        edges = [StreamEdge(f"s{i}", f"d{i}") for i in range(500)]
        measurement = measure_update_throughput(Counter, edges, label="counter", repeats=2)
        assert measurement.items == 1000
        assert measurement.items_per_second > 0

    def test_measure_rejects_bad_repeats(self):
        with pytest.raises(ValueError):
            measure_update_throughput(object, [], repeats=0)

    def test_relative_speed(self):
        reference = Throughput("ref", 100, 1.0)
        other = Throughput("other", 200, 1.0)
        ratios = relative_speed(reference, [reference, other])
        assert ratios["ref"] == pytest.approx(1.0)
        assert ratios["other"] == pytest.approx(2.0)
