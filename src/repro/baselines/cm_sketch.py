"""Count-Min sketch over edge keys (Cormode & Muthukrishnan).

The first family of graph-stream summaries the paper discusses stores each
stream item in counter arrays independently, ignoring topology.  They support
edge-weight queries only: given ``(s, d)`` they estimate the aggregated weight
but cannot enumerate successors, precursors or reachability.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.core.backends import resolve_counter_backend_name
from repro.hashing.hash_functions import hash_key
from repro.hashing.vectorized import hash_strings_array, load_numpy
from repro.queries.primitives import Capabilities, SummaryShims, UnsupportedQueryError


class CountMinSketch(SummaryShims):
    """Standard Count-Min sketch keyed by the edge's (source, destination) pair.

    ``backend`` selects the counter storage: ``"python"`` nested lists (the
    default), ``"numpy"`` a ``(depth, width)`` float64 array whose
    :meth:`update_many` hashes and scatters whole batches per row, or
    ``"auto"``.
    """

    def __init__(
        self, width: int, depth: int = 4, seed: int = 0, backend: str = "python"
    ) -> None:
        if width <= 0:
            raise ValueError("width must be positive")
        if depth < 1:
            raise ValueError("depth must be at least 1")
        self.width = width
        self.depth = depth
        self.seed = seed
        self.backend = resolve_counter_backend_name(backend)
        if self.backend == "numpy":
            np = load_numpy()
            self.counters = np.zeros((depth, width), dtype=np.float64)
        else:
            self.counters: List[List[float]] = [[0.0] * width for _ in range(depth)]
        self._update_count = 0

    def _positions(self, source: Hashable, destination: Hashable) -> List[Tuple[int, int]]:
        key = (source, destination)
        return [
            (row, hash_key(key, self.seed + row) % self.width)
            for row in range(self.depth)
        ]

    def update(self, source: Hashable, destination: Hashable, weight: float = 1.0) -> None:
        """Add ``weight`` to every row's counter for this edge."""
        self._update_count += 1
        for row, column in self._positions(source, destination):
            self.counters[row][column] += weight

    def update_many(self, items: Iterable[Tuple[Hashable, Hashable, float]]) -> int:
        """Apply a batch of stream items, pre-aggregated per edge key.

        On the NumPy backend the per-row hashing of the distinct edge keys
        and the counter scatter are array operations (``hash_key`` hashes a
        tuple key through ``repr``, which vectorizes as a string batch).
        Returns the number of items applied.
        """
        triples = items if isinstance(items, list) else list(items)
        if not triples:
            return 0
        count = len(triples)
        aggregated: Dict[Tuple[Hashable, Hashable], float] = {}
        for source, destination, weight in triples:
            key = (source, destination)
            aggregated[key] = aggregated.get(key, 0.0) + weight
        if self.backend != "numpy":
            for (source, destination), weight in aggregated.items():
                for row, column in self._positions(source, destination):
                    self.counters[row][column] += weight
        else:
            np = load_numpy()
            reprs = [repr(key) for key in aggregated]
            weights = np.fromiter(
                aggregated.values(), dtype=np.float64, count=len(aggregated)
            )
            for row in range(self.depth):
                columns = (
                    hash_strings_array(reprs, self.seed + row) % np.uint64(self.width)
                ).astype(np.int64)
                self.counters[row] += np.bincount(
                    columns, weights=weights, minlength=self.width
                )
        self._update_count += count
        return count

    def ingest(self, edges) -> "CountMinSketch":
        """Feed an iterable of stream edges."""
        for edge in edges:
            self.update(edge.source, edge.destination, edge.weight)
        return self

    def edge_query(self, source: Hashable, destination: Hashable) -> Optional[float]:
        """Count-Min estimate: minimum counter across the rows.

        ``None`` when the minimum is zero — for an insert-only stream a zero
        counter proves the edge never appeared.
        """
        estimate = float(
            min(self.counters[row][column] for row, column in self._positions(source, destination))
        )
        return estimate if estimate != 0.0 else None

    def successor_query(self, node: Hashable) -> Set[Hashable]:
        """CM sketches store no topology."""
        raise UnsupportedQueryError(f"{type(self).__name__} stores no topology")

    def precursor_query(self, node: Hashable) -> Set[Hashable]:
        """CM sketches store no topology."""
        raise UnsupportedQueryError(f"{type(self).__name__} stores no topology")

    def node_out_weight(self, node: Hashable) -> float:
        """CM sketches cannot aggregate per-node weights."""
        raise UnsupportedQueryError(f"{type(self).__name__} stores no topology")

    def node_in_weight(self, node: Hashable) -> float:
        """CM sketches cannot aggregate per-node weights."""
        raise UnsupportedQueryError(f"{type(self).__name__} stores no topology")

    @property
    def update_count(self) -> int:
        """Number of stream items applied."""
        return self._update_count

    def memory_bytes(self) -> int:
        """Counter memory under a C layout (32-bit counters)."""
        return self.depth * self.width * 4

    @classmethod
    def capabilities(cls) -> Capabilities:
        """Feature descriptor: edge-weight queries only, counters serialize."""
        return Capabilities(
            successor_queries=False,
            precursor_queries=False,
            node_out_weights=False,
            node_in_weights=False,
            serializable=True,
        )

    _SKETCH_TAG = "cm"

    def to_dict(self) -> Dict:
        """Serialize the counter rows to a document."""
        return {
            "sketch": self._SKETCH_TAG,
            "width": self.width,
            "depth": self.depth,
            "seed": self.seed,
            "backend": self.backend,
            "update_count": self._update_count,
            "counters": [
                [float(value) for value in row] for row in self.counters
            ],
        }

    @classmethod
    def from_dict(cls, document: Dict, backend: Optional[str] = None) -> "CountMinSketch":
        """Rebuild a sketch from a :meth:`to_dict` document."""
        sketch = cls(
            width=document["width"],
            depth=document["depth"],
            seed=document.get("seed", 0),
            backend=backend if backend is not None else document.get("backend", "python"),
        )
        if sketch.backend == "numpy":
            np = load_numpy()
            sketch.counters = np.asarray(document["counters"], dtype=np.float64)
        else:
            sketch.counters = [
                [float(value) for value in row] for row in document["counters"]
            ]
        sketch._update_count = document.get("update_count", 0)
        return sketch
