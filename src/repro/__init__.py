"""repro — reproduction of "Fast and Accurate Graph Stream Summarization" (ICDE 2019).

The package implements the Graph Stream Sketch (GSS) together with every
substrate and baseline the paper's evaluation relies on: the graph-stream
model, synthetic dataset analogs, exact stores, TCM / gMatrix / CM / CU /
gSketch / TRIEST baselines, an exact subgraph matcher, the query layer built
on the three graph query primitives, the analytical models of Section VI and
an experiment harness that regenerates every table and figure.

Quickstart::

    from repro import GSS, GSSConfig
    from repro.datasets import load_dataset

    stream = load_dataset("email-EuAll")
    sketch = GSS(GSSConfig.for_edge_count(stream.statistics().distinct_edges))
    sketch.ingest(stream)
    print(sketch.edge_query("n1", "n2"))
    print(sketch.successor_query("n1"))
"""

from repro.core import GSS, GSSBasic, GSSConfig
from repro.baselines import TCM, GMatrix, CountMinSketch, CountMinCUSketch, GSketch
from repro.exact import AdjacencyListGraph, AdjacencyMatrixGraph
from repro.streaming import GraphStream, StreamEdge

__version__ = "1.0.0"

__all__ = [
    "GSS",
    "GSSBasic",
    "GSSConfig",
    "TCM",
    "GMatrix",
    "CountMinSketch",
    "CountMinCUSketch",
    "GSketch",
    "AdjacencyListGraph",
    "AdjacencyMatrixGraph",
    "GraphStream",
    "StreamEdge",
    "__version__",
]
