#!/usr/bin/env python
"""Record the Table I perf trajectory into ``BENCH_tab1.json``.

Runs the tab1 update-speed experiment on the pure-Python backend and — when
available — on the NumPy and native (compiled kernel) backends, in one
process (same machine state, same streams), then writes one machine-readable
document containing every row set plus the per-dataset ``GSS(update_many)``
speedups (numpy vs python, native vs numpy) and the remaining gap to the
exact adjacency-list baseline.  Re-running appends a new entry to the
``runs`` list, so the file accumulates the perf trajectory across PRs.

Usage::

    PYTHONPATH=src python scripts/record_bench.py                 # default bench scale
    PYTHONPATH=src python scripts/record_bench.py --quick         # smoke
    PYTHONPATH=src python scripts/record_bench.py --repeats 3     # steadier numbers
    PYTHONPATH=src python scripts/record_bench.py --profile       # + per-stage profile
    PYTHONPATH=src python scripts/record_bench.py --workers 4     # + cluster row
    PYTHONPATH=src python scripts/record_bench.py --workers 2 --transport shm
    PYTHONPATH=src python scripts/record_bench.py --serve       # + served throughput
    PYTHONPATH=src python scripts/record_bench.py --out BENCH_tab1.json

With ``--workers`` the run also records ``sharded_speedup_vs_update_many``
and — when both data planes were measured — ``transport_speedup_shm_vs_pipe``
(shared-memory ring vs pickled pipe, same worker count and stream).

With ``--serve`` the run additionally measures the network front end: a
:mod:`repro.serve` server is started in-process over a fresh cluster and
driven by the :mod:`repro.serve.loadgen` harness (concurrent ingest feeds +
query clients over real TCP), recording ``served_throughput_edges_per_s``,
``served_vs_inprocess`` (the protocol's toll against the same cluster fed
directly) and the p50/p99 served query latency.

With ``--profile`` each backend's run also records where batched-ingest time
goes (hashing / placement / buffer-spill / memo upkeep, totals and per
batch) under ``results.<backend>.ingest_profile`` — plus, from the
:mod:`repro.obs` registry the profiler forwards into, per-stage latency
*distributions* (count, total, p50/p99) under
``results.<backend>.obs_stage_seconds``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cli import results_to_document  # noqa: E402
from repro.experiments.config import ExperimentConfig  # noqa: E402
from repro.experiments.update_speed import run_update_speed_experiment  # noqa: E402
from repro.hashing.vectorized import NUMPY_AVAILABLE  # noqa: E402


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_tab1.json"),
                        help="trajectory file to append to (default: BENCH_tab1.json)")
    parser.add_argument("--quick", action="store_true",
                        help="tiny smoke configuration instead of bench scale")
    parser.add_argument("--scale", type=float, default=None,
                        help="override the dataset scale factor")
    parser.add_argument("--batch-size", type=int, default=None,
                        help="update_many chunk size (default 1024)")
    parser.add_argument("--repeats", type=int, default=1,
                        help="cold runs averaged per measurement (default 1)")
    parser.add_argument("--profile", action="store_true",
                        help="record a per-stage ingest profile (hashing / "
                             "placement / buffer-spill / memo upkeep) for "
                             "every backend's run")
    parser.add_argument("--workers", type=int, default=0,
                        help="also measure a multi-process sharded-gss cluster "
                             "row with this many worker processes (default 0 = off)")
    parser.add_argument("--transport", choices=["auto", "shm", "pipe"], default="auto",
                        help="data-plane transport of the cluster row; also "
                             "records a pipe-vs-shm comparison when not 'pipe' "
                             "(default auto)")
    parser.add_argument("--label", default=None,
                        help="free-form label stored with the run (e.g. the PR number)")
    parser.add_argument("--serve", action="store_true",
                        help="also measure the repro.serve network front end "
                             "(served throughput + query latency over TCP)")
    parser.add_argument("--serve-items", type=int, default=60_000,
                        help="synthetic stream length of the --serve "
                             "measurement (default 60000)")
    parser.add_argument("--serve-workers", type=int, default=0,
                        help="worker processes behind the served cluster "
                             "(default: --workers, or 2)")
    return parser.parse_args(argv)


def measure_serve(args: argparse.Namespace) -> dict:
    """The ``--serve`` section: served vs in-process throughput, one stream.

    Both sides ingest the identical synthetic stream into an identically
    specced ``sharded-gss`` cluster; the served side pays the protocol toll
    (framing, TCP, admission control) with concurrent query clients running,
    the in-process side calls ``update_many`` directly.
    """
    import time

    from repro.api import SketchSpec, build
    from repro.serve import ServeConfig, serve_in_thread
    from repro.serve.loadgen import LoadGenConfig, run_load_test, synthetic_stream

    workers = args.serve_workers or args.workers or 2
    transport = args.transport
    stream = synthetic_stream(args.serve_items, nodes=4_000, seed=11)
    spec = SketchSpec(
        "sharded-gss",
        expected_edges=max(1, len(stream)),
        params={"workers": workers, "transport": transport},
    )

    direct = build(spec)
    begin = time.perf_counter()
    direct.update_many(stream)
    direct.flush()
    inprocess_elapsed = time.perf_counter() - begin
    direct.close()
    inprocess_eps = len(stream) / inprocess_elapsed if inprocess_elapsed else 0.0

    cluster = build(spec)
    handle = serve_in_thread(cluster, ServeConfig(close_summary=False))
    try:
        report = run_load_test(
            LoadGenConfig(
                host=handle.host,
                port=handle.port,
                ingest_clients=2,
                query_clients=6,
                total_items=len(stream),
            ),
            stream=stream,
        )
    finally:
        handle.stop()
        cluster.close()

    served_eps = report["edges_per_second"]
    section = {
        "items": len(stream),
        "workers": workers,
        "transport": report["server"]["transport"],
        "binary_ingest": report["server"]["binary_ingest"],
        "ingest_clients": report["clients"]["ingest"],
        "query_clients": report["clients"]["query"],
        "served_throughput_edges_per_s": served_eps,
        "inprocess_edges_per_s": inprocess_eps,
        "served_vs_inprocess": served_eps / inprocess_eps if inprocess_eps else None,
        "query_p50_ms": report["query"]["p50_ms"],
        "query_p99_ms": report["query"]["p99_ms"],
        "queries": report["query"]["count"],
        "busy_retries": report["busy_retries"],
        "server_busy_replies": report["server"]["busy_replies"],
    }
    print(
        f"served: {served_eps:,.0f} edges/s over TCP "
        f"({section['ingest_clients']} feeds + {section['query_clients']} "
        f"query clients, workers={workers}, "
        f"transport={section['transport']}) vs in-process "
        f"{inprocess_eps:,.0f} edges/s -> "
        f"{section['served_vs_inprocess']:.2f}x; query p50 "
        f"{section['query_p50_ms']:.2f} ms, p99 {section['query_p99_ms']:.2f} ms"
    )
    return section


def build_config(args: argparse.Namespace, backend: str) -> ExperimentConfig:
    config = ExperimentConfig.quick() if args.quick else ExperimentConfig()
    config.backend = backend
    if args.scale is not None:
        config.dataset_scale = args.scale
    if args.batch_size is not None:
        config.extras["batch_size"] = args.batch_size
    if args.repeats != 1:
        config.extras["speed_repeats"] = args.repeats
    if args.workers:
        config.workers = args.workers
        config.transport = args.transport
        # Measure both data planes head to head unless pipes were forced.
        if args.transport != "pipe":
            config.extras["transport_compare"] = True
    return config


def structure_rates(rows, structure: str) -> dict:
    return {
        row["dataset"]: row["edges_per_second"]
        for row in rows
        if row["structure"] == structure
    }


def obs_stage_document(obs_registry) -> dict:
    """Per-stage ingest *distributions* from the obs registry.

    The legacy ``ingest_profile`` dict carries stage totals; this rides
    along with per-stage count/total plus p50/p99 estimated from the
    ``repro_ingest_stage_seconds`` histogram buckets.
    """
    from repro.metrics.ingest_profile import STAGE_FAMILY
    from repro.obs.registry import histogram_quantile

    snapshot = obs_registry.snapshot()
    family = snapshot["families"].get(STAGE_FAMILY)
    if family is None:
        return {}
    bounds = family.get("buckets") or []
    stages = {}
    for series in family["series"].values():
        count = series.get("count", 0)
        if not count:
            continue
        p50 = histogram_quantile(bounds, series["counts"], 0.50)
        p99 = histogram_quantile(bounds, series["counts"], 0.99)
        stages[series["labels"].get("stage", "")] = {
            "count": count,
            "total_seconds": series["sum"],
            "p50_seconds": p50,
            "p99_seconds": p99,
        }
    return dict(sorted(stages.items()))


def update_many_rates(rows) -> dict:
    return structure_rates(rows, "GSS(update_many)")


def main(argv=None) -> int:
    args = parse_args(argv)
    from repro.core._native import native_available

    # Probing also compiles/binds the kernel (the warm-up hook), so the
    # one-time build cost lands here, never inside a timed region.
    native_ready = native_available()
    backends = (
        ["python"]
        + (["numpy"] if NUMPY_AVAILABLE else [])
        + (["native"] if native_ready else [])
    )
    run_entry = {
        "label": args.label,
        "python": platform.python_version(),
        "numpy_available": NUMPY_AVAILABLE,
        "native_available": native_ready,
        "repeats": args.repeats,
        "workers": args.workers,
        "transport": args.transport,
        "cpu_count": os.cpu_count(),
        "results": {},
    }
    main_cluster_label = (
        f"sharded-gss(workers={args.workers})"
        if args.transport == "auto"
        else f"sharded-gss(workers={args.workers},transport={args.transport})"
    )
    pipe_cluster_label = f"sharded-gss(workers={args.workers},transport=pipe)"
    rates = {}
    adjacency_rates = {}
    sharded_rates = {}
    pipe_rates = {}
    for backend in backends:
        config = build_config(args, backend)
        print(f"== running tab1 on backend={backend} ==", flush=True)
        if args.profile:
            from repro.metrics.ingest_profile import profile_ingest
            from repro.obs import trace as obs_trace

            # The obs registry records the same stage timings as latency
            # *histograms* (IngestProfile.add forwards into it), so the
            # bench document carries per-stage distributions, not just sums.
            with profile_ingest() as profile, obs_trace.scoped() as obs_registry:
                result = run_update_speed_experiment(config)
        else:
            profile = None
            obs_registry = None
            result = run_update_speed_experiment(config)
        print(result.to_text())
        print()
        run_entry["results"][backend] = results_to_document([result], config)
        if profile is not None:
            # Stage times cover every batched GSS/cluster ingest of the run
            # (the scalar GSS(update) rows and non-GSS structures have no
            # batched stages to attribute).
            run_entry["results"][backend]["ingest_profile"] = profile.as_dict()
            run_entry["results"][backend]["obs_stage_seconds"] = (
                obs_stage_document(obs_registry)
            )
            total = sum(profile.stages.values())
            shares = ", ".join(
                f"{stage} {seconds / total:.0%}"
                for stage, seconds in sorted(profile.stages.items())
            ) if total else "no batched stages recorded"
            print(f"ingest profile [{backend}]: {shares} "
                  f"({profile.batches} batches, {total:.3f}s staged)")
        rates[backend] = update_many_rates(result.rows)
        adjacency_rates[backend] = structure_rates(result.rows, "Adjacency Lists")
        if args.workers:
            sharded_rates[backend] = structure_rates(result.rows, main_cluster_label)
            pipe_rates[backend] = structure_rates(result.rows, pipe_cluster_label)
    if args.workers:
        # Cluster ingest vs the single-process batched path, per backend: the
        # multi-core speedup the repro.cluster subsystem is after.  On a
        # single-core machine (cpu_count above) this ratio measures pure IPC
        # overhead and lands below 1.
        run_entry["sharded_speedup_vs_update_many"] = {
            backend: {
                dataset: sharded_rates[backend][dataset] / rate
                for dataset, rate in rates[backend].items()
                if rate and sharded_rates[backend].get(dataset)
            }
            for backend in sharded_rates
        }
        for backend, speedups in run_entry["sharded_speedup_vs_update_many"].items():
            for dataset, speedup in speedups.items():
                print(
                    f"{main_cluster_label} vs GSS(update_many) "
                    f"on {dataset} [{backend}]: {speedup:.2f}x"
                )
        # Shared-memory ring vs pickled-pipe data plane (same workers, same
        # stream); present whenever both transports were measured.
        transport_speedups = {} if args.transport == "pipe" else {
            backend: {
                dataset: sharded_rates[backend][dataset] / rate
                for dataset, rate in pipe_rates.get(backend, {}).items()
                if rate and sharded_rates[backend].get(dataset)
            }
            for backend in sharded_rates
        }
        transport_speedups = {
            backend: speedups
            for backend, speedups in transport_speedups.items()
            if speedups
        }
        if transport_speedups:
            run_entry["transport_speedup_shm_vs_pipe"] = transport_speedups
            for backend, speedups in transport_speedups.items():
                for dataset, speedup in speedups.items():
                    print(
                        f"shm vs pipe transport on {dataset} [{backend}]: "
                        f"{speedup:.2f}x"
                    )
    if args.serve:
        print("== measuring served throughput (repro.serve over TCP) ==", flush=True)
        run_entry["serve"] = measure_serve(args)
    if "numpy" in rates:
        speedups = {
            dataset: rates["numpy"][dataset] / rates["python"][dataset]
            for dataset in rates["python"]
            if rates["python"].get(dataset)
        }
        run_entry["update_many_speedup_numpy_vs_python"] = speedups
        for dataset, speedup in speedups.items():
            print(f"GSS(update_many) speedup on {dataset}: {speedup:.2f}x")
    if "native" in rates and "numpy" in rates:
        native_speedups = {
            dataset: rates["native"][dataset] / rates["numpy"][dataset]
            for dataset in rates["numpy"]
            if rates["numpy"].get(dataset) and rates["native"].get(dataset)
        }
        run_entry["native_vs_numpy_speedup"] = native_speedups
        for dataset, speedup in native_speedups.items():
            print(f"GSS(update_many) native vs numpy on {dataset}: {speedup:.2f}x")
    # How much faster the exact adjacency-list store still ingests than the
    # sketch's batched path, per backend (>1 means the baseline leads; the
    # native backend is meant to push this toward 1).
    run_entry["gss_vs_adjacency_ratio"] = {
        backend: {
            dataset: adjacency_rates[backend][dataset] / rate
            for dataset, rate in backend_rates.items()
            if rate and adjacency_rates.get(backend, {}).get(dataset)
        }
        for backend, backend_rates in rates.items()
    }
    for backend, ratios in run_entry["gss_vs_adjacency_ratio"].items():
        for dataset, ratio in ratios.items():
            print(f"adjacency-list lead over GSS(update_many) on {dataset} "
                  f"[{backend}]: {ratio:.2f}x")

    out_path = Path(args.out)
    if out_path.exists():
        try:
            document = json.loads(out_path.read_text())
        except json.JSONDecodeError:
            document = {}
    else:
        document = {}
    if document.get("format") != "repro-gss-bench-trajectory":
        document = {"format": "repro-gss-bench-trajectory", "format_version": 1, "runs": []}
    document["runs"].append(run_entry)
    out_path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    print(f"appended run to {out_path} ({len(document['runs'])} run(s) recorded)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
