"""Unit tests for the compound query layer (node, reachability, triangle,
reconstruction) over both exact stores and sketches."""

import pytest

from repro.core.config import GSSConfig
from repro.core.gss import GSS
from repro.exact.adjacency_list import AdjacencyListGraph
from repro.queries.node_query import node_in_weight, node_out_weight
from repro.queries.primitives import (
    EDGE_NOT_FOUND,
    NO_NEIGHBORS,
    as_paper_result,
    consume_stream,
)
from repro.queries.reachability import is_reachable, reachable_set
from repro.queries.reconstruction import reconstruct_graph
from repro.queries.triangle import (
    count_triangles,
    count_triangles_in_adjacency,
    undirected_neighbors,
)
from repro.streaming.edge import StreamEdge
from repro.streaming.stream import GraphStream


@pytest.fixture()
def exact_store(paper_stream):
    return consume_stream(AdjacencyListGraph(), paper_stream)


@pytest.fixture()
def gss_store(paper_stream):
    sketch = GSS(GSSConfig(matrix_width=8, fingerprint_bits=16, sequence_length=4, candidate_buckets=4))
    sketch.ingest(paper_stream)
    return sketch


class TestPrimitivesHelpers:
    def test_edge_not_found_sentinel(self):
        assert EDGE_NOT_FOUND == -1.0

    def test_as_paper_result(self):
        assert as_paper_result(set()) == set(NO_NEIGHBORS)
        assert as_paper_result({"x"}) == {"x"}

    def test_consume_stream_returns_store(self, paper_stream):
        store = AdjacencyListGraph()
        assert consume_stream(store, paper_stream) is store


class TestNodeQueries:
    def test_exact_out_weight(self, exact_store, paper_stream):
        truth = paper_stream.node_out_weights()
        for node, weight in truth.items():
            assert node_out_weight(exact_store, node) == weight

    def test_gss_out_weight_never_underestimates(self, gss_store, paper_stream):
        truth = paper_stream.node_out_weights()
        for node, weight in truth.items():
            assert node_out_weight(gss_store, node) >= weight - 1e-9

    def test_in_weight(self, exact_store, paper_stream):
        in_truth = {}
        for (source, destination), weight in paper_stream.aggregate_weights().items():
            in_truth[destination] = in_truth.get(destination, 0.0) + weight
        for node, weight in in_truth.items():
            assert node_in_weight(exact_store, node) == weight

    def test_composed_fallback_matches_native(self, exact_store):
        class Wrapper:
            """Store without a native node_out_weight."""

            def __init__(self, inner):
                self._inner = inner

            def update(self, *args):
                raise NotImplementedError

            def edge_query(self, source, destination):
                return self._inner.edge_query(source, destination)

            def successor_query(self, node):
                return self._inner.successor_query(node)

            def precursor_query(self, node):
                return self._inner.precursor_query(node)

        wrapped = Wrapper(exact_store)
        assert node_out_weight(wrapped, "a") == exact_store.node_out_weight("a")
        assert node_in_weight(wrapped, "f") == exact_store.node_in_weight("f")


class TestReachability:
    def test_direct_edge(self, exact_store):
        assert is_reachable(exact_store, "a", "b")

    def test_multi_hop(self, exact_store):
        # a -> b -> d -> f exists in the Figure 1 graph
        assert is_reachable(exact_store, "a", "d")
        assert is_reachable(exact_store, "b", "f")

    def test_self_reachability(self, exact_store):
        assert is_reachable(exact_store, "g", "g")

    def test_unreachable(self, exact_store):
        # g has no out-going edges in the Figure 1 graph
        assert not is_reachable(exact_store, "g", "a")

    def test_reachable_set(self, exact_store):
        assert reachable_set(exact_store, "g") == {"g"}
        assert "f" in reachable_set(exact_store, "a")

    def test_max_nodes_cap(self, exact_store):
        assert reachable_set(exact_store, "a", max_nodes=1) == {"a"}

    def test_gss_has_no_false_negatives(self, gss_store, exact_store, paper_stream):
        nodes = paper_stream.nodes()
        for source in nodes:
            for destination in nodes:
                if is_reachable(exact_store, source, destination):
                    assert is_reachable(gss_store, source, destination)


class TestTriangles:
    def test_count_on_known_graph(self):
        stream = GraphStream(
            [
                StreamEdge("a", "b"),
                StreamEdge("b", "c"),
                StreamEdge("c", "a"),
                StreamEdge("c", "d"),
            ]
        )
        store = consume_stream(AdjacencyListGraph(), stream)
        assert count_triangles(store, stream.nodes()) == 1

    def test_direction_is_ignored(self):
        stream = GraphStream(
            [StreamEdge("a", "b"), StreamEdge("c", "b"), StreamEdge("a", "c")]
        )
        store = consume_stream(AdjacencyListGraph(), stream)
        assert count_triangles(store, stream.nodes()) == 1

    def test_no_triangles(self):
        stream = GraphStream([StreamEdge("a", "b"), StreamEdge("b", "c")])
        store = consume_stream(AdjacencyListGraph(), stream)
        assert count_triangles(store, stream.nodes()) == 0

    def test_adjacency_helper_restricted_to_nodes(self, exact_store):
        adjacency = undirected_neighbors(exact_store, ["a", "b"])
        assert set(adjacency) == {"a", "b"}
        assert adjacency["a"] == {"b"}

    def test_count_in_adjacency_counts_each_once(self):
        adjacency = {
            "a": {"b", "c"},
            "b": {"a", "c"},
            "c": {"a", "b"},
        }
        assert count_triangles_in_adjacency(adjacency) == 1

    def test_gss_matches_exact_on_paper_graph(self, gss_store, exact_store, paper_stream):
        nodes = paper_stream.nodes()
        assert count_triangles(gss_store, nodes) >= count_triangles(exact_store, nodes)


class TestReconstruction:
    def test_exact_reconstruction(self, exact_store, paper_stream):
        rebuilt = reconstruct_graph(exact_store, paper_stream.nodes())
        assert rebuilt == paper_stream.aggregate_weights()

    def test_gss_reconstruction_is_superset(self, gss_store, paper_stream):
        rebuilt = reconstruct_graph(gss_store, paper_stream.nodes())
        truth = paper_stream.aggregate_weights()
        for key, weight in truth.items():
            assert key in rebuilt
            assert rebuilt[key] >= weight - 1e-9
