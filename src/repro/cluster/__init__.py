"""``repro.cluster`` — multi-process sharded deployment of the summaries.

The subsystem takes the single-process sharding simulation of
:class:`~repro.core.partitioned.PartitionedGSS` across real process
boundaries:

* :class:`ShardedSummary` — hash-partitions edges by source node over N
  worker processes, pipelines batched ingestion through each worker's
  ``update_many`` fast path, and serves capability-gated fan-out queries
  (edge / successor / node-out-weight route to one shard; precursor and
  node-in-weight scatter-gather);
* :mod:`repro.cluster.checkpoint` — whole-cluster checkpoint/recovery built
  on the shards' ``to_dict`` snapshots (per-shard files + a manifest),
  resumable mid-stream;
* :mod:`repro.cluster.worker` — the shard worker process protocol;
* :mod:`repro.cluster.lifecycle` — graceful SIGINT/SIGTERM teardown
  (:func:`install_signal_handlers`: drain → checkpoint → close) for
  script-style cluster users; the network front end in :mod:`repro.serve`
  layers asyncio signal handling over the same
  :meth:`ShardedSummary.shutdown` drain path.

The cluster registers in the :mod:`repro.api` factory as ``"sharded-gss"``
(parameters: ``workers``, ``routing_seed``, ``batch_size`` plus every GSS
parameter), so ``StreamSession``, the conformance laws, the CLI's
``--sketch``/``--workers`` flags and the tab1 throughput rows drive it like
any other summary.
"""

from repro.cluster.checkpoint import (
    CheckpointError,
    load_checkpoint,
    read_manifest,
    save_checkpoint,
)
from repro.cluster.lifecycle import DEFAULT_SHUTDOWN_SIGNALS, install_signal_handlers
from repro.cluster.sharded import DEFAULT_ROUTING_SEED, ClusterError, ShardedSummary

__all__ = [
    "CheckpointError",
    "ClusterError",
    "DEFAULT_ROUTING_SEED",
    "DEFAULT_SHUTDOWN_SIGNALS",
    "ShardedSummary",
    "install_signal_handlers",
    "load_checkpoint",
    "read_manifest",
    "save_checkpoint",
]
