"""Sliding-window monitoring of a communication stream with WindowedGSS.

Run with::

    python examples/sliding_window_monitoring.py

The script plays a timestamped mailing-list analog (lkml-reply) into a
sliding-window GSS, injects a sudden burst of traffic on one edge half-way
through the stream, and shows how the window summary:

* reports the burst edge as a heavy changer between consecutive epochs,
* forgets traffic that has aged out of the window,
* keeps memory bounded by the number of live window slices.

This mirrors the paper's network-monitoring use case: a NOC dashboard that
cares about "the communication graph of the last N minutes", not the whole
history.
"""

from __future__ import annotations

from repro import GSS, GSSConfig
from repro.core.windowed import WindowedGSS
from repro.datasets import load_dataset
from repro.datasets.perturbations import burst_stream
from repro.queries.heavy_changers import top_k_changers


def main() -> None:
    # 1. A timestamped stream with an injected traffic burst on one edge.
    stream = load_dataset("lkml-reply", scale=0.2).sorted_by_timestamp()
    stream = burst_stream(stream, burst_edge_index=3, burst_size=200)
    statistics = stream.statistics()
    duration = stream[len(stream) - 1].timestamp - stream[0].timestamp
    print(f"stream '{stream.name}': {statistics.item_count} items over {duration:.0f} time units")

    burst_edge = stream.distinct_edge_keys()[3]
    print(f"injected burst on edge {burst_edge}")

    # 2. A sliding window covering the most recent quarter of the stream.
    config = GSSConfig.for_edge_count(
        max(1, statistics.distinct_edges // 4), sequence_length=8, candidate_buckets=8
    )
    window = WindowedGSS(config, window_span=duration / 4, slices=6)
    window.ingest(stream)
    start, end = window.window_bounds()
    print(
        f"window [{start:.0f}, {end:.0f}] holds {window.active_slice_count} live slices, "
        f"{window.memory_bytes() / 1024:.1f} KiB, buffer share {window.buffer_percentage():.4f}"
    )

    # 3. Edges that aged out of the window are no longer reported.
    earliest_edge = stream[0].key
    weight = window.edge_query(*earliest_edge)
    print(f"oldest edge {earliest_edge}: "
          f"{'expired from the window' if weight is None else f'weight {weight:.0f}'}")

    # 4. Epoch-over-epoch heavy changers: split the stream in two halves and
    #    summarize each half with its own sketch.
    half = len(stream) // 2
    epoch_config = GSSConfig.for_edge_count(
        max(1, statistics.distinct_edges // 2), sequence_length=8, candidate_buckets=8
    )
    first_epoch = GSS(epoch_config).ingest(stream[:half])
    second_epoch = GSS(epoch_config).ingest(stream[half:])
    candidates = stream.distinct_edge_keys()[:500]
    print("\ntop-5 heavy changers between the two epochs:")
    for (source, destination), delta in top_k_changers(first_epoch, second_epoch, candidates, 5):
        marker = "  <-- injected burst" if (source, destination) == burst_edge else ""
        print(f"  {source} -> {destination}: weight change {delta:+.0f}{marker}")


if __name__ == "__main__":
    main()
