"""Query layer built on the three graph query primitives.

Definition 4 of the paper introduces three primitives — edge query, 1-hop
successor query and 1-hop precursor query — and argues that essentially every
graph query or algorithm can be implemented on top of them.  This subpackage
contains the primitives protocol plus the compound queries the paper
evaluates (node queries, reachability, triangle counting, subgraph matching,
whole-graph reconstruction) and the wider algorithm layer the introduction
motivates: traversals, degree statistics, PageRank, path queries, heavy
hitters and cross-epoch heavy changers.
"""

from repro.queries.primitives import (
    EDGE_NOT_FOUND,
    NO_NEIGHBORS,
    Capabilities,
    GraphQueryInterface,
    UnsupportedQueryError,
    edge_weight_or_zero,
)
from repro.queries.node_query import node_out_weight, node_in_weight
from repro.queries.reachability import is_reachable, reachable_set
from repro.queries.triangle import count_triangles
from repro.queries.reconstruction import reconstruct_graph
from repro.queries.subgraph import SubgraphMatcher, count_subgraph_matches
from repro.queries.traversal import (
    ancestors,
    bfs_levels,
    bfs_order,
    descendants,
    dfs_order,
    has_cycle,
    strongly_connected_components,
    topological_order,
)
from repro.queries.degree import (
    average_out_degree,
    degree_table,
    in_degree,
    out_degree,
    top_k_by_in_degree,
    top_k_by_out_degree,
)
from repro.queries.pagerank import pagerank, personalized_pagerank, ranking_overlap, top_k_ranked
from repro.queries.weighted_paths import (
    dijkstra_distance,
    dijkstra_path,
    single_source_distances,
    widest_path_capacity,
)
from repro.queries.heavy_changers import (
    heavy_changers,
    new_edges,
    persistent_edges,
    top_k_changers,
    vanished_edges,
)

__all__ = [
    "EDGE_NOT_FOUND",
    "NO_NEIGHBORS",
    "Capabilities",
    "GraphQueryInterface",
    "UnsupportedQueryError",
    "edge_weight_or_zero",
    "node_out_weight",
    "node_in_weight",
    "is_reachable",
    "reachable_set",
    "count_triangles",
    "reconstruct_graph",
    "SubgraphMatcher",
    "count_subgraph_matches",
    "bfs_order",
    "bfs_levels",
    "dfs_order",
    "descendants",
    "ancestors",
    "strongly_connected_components",
    "topological_order",
    "has_cycle",
    "out_degree",
    "in_degree",
    "degree_table",
    "top_k_by_out_degree",
    "top_k_by_in_degree",
    "average_out_degree",
    "pagerank",
    "personalized_pagerank",
    "top_k_ranked",
    "ranking_overlap",
    "dijkstra_distance",
    "dijkstra_path",
    "single_source_distances",
    "widest_path_capacity",
    "heavy_changers",
    "top_k_changers",
    "persistent_edges",
    "new_edges",
    "vanished_edges",
]
