"""The shard worker process of :mod:`repro.cluster`.

Each worker owns one registry-built summary structure (any sketch the
:mod:`repro.api` factory can build — the default cluster uses GSS shards) and
serves a tiny message protocol over a :class:`multiprocessing.Pipe`:

=========== =========================== ======================================
request     payload                     reply payload
=========== =========================== ======================================
``batch``   list of update triples      number of items applied
``call``    (method name, args tuple)   the method's return value
``snapshot`` —                          the summary's ``to_dict`` document
``stop``    —                           ``"stopped"`` (worker exits)
=========== =========================== ======================================

At startup the worker either builds a fresh summary from ``spec`` or — on the
checkpoint-restore path — restores one directly from a snapshot document, and
answers the handshake with ``ready``.  Every request gets exactly one reply,
``("ok", payload)`` or ``("err", traceback text)``, in request order — the
pipe is FIFO, which is what lets the parent pipeline ``batch`` requests
without waiting and still know that a ``call`` sent afterwards observes every
prior batch.  Updates inside a worker go through the summary's own
``update_many`` fast path (the vectorized NumPy pipeline when the inner spec
asks for it), so the per-item cost inside a shard is identical to a
single-process sketch.

The module is import-light on purpose: :mod:`repro.api` is imported inside
:func:`worker_main` (i.e. in the child process) so that ``repro.cluster`` can
be imported by the registry without creating an import cycle.
"""

from __future__ import annotations

import traceback
from typing import Any, Dict, Optional


def worker_main(
    conn,
    spec,
    worker_id: int,
    snapshot: Optional[Dict] = None,
    backend: Optional[str] = None,
) -> None:
    """Run one shard worker until ``stop`` or a closed pipe.

    ``conn`` is the worker end of a duplex pipe, ``spec`` the
    :class:`~repro.api.registry.SketchSpec` of this shard's summary and
    ``worker_id`` the shard index (used only for error messages).  When
    ``snapshot`` is given the summary is restored from it instead of built
    from the spec (``backend`` optionally re-targets the restored matrix
    backend) — the cluster's checkpoint-recovery path.
    """
    from repro.api.registry import build, from_dict

    try:
        if snapshot is not None:
            summary = from_dict(snapshot, backend=backend)
        else:
            summary = build(spec)
        conn.send(("ok", "ready"))
    except Exception:
        _send_error(conn, worker_id, traceback.format_exc())
        conn.close()
        return
    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):
            # The parent vanished (hard kill or interpreter exit); there is
            # nobody left to answer, so the worker just goes away too.
            break
        operation = request[0]
        try:
            if operation == "stop":
                conn.send(("ok", "stopped"))
                break
            elif operation == "batch":
                conn.send(("ok", summary.update_many(request[1])))
            elif operation == "call":
                method, args = request[1], request[2]
                conn.send(("ok", getattr(summary, method)(*args)))
            elif operation == "snapshot":
                conn.send(("ok", summary.to_dict()))
            else:
                _send_error(conn, worker_id, f"unknown request {operation!r}")
        except Exception:
            _send_error(conn, worker_id, traceback.format_exc())
    conn.close()


def _send_error(conn, worker_id: int, detail: Any) -> None:
    try:
        conn.send(("err", f"shard worker {worker_id}: {detail}"))
    except (OSError, ValueError):  # pragma: no cover - parent already gone
        pass
