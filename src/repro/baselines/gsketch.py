"""gSketch (Zhao, Aggarwal & Wang, VLDB 2011) — partitioned CM sketches.

gSketch improves CM-style edge-weight estimation by partitioning the edge
stream into several sketches so that edges from different localities do not
collide.  The original work partitions using a query-workload sample; absent a
workload we partition by a hash of the source node, which captures the
structural idea (per-partition sketches sized from a global budget) and keeps
the query interface identical: edge-weight queries only, no topology.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.baselines.cm_sketch import CountMinSketch
from repro.hashing.hash_functions import hash_key
from repro.queries.primitives import Capabilities, SummaryShims, UnsupportedQueryError


class GSketch(SummaryShims):
    """A bank of CM sketches, one per source-node partition.

    ``backend`` threads through to the per-partition CM sketches (``python``
    list counters, ``numpy`` arrays with the batched scatter, or ``auto``).
    """

    def __init__(
        self,
        total_width: int,
        partitions: int = 8,
        depth: int = 4,
        seed: int = 0,
        backend: str = "python",
    ) -> None:
        if partitions < 1:
            raise ValueError("partitions must be at least 1")
        if total_width < partitions:
            raise ValueError("total_width must be at least the number of partitions")
        self.partitions = partitions
        self.depth = depth
        self.seed = seed
        width_per_partition = max(1, total_width // partitions)
        self._sketches: List[CountMinSketch] = [
            CountMinSketch(
                width_per_partition, depth=depth, seed=seed + index * 97, backend=backend
            )
            for index in range(partitions)
        ]
        self.backend = self._sketches[0].backend
        self._update_count = 0

    def _partition_of(self, source: Hashable) -> int:
        return hash_key(source, self.seed ^ 0x5EED) % self.partitions

    def update(self, source: Hashable, destination: Hashable, weight: float = 1.0) -> None:
        """Route the item to its source partition's CM sketch."""
        self._update_count += 1
        self._sketches[self._partition_of(source)].update(source, destination, weight)

    def update_many(self, items: Iterable[Tuple[Hashable, Hashable, float]]) -> int:
        """Apply a batch of stream items, grouped by owning partition.

        Each partition ingests its share through the CM sketch's batched
        ``update_many`` (a vectorized scatter on the NumPy backend).  Returns
        the number of items applied.
        """
        groups: Dict[int, List[Tuple[Hashable, Hashable, float]]] = {}
        count = 0
        for source, destination, weight in items:
            count += 1
            groups.setdefault(self._partition_of(source), []).append(
                (source, destination, weight)
            )
        for index, triples in groups.items():
            self._sketches[index].update_many(triples)
        self._update_count += count
        return count

    def ingest(self, edges) -> "GSketch":
        """Feed an iterable of stream edges."""
        self.update_many((edge.source, edge.destination, edge.weight) for edge in edges)
        return self

    def edge_query(self, source: Hashable, destination: Hashable) -> Optional[float]:
        """Edge-weight estimate from the partition owning ``source``."""
        return self._sketches[self._partition_of(source)].edge_query(source, destination)

    def successor_query(self, node: Hashable) -> Set[Hashable]:
        """gSketch stores no topology."""
        raise UnsupportedQueryError("GSketch stores no topology")

    def precursor_query(self, node: Hashable) -> Set[Hashable]:
        """gSketch stores no topology."""
        raise UnsupportedQueryError("GSketch stores no topology")

    def node_out_weight(self, node: Hashable) -> float:
        """gSketch cannot aggregate per-node weights."""
        raise UnsupportedQueryError("GSketch stores no topology")

    def node_in_weight(self, node: Hashable) -> float:
        """gSketch cannot aggregate per-node weights."""
        raise UnsupportedQueryError("GSketch stores no topology")

    @property
    def update_count(self) -> int:
        """Number of stream items applied."""
        return self._update_count

    def memory_bytes(self) -> int:
        """Total counter memory across partitions."""
        return sum(sketch.memory_bytes() for sketch in self._sketches)

    @classmethod
    def capabilities(cls) -> Capabilities:
        """Feature descriptor: edge-weight queries only."""
        return Capabilities(
            successor_queries=False,
            precursor_queries=False,
            node_out_weights=False,
            node_in_weights=False,
        )
