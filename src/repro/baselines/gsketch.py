"""gSketch (Zhao, Aggarwal & Wang, VLDB 2011) — partitioned CM sketches.

gSketch improves CM-style edge-weight estimation by partitioning the edge
stream into several sketches so that edges from different localities do not
collide.  The original work partitions using a query-workload sample; absent a
workload we partition by a hash of the source node, which captures the
structural idea (per-partition sketches sized from a global budget) and keeps
the query interface identical: edge-weight queries only, no topology.
"""

from __future__ import annotations

from typing import Hashable, List

from repro.baselines.cm_sketch import CountMinSketch
from repro.hashing.hash_functions import hash_key


class GSketch:
    """A bank of CM sketches, one per source-node partition."""

    def __init__(
        self,
        total_width: int,
        partitions: int = 8,
        depth: int = 4,
        seed: int = 0,
    ) -> None:
        if partitions < 1:
            raise ValueError("partitions must be at least 1")
        if total_width < partitions:
            raise ValueError("total_width must be at least the number of partitions")
        self.partitions = partitions
        self.depth = depth
        self.seed = seed
        width_per_partition = max(1, total_width // partitions)
        self._sketches: List[CountMinSketch] = [
            CountMinSketch(width_per_partition, depth=depth, seed=seed + index * 97)
            for index in range(partitions)
        ]
        self._update_count = 0

    def _partition_of(self, source: Hashable) -> int:
        return hash_key(source, self.seed ^ 0x5EED) % self.partitions

    def update(self, source: Hashable, destination: Hashable, weight: float = 1.0) -> None:
        """Route the item to its source partition's CM sketch."""
        self._update_count += 1
        self._sketches[self._partition_of(source)].update(source, destination, weight)

    def ingest(self, edges) -> "GSketch":
        """Feed an iterable of stream edges."""
        for edge in edges:
            self.update(edge.source, edge.destination, edge.weight)
        return self

    def edge_query(self, source: Hashable, destination: Hashable) -> float:
        """Edge-weight estimate from the partition owning ``source``."""
        return self._sketches[self._partition_of(source)].edge_query(source, destination)

    @property
    def update_count(self) -> int:
        """Number of stream items applied."""
        return self._update_count

    def memory_bytes(self) -> int:
        """Total counter memory across partitions."""
        return sum(sketch.memory_bytes() for sketch in self._sketches)
