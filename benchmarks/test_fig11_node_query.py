"""Benchmark: regenerate Figure 11 (node-query ARE vs matrix width)."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import run_node_query_experiment


@pytest.mark.paper_artifact("fig11")
def test_fig11_node_query_are(benchmark, bench_config):
    result = run_once(benchmark, run_node_query_experiment, bench_config)
    print()
    print(result.to_text())

    gss_rows = [row for row in result.rows if row["structure"].startswith("GSS")]
    tcm_rows = [row for row in result.rows if row["structure"].startswith("TCM")]
    assert gss_rows and tcm_rows

    # Paper shape: despite the unfair memory ratio, GSS node-query ARE stays
    # below TCM's for every dataset/width pair.
    for gss_row in gss_rows:
        matching_tcm = [
            row
            for row in tcm_rows
            if row["dataset"] == gss_row["dataset"] and row["width"] == gss_row["width"]
        ]
        assert matching_tcm
        assert gss_row["are"] <= matching_tcm[0]["are"] + 1e-9

    # GSS node queries are close to exact (ARE well below 1).
    assert max(row["are"] for row in gss_rows) < 0.5
