"""Benchmark: regenerate Figure 8 (edge-query ARE vs matrix width)."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import run_edge_query_experiment


@pytest.mark.paper_artifact("fig8")
def test_fig8_edge_query_are(benchmark, bench_config):
    result = run_once(benchmark, run_edge_query_experiment, bench_config)
    print()
    print(result.to_text())

    gss_rows = [row for row in result.rows if row["structure"].startswith("GSS")]
    tcm_rows = [row for row in result.rows if row["structure"].startswith("TCM")]
    assert gss_rows and tcm_rows

    # Paper shape: GSS ARE is (much) lower than TCM's even though TCM gets 8x
    # memory, on every dataset and width.
    for gss_row in gss_rows:
        matching_tcm = [
            row
            for row in tcm_rows
            if row["dataset"] == gss_row["dataset"] and row["width"] == gss_row["width"]
        ]
        assert matching_tcm
        assert gss_row["are"] <= matching_tcm[0]["are"] + 1e-9

    # GSS with 16-bit fingerprints is at least as accurate as with 12-bit.
    for dataset in {row["dataset"] for row in gss_rows}:
        are_12 = [r["are"] for r in gss_rows if r["dataset"] == dataset and "12" in r["structure"]]
        are_16 = [r["are"] for r in gss_rows if r["dataset"] == dataset and "16" in r["structure"]]
        assert sum(are_16) <= sum(are_12) + 1e-9
