"""Tests for the command-line front-end."""

import pytest

from repro.cli import build_parser, config_from_args, main


class TestParser:
    def test_experiment_choices_cover_all_artifacts(self):
        parser = build_parser()
        args = parser.parse_args(["fig8"])
        assert args.experiment == "fig8"
        for name in ("fig3", "fig9", "fig10", "fig11", "fig12", "fig13", "tab1", "fig14", "fig15"):
            assert parser.parse_args([name]).experiment == name

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_config_from_args_quick(self):
        args = build_parser().parse_args(["fig8", "--quick"])
        config = config_from_args(args)
        assert config.dataset_scale < 0.1

    def test_config_from_args_scale_and_datasets(self):
        args = build_parser().parse_args(
            ["fig8", "--scale", "0.5", "--datasets", "cit-HepPh"]
        )
        config = config_from_args(args)
        assert config.dataset_scale == 0.5
        assert config.datasets == ("cit-HepPh",)

    def test_quick_and_paper_scale_exclusive(self):
        args = build_parser().parse_args(["fig8", "--quick", "--paper-scale"])
        with pytest.raises(SystemExit):
            config_from_args(args)


class TestMain:
    def test_fig3_prints_table(self, capsys):
        assert main(["fig3", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "fig3" in output
        assert "correct_rate" in output

    def test_fig13_quick_run(self, capsys):
        assert main(["fig13", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "Room=2" in output
        assert "NoSquareHash" in output
