"""Tests for stream perturbations (robustness / failure-injection workloads)."""

from __future__ import annotations

import pytest

from repro.core.config import GSSConfig
from repro.core.gss import GSS
from repro.datasets.generators import erdos_renyi_stream
from repro.datasets.perturbations import (
    adversarial_single_row_stream,
    apply_chain,
    burst_stream,
    inject_deletions,
    inject_duplicates,
    relabel_nodes,
    shuffle_stream,
)
from repro.queries.primitives import EDGE_NOT_FOUND


@pytest.fixture()
def base_stream():
    return erdos_renyi_stream(60, 200, seed=21)


class TestInjectDuplicates:
    def test_increases_item_count(self, base_stream):
        noisy = inject_duplicates(base_stream, duplication_factor=1.0)
        assert len(noisy) == 2 * len(base_stream)

    def test_zero_factor_is_identity_length(self, base_stream):
        assert len(inject_duplicates(base_stream, 0.0)) == len(base_stream)

    def test_does_not_add_new_edges(self, base_stream):
        noisy = inject_duplicates(base_stream, 1.5)
        assert set(noisy.distinct_edge_keys()) == set(base_stream.distinct_edge_keys())

    def test_original_untouched(self, base_stream):
        before = len(base_stream)
        inject_duplicates(base_stream, 2.0)
        assert len(base_stream) == before

    def test_rejects_negative_factor(self, base_stream):
        with pytest.raises(ValueError):
            inject_duplicates(base_stream, -0.5)


class TestInjectDeletions:
    def test_deletions_cancel_weight_in_sketch(self, base_stream):
        deleted = inject_deletions(base_stream, deletion_fraction=1.0)
        stats = base_stream.statistics()
        sketch = GSS(GSSConfig.for_edge_count(stats.distinct_edges, sequence_length=4, candidate_buckets=4))
        sketch.ingest(deleted)
        truth = deleted.aggregate_weights()
        zeroed = [key for key, weight in truth.items() if weight == 0.0]
        assert zeroed
        for key in zeroed[:20]:
            estimate = sketch.edge_query(*key)
            assert estimate in (0.0, EDGE_NOT_FOUND) or estimate >= 0.0

    def test_fraction_zero_adds_nothing(self, base_stream):
        assert len(inject_deletions(base_stream, 0.0)) == len(base_stream)

    def test_negative_items_marked_as_deletions(self, base_stream):
        deleted = inject_deletions(base_stream, 0.5, seed=3)
        assert any(edge.is_deletion() for edge in deleted)

    def test_rejects_out_of_range_fraction(self, base_stream):
        with pytest.raises(ValueError):
            inject_deletions(base_stream, 1.5)


class TestShuffleAndBurst:
    def test_shuffle_preserves_multiset(self, base_stream):
        shuffled = shuffle_stream(base_stream, seed=5)
        assert sorted(e.key for e in shuffled) == sorted(e.key for e in base_stream)

    def test_shuffle_reassigns_timestamps(self, base_stream):
        shuffled = shuffle_stream(base_stream, seed=5)
        timestamps = [edge.timestamp for edge in shuffled]
        assert timestamps == sorted(timestamps)

    def test_burst_adds_items(self, base_stream):
        bursty = burst_stream(base_stream, burst_size=50)
        assert len(bursty) == len(base_stream) + 50

    def test_burst_concentrates_on_one_edge(self, base_stream):
        bursty = burst_stream(base_stream, burst_edge_index=0, burst_size=80)
        target = base_stream.distinct_edge_keys()[0]
        occurrences = sum(1 for edge in bursty if edge.key == target)
        assert occurrences >= 80

    def test_burst_on_empty_stream(self):
        from repro.streaming.stream import GraphStream

        assert len(burst_stream(GraphStream([]), burst_size=10)) == 0

    def test_burst_rejects_negative_size(self, base_stream):
        with pytest.raises(ValueError):
            burst_stream(base_stream, burst_size=-1)


class TestAdversarialRow:
    def test_all_edges_share_source(self):
        stream = adversarial_single_row_stream(100)
        assert all(edge.source == "hub" for edge in stream)
        assert len(stream) == 100

    def test_square_hashing_reduces_buffer_on_adversarial_stream(self):
        stream = adversarial_single_row_stream(400)
        config_plain = GSSConfig(
            matrix_width=24, rooms=1, square_hashing=False, sequence_length=8, candidate_buckets=8
        )
        config_square = GSSConfig(
            matrix_width=24, rooms=1, square_hashing=True, sequence_length=8, candidate_buckets=8
        )
        plain = GSS(config_plain).ingest(stream)
        square = GSS(config_square).ingest(stream)
        assert square.buffer_edge_count < plain.buffer_edge_count

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            adversarial_single_row_stream(-1)


class TestRelabelAndChain:
    def test_relabel_preserves_structure(self, base_stream):
        relabeled = relabel_nodes(base_stream)
        assert len(relabeled) == len(base_stream)
        assert relabeled.statistics().distinct_edges == base_stream.statistics().distinct_edges
        assert all(str(edge.source).startswith("x") for edge in relabeled)

    def test_relabel_with_explicit_mapping(self, base_stream):
        first = base_stream[0]
        mapping = {first.source: "RENAMED"}
        relabeled = relabel_nodes(base_stream, mapping=mapping)
        assert any(edge.source == "RENAMED" for edge in relabeled)

    def test_apply_chain_composes(self, base_stream):
        result = apply_chain(
            base_stream,
            lambda s: inject_duplicates(s, 1.0),
            lambda s: shuffle_stream(s, seed=9),
        )
        assert len(result) == 2 * len(base_stream)
