"""Undirected graph streams on top of GSS.

Footnote 1 of the paper notes that "the approach in this paper can be easily
extended to handle undirected graphs".  The natural construction is to store
each undirected edge once under a canonical orientation and to answer neighbor
queries as the union of successors and precursors; this wrapper packages that
so applications with undirected interactions (mutual friendships, physical
links) get the same accuracy guarantees without duplicating every edge.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional, Set, Tuple

from repro.core.config import GSSConfig
from repro.core.gss import GSS
from repro.queries.primitives import Capabilities, SummaryShims


def canonical_orientation(a: Hashable, b: Hashable) -> Tuple[Hashable, Hashable]:
    """A deterministic orientation of an undirected edge (sorted by repr)."""
    return (a, b) if repr(a) <= repr(b) else (b, a)


class UndirectedGSS(SummaryShims):
    """GSS specialised for undirected graph streams."""

    def __init__(self, config: GSSConfig) -> None:
        self._sketch = GSS(config)

    @property
    def sketch(self) -> GSS:
        """The underlying directed GSS (edges stored in canonical orientation)."""
        return self._sketch

    @property
    def config(self) -> GSSConfig:
        """The sketch configuration."""
        return self._sketch.config

    def update(self, first: Hashable, second: Hashable, weight: float = 1.0) -> None:
        """Add ``weight`` to the undirected edge {first, second}."""
        source, destination = canonical_orientation(first, second)
        self._sketch.update(source, destination, weight)

    def update_many(self, items: Iterable[Tuple[Hashable, Hashable, float]]) -> int:
        """Apply a batch of ``(first, second, weight)`` items (batched path)."""
        return self._sketch.update_many(
            (*canonical_orientation(first, second), weight)
            for first, second, weight in items
        )

    def ingest(self, edges) -> "UndirectedGSS":
        """Feed an iterable of stream edges (direction ignored)."""
        self.update_many((edge.source, edge.destination, edge.weight) for edge in edges)
        return self

    def edge_query(self, first: Hashable, second: Hashable) -> Optional[float]:
        """Aggregated weight of the undirected edge, or ``None`` when absent."""
        source, destination = canonical_orientation(first, second)
        return self._sketch.edge_query(source, destination)

    def neighbor_query(self, node: Hashable) -> Set[Hashable]:
        """All neighbors of ``node`` (union of the two directed primitives)."""
        return self._sketch.successor_query(node) | self._sketch.precursor_query(node)

    # Directed-primitive aliases so the compound queries in repro.queries
    # (reachability, triangles, components) work on the undirected view.
    def successor_query(self, node: Hashable) -> Set[Hashable]:
        """Same as :meth:`neighbor_query` (undirected graphs are symmetric)."""
        return self.neighbor_query(node)

    def precursor_query(self, node: Hashable) -> Set[Hashable]:
        """Same as :meth:`neighbor_query`."""
        return self.neighbor_query(node)

    def degree_weight(self, node: Hashable) -> float:
        """Total weight of edges incident to ``node``."""
        total = 0.0
        node_hash = self._sketch.node_hash(node)
        for neighbor_hash in sorted(self._sketch._neighbor_hashes(node_hash, forward=True)):
            weight = self._sketch.edge_query_by_hash(node_hash, neighbor_hash)
            if weight is not None:
                total += weight
        for neighbor_hash in sorted(self._sketch._neighbor_hashes(node_hash, forward=False)):
            weight = self._sketch.edge_query_by_hash(neighbor_hash, node_hash)
            if weight is not None:
                total += weight
        return total

    @property
    def buffer_percentage(self) -> float:
        """Fraction of stored sketch edges living in the left-over buffer."""
        return self._sketch.buffer_percentage

    def memory_bytes(self) -> int:
        """Memory footprint under the paper's C layout."""
        return self._sketch.memory_bytes()

    @classmethod
    def capabilities(cls) -> Capabilities:
        """Feature descriptor: neighbor queries, no per-direction node weights
        (use :meth:`degree_weight` for the undirected aggregate)."""
        return Capabilities(
            node_out_weights=False,
            node_in_weights=False,
        )
