"""Adapters that fit differently-shaped estimators to :class:`GraphSummary`.

Most structures in the package already speak the protocol natively; the
reservoir-based TRIEST triangle counters do not — their native surface is
``add_edge(source, destination)`` plus ``triangle_estimate()``, with no
notion of weights or of edge/neighbourhood queries.  The adapter gives them
the uniform update/memory/capabilities surface so they can live in the sketch
registry and ride through :class:`~repro.api.session.StreamSession` and the
equal-memory experiment harness unchanged.
"""

from __future__ import annotations

from typing import Hashable, Optional, Set

from repro.baselines.triest import TriestBase
from repro.queries.primitives import Capabilities, SummaryShims, UnsupportedQueryError


class TriestSummary(SummaryShims):
    """:class:`GraphSummary` adapter around a TRIEST reservoir estimator.

    Updates forward to ``add_edge`` (weights and edge direction are ignored —
    TRIEST counts triangles of the undirected, de-duplicated graph); the graph
    query primitives raise :class:`UnsupportedQueryError`; the triangle
    estimate is exposed as :meth:`triangle_estimate`.
    """

    def __init__(self, estimator: TriestBase) -> None:
        self._estimator = estimator
        self._update_count = 0

    @property
    def estimator(self) -> TriestBase:
        """The wrapped TRIEST instance."""
        return self._estimator

    # -- updates -----------------------------------------------------------

    def update(self, source: Hashable, destination: Hashable, weight: float = 1.0) -> None:
        """Record one edge arrival (weight ignored, direction ignored)."""
        self._update_count += 1
        self._estimator.add_edge(source, destination)

    # update_many is the inherited item-by-item default: reservoir sampling
    # is order-dependent, so there is no batch to hoist.

    def ingest(self, edges) -> "TriestSummary":
        """Feed an iterable of stream edges (direction and weight ignored)."""
        self.update_many(
            (edge.source, edge.destination, edge.weight) for edge in edges
        )
        return self

    # -- queries -----------------------------------------------------------

    def edge_query(self, source: Hashable, destination: Hashable) -> Optional[float]:
        """TRIEST keeps no per-edge weights."""
        raise UnsupportedQueryError("TRIEST supports triangle estimates only")

    def successor_query(self, node: Hashable) -> Set[Hashable]:
        """TRIEST keeps no queryable topology."""
        raise UnsupportedQueryError("TRIEST supports triangle estimates only")

    def precursor_query(self, node: Hashable) -> Set[Hashable]:
        """TRIEST keeps no queryable topology."""
        raise UnsupportedQueryError("TRIEST supports triangle estimates only")

    def node_out_weight(self, node: Hashable) -> float:
        """TRIEST keeps no per-node weights."""
        raise UnsupportedQueryError("TRIEST supports triangle estimates only")

    def node_in_weight(self, node: Hashable) -> float:
        """TRIEST keeps no per-node weights."""
        raise UnsupportedQueryError("TRIEST supports triangle estimates only")

    def triangle_estimate(self) -> float:
        """Estimated number of global triangles seen so far."""
        return self._estimator.triangle_estimate()

    # -- introspection -----------------------------------------------------

    @property
    def update_count(self) -> int:
        """Number of stream items applied through the adapter."""
        return self._update_count

    def memory_bytes(self) -> int:
        """Reservoir memory under a C layout."""
        return self._estimator.memory_bytes()

    @classmethod
    def capabilities(cls) -> Capabilities:
        """Feature descriptor: triangle estimates only; inserts only; the
        batch path is the generic per-item loop (reservoir sampling is
        order-dependent, so there is nothing to hoist)."""
        return Capabilities(
            edge_queries=False,
            successor_queries=False,
            precursor_queries=False,
            node_out_weights=False,
            node_in_weights=False,
            deletions=False,
            batched_updates=False,
            triangle_estimates=True,
        )
