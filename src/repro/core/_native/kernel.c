/* Compiled placement kernel for the GSS "native" matrix backend.
 *
 * One call to gss_ingest_batch() carries a whole batch of packed sketch-edge
 * keys across the Python/C boundary and performs everything the NumPy
 * backend's _ingest_keys() does in Python + array ops:
 *
 *   1. aggregate the batch per unique key (first-seen order, stream-order
 *      weight accumulation — bit-identical to the dict/bincount paths);
 *   2. classify every unique key against the persistent edge->slot map
 *      (placed / buffered / unseen);
 *   3. place unseen edges: split hashes, run the square-hashing LCG address
 *      sequences and the candidate-bucket LCG sampling, probe the fill
 *      table in candidate order, append winning rooms to the caller's
 *      struct-of-arrays storage;
 *   4. spill edges whose candidates are all full, in first-seen order.
 *
 * gss_ingest_text_batch() pushes the boundary one stage earlier: it takes
 * the batch's node identifiers as a single NUL-joined UTF-8 blob
 * (interleaved source0, dest0, source1, dest1, ...), hashes each token with
 * the same seeded FNV-1a / splitmix64 mix as repro.hashing.hash_functions,
 * memoizes tokens in a persistent bytes->hash table (so repeat nodes are a
 * probe, not a rehash of Python machinery), packs the edge keys and then
 * runs the exact pipeline above — so for string node IDs an entire
 * update_many() batch crosses the Python/kernel boundary once.  Genuinely
 * new nodes come back as (blob offset, length, hash) triples so Python can
 * register them in the reverse node index in the same first-seen
 * interleaved order the scalar backends use.
 *
 * The edge->slot map and the node table are the kernel's only persistent
 * state (gss_ctx).  Room arrays, the per-bucket fill table and the
 * left-over buffer stay owned by Python: rooms and fill are written through
 * pointers, buffer spills are returned as (key, aggregated-weight) arrays
 * because the buffer is an exact adjacency structure with Python dict
 * semantics.
 *
 * Equivalence with the python/numpy backends is load-bearing and exact:
 * the FNV/splitmix node hashes, the LCG walks, the probe order, the
 * first-seen contention winners and the IEEE-754 accumulation order all
 * match the scalar reference (see repro/core/backends.py module docstring
 * and tests/test_native_backend.py).
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* Values stored in the edge->slot map.  Must match repro.core.backends. */
#define SLOT_BUFFERED (-1)
#define SLOT_MISSING (-2)

/* Open-addressing key marker.  A packed key can only equal UINT64_MAX when
 * hash_range is exactly 2^32 and both node hashes are maximal; that one key
 * is tracked in a dedicated side slot so the sentinel stays unambiguous. */
#define EMPTY_KEY UINT64_MAX

/* FNV-1a multiplier; the seeded initial state arrives precomputed from
 * Python (FNV offset basis XOR splitmix64(seed)), see hash_functions.py. */
#define FNV_PRIME 0x100000001B3ULL

/* Node-table entry: one distinct node identifier ever seen by the text
 * path.  The identifier's bytes live in the context's arena; h64 is the
 * full 64-bit mix (also the table position hash) and hmod the sketch hash
 * H(v) = h64 % hash_range.  used distinguishes live entries because the
 * empty string is a valid zero-length node ID. */
typedef struct {
    uint64_t off;
    uint64_t h64;
    uint64_t hmod;
    uint32_t len;
    uint32_t used;
} node_entry;

typedef struct {
    /* persistent edge->slot open-addressing table (linear probing, pow2) */
    uint64_t *keys;
    int64_t *vals;
    int64_t capacity;
    int64_t count;
    int has_max_key;
    int64_t max_key_val;
    /* persistent node bytes->hash table + byte arena (text path memo) */
    node_entry *nodes;
    int64_t node_cap;
    int64_t node_count;
    unsigned char *arena;
    int64_t arena_len;
    int64_t arena_cap;
    /* per-batch scratch, grown on demand and reused across batches */
    uint64_t *bkeys;   /* batch aggregation table: key -> unique index */
    int64_t *bvals;
    int64_t bcap;
    uint64_t *ukeys;   /* unique keys in first-seen order */
    double *usums;     /* stream-order-accumulated weight per unique key */
    int64_t ucap;
    int64_t *saddr;    /* address-sequence scratch (2 * seq_length) */
    int64_t acap;
    uint64_t *tkeys;   /* text path: packed keys per batch item */
    int64_t tcap;
} gss_ctx;

/* Exported ABI.  Every non-static function below must appear here (the
 * build runs with -Wmissing-prototypes under -Werror) and must stay in
 * sync with the ctypes bindings in __init__.py — drift is caught by
 * `python -m repro.devtools.lint` (rule abi-check). */
gss_ctx *gss_new(void);
void gss_free(gss_ctx *ctx);
int64_t gss_map_get(gss_ctx *ctx, uint64_t key);
int gss_map_put(gss_ctx *ctx, uint64_t key, int64_t val);
int64_t gss_map_len(gss_ctx *ctx);
int64_t gss_ingest_batch(
    gss_ctx *ctx,
    const uint64_t *keys, const double *weights, int64_t n,
    uint64_t hash_range, uint64_t fp_range,
    int64_t width, int64_t rooms,
    int64_t seq_length, int64_t candidates,
    int32_t square_hashing, int32_t sampling,
    uint64_t lcg_a, uint64_t lcg_b, uint64_t lcg_p,
    int64_t size,
    int64_t *rows, int64_t *cols,
    int64_t *src_fp_arr, int64_t *dst_fp_arr,
    int64_t *src_idx_arr, int64_t *dst_idx_arr,
    double *room_weights,
    uint8_t *fill,
    uint64_t *spill_keys, double *spill_sums, int64_t *spill_count,
    uint64_t *rebuf_keys, double *rebuf_sums, int64_t *rebuf_count);
int64_t gss_ingest_text_batch(
    gss_ctx *ctx,
    const unsigned char *blob, int64_t blob_len,
    const double *weights, int64_t n,
    uint64_t fnv_state0,
    uint64_t hash_range, uint64_t fp_range,
    int64_t width, int64_t rooms,
    int64_t seq_length, int64_t candidates,
    int32_t square_hashing, int32_t sampling,
    uint64_t lcg_a, uint64_t lcg_b, uint64_t lcg_p,
    int64_t size,
    int64_t *rows, int64_t *cols,
    int64_t *src_fp_arr, int64_t *dst_fp_arr,
    int64_t *src_idx_arr, int64_t *dst_idx_arr,
    double *room_weights,
    uint8_t *fill,
    uint64_t *spill_keys, double *spill_sums, int64_t *spill_count,
    uint64_t *rebuf_keys, double *rebuf_sums, int64_t *rebuf_count,
    int64_t *new_offs, int64_t *new_lens, uint64_t *new_hashes,
    int64_t *new_count);

static uint64_t mix_key(uint64_t value) {
    /* splitmix64 finalizer — identical to hash_functions._splitmix64 */
    value += 0x9E3779B97F4A7C15ULL;
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9ULL;
    value = (value ^ (value >> 27)) * 0x94D049BB133111EBULL;
    return value ^ (value >> 31);
}

/* Exact x mod (2^31 - 1) for x < 2^62, by Mersenne folding (2^31 == 1 mod p).
 * The default LCG modulus is this prime; folding replaces the 64-bit
 * division in every address/candidate step of the placement walk. */
#define MERSENNE31 0x7FFFFFFFULL
static inline uint64_t mod_m31(uint64_t value) {
    value = (value >> 31) + (value & MERSENNE31); /* < 2^32 */
    value = (value >> 31) + (value & MERSENNE31); /* <= 2^31 */
    if (value >= MERSENNE31) value -= MERSENNE31;
    return value;
}

gss_ctx *gss_new(void) {
    gss_ctx *ctx = (gss_ctx *)calloc(1, sizeof(gss_ctx));
    if (!ctx) return NULL;
    ctx->capacity = 1024;
    ctx->keys = (uint64_t *)malloc((size_t)ctx->capacity * sizeof(uint64_t));
    ctx->vals = (int64_t *)malloc((size_t)ctx->capacity * sizeof(int64_t));
    ctx->node_cap = 1024;
    ctx->nodes = (node_entry *)calloc((size_t)ctx->node_cap, sizeof(node_entry));
    if (!ctx->keys || !ctx->vals || !ctx->nodes) {
        free(ctx->keys);
        free(ctx->vals);
        free(ctx->nodes);
        free(ctx);
        return NULL;
    }
    memset(ctx->keys, 0xFF, (size_t)ctx->capacity * sizeof(uint64_t));
    ctx->max_key_val = SLOT_MISSING;
    return ctx;
}

void gss_free(gss_ctx *ctx) {
    if (!ctx) return;
    free(ctx->keys);
    free(ctx->vals);
    free(ctx->nodes);
    free(ctx->arena);
    free(ctx->bkeys);
    free(ctx->bvals);
    free(ctx->ukeys);
    free(ctx->usums);
    free(ctx->saddr);
    free(ctx->tkeys);
    free(ctx);
}

static int map_grow(gss_ctx *ctx) {
    int64_t old_capacity = ctx->capacity;
    uint64_t *old_keys = ctx->keys;
    int64_t *old_vals = ctx->vals;
    int64_t capacity = old_capacity * 2;
    uint64_t *keys = (uint64_t *)malloc((size_t)capacity * sizeof(uint64_t));
    int64_t *vals = (int64_t *)malloc((size_t)capacity * sizeof(int64_t));
    if (!keys || !vals) {
        free(keys);
        free(vals);
        return -1;
    }
    memset(keys, 0xFF, (size_t)capacity * sizeof(uint64_t));
    uint64_t mask = (uint64_t)capacity - 1;
    for (int64_t i = 0; i < old_capacity; i++) {
        if (old_keys[i] == EMPTY_KEY) continue;
        uint64_t pos = mix_key(old_keys[i]) & mask;
        while (keys[pos] != EMPTY_KEY) pos = (pos + 1) & mask;
        keys[pos] = old_keys[i];
        vals[pos] = old_vals[i];
    }
    free(old_keys);
    free(old_vals);
    ctx->keys = keys;
    ctx->vals = vals;
    ctx->capacity = capacity;
    return 0;
}

int64_t gss_map_get(gss_ctx *ctx, uint64_t key) {
    if (key == EMPTY_KEY)
        return ctx->has_max_key ? ctx->max_key_val : SLOT_MISSING;
    uint64_t mask = (uint64_t)ctx->capacity - 1;
    uint64_t pos = mix_key(key) & mask;
    while (ctx->keys[pos] != EMPTY_KEY) {
        if (ctx->keys[pos] == key) return ctx->vals[pos];
        pos = (pos + 1) & mask;
    }
    return SLOT_MISSING;
}

int gss_map_put(gss_ctx *ctx, uint64_t key, int64_t val) {
    if (key == EMPTY_KEY) {
        if (!ctx->has_max_key) {
            ctx->has_max_key = 1;
            ctx->count++;
        }
        ctx->max_key_val = val;
        return 0;
    }
    /* grow at 70% load so probe chains stay short */
    if ((ctx->count + 1) * 10 >= ctx->capacity * 7) {
        if (map_grow(ctx) != 0) return -1;
    }
    uint64_t mask = (uint64_t)ctx->capacity - 1;
    uint64_t pos = mix_key(key) & mask;
    while (ctx->keys[pos] != EMPTY_KEY) {
        if (ctx->keys[pos] == key) {
            ctx->vals[pos] = val;
            return 0;
        }
        pos = (pos + 1) & mask;
    }
    ctx->keys[pos] = key;
    ctx->vals[pos] = val;
    ctx->count++;
    return 0;
}

int64_t gss_map_len(gss_ctx *ctx) { return ctx->count; }

static int node_grow(gss_ctx *ctx) {
    int64_t old_cap = ctx->node_cap;
    node_entry *old = ctx->nodes;
    int64_t cap = old_cap * 2;
    node_entry *nodes = (node_entry *)calloc((size_t)cap, sizeof(node_entry));
    if (!nodes) return -1;
    uint64_t mask = (uint64_t)cap - 1;
    for (int64_t i = 0; i < old_cap; i++) {
        if (!old[i].used) continue;
        uint64_t pos = old[i].h64 & mask;
        while (nodes[pos].used) pos = (pos + 1) & mask;
        nodes[pos] = old[i];
    }
    free(old);
    ctx->nodes = nodes;
    ctx->node_cap = cap;
    return 0;
}

static int arena_append(gss_ctx *ctx, const unsigned char *data, uint32_t len,
                        uint64_t *off_out) {
    if (ctx->arena_len + (int64_t)len > ctx->arena_cap) {
        int64_t cap = ctx->arena_cap ? ctx->arena_cap * 2 : 65536;
        while (cap < ctx->arena_len + (int64_t)len) cap *= 2;
        unsigned char *arena = (unsigned char *)realloc(ctx->arena, (size_t)cap);
        if (!arena) return -1;
        ctx->arena = arena;
        ctx->arena_cap = cap;
    }
    memcpy(ctx->arena + ctx->arena_len, data, len);
    *off_out = (uint64_t)ctx->arena_len;
    ctx->arena_len += len;
    return 0;
}

static int ensure_scratch(gss_ctx *ctx, int64_t n, int64_t seq_length) {
    /* batch table capacity: pow2 >= 2n (max 50% load) */
    int64_t want = 16;
    while (want < 2 * n) want *= 2;
    if (want > ctx->bcap) {
        free(ctx->bkeys);
        free(ctx->bvals);
        ctx->bkeys = (uint64_t *)malloc((size_t)want * sizeof(uint64_t));
        ctx->bvals = (int64_t *)malloc((size_t)want * sizeof(int64_t));
        if (!ctx->bkeys || !ctx->bvals) return -1;
        ctx->bcap = want;
    }
    if (n > ctx->ucap) {
        free(ctx->ukeys);
        free(ctx->usums);
        ctx->ukeys = (uint64_t *)malloc((size_t)n * sizeof(uint64_t));
        ctx->usums = (double *)malloc((size_t)n * sizeof(double));
        if (!ctx->ukeys || !ctx->usums) return -1;
        ctx->ucap = n;
    }
    if (2 * seq_length > ctx->acap) {
        free(ctx->saddr);
        ctx->saddr = (int64_t *)malloc((size_t)(2 * seq_length) * sizeof(int64_t));
        if (!ctx->saddr) return -1;
        ctx->acap = 2 * seq_length;
    }
    return 0;
}

static int64_t ingest_core(
    gss_ctx *ctx,
    const uint64_t *keys, const double *weights, int64_t n,
    uint64_t hash_range, uint64_t fp_range,
    int64_t width, int64_t rooms,
    int64_t seq_length, int64_t candidates,
    int32_t square_hashing, int32_t sampling,
    uint64_t lcg_a, uint64_t lcg_b, uint64_t lcg_p,
    int64_t size,
    int64_t *rows, int64_t *cols,
    int64_t *src_fp_arr, int64_t *dst_fp_arr,
    int64_t *src_idx_arr, int64_t *dst_idx_arr,
    double *room_weights,
    uint8_t *fill,
    uint64_t *spill_keys, double *spill_sums, int64_t *spill_count,
    uint64_t *rebuf_keys, double *rebuf_sums, int64_t *rebuf_count)
{
    if (ensure_scratch(ctx, n, seq_length) != 0) return -1;

    /* Pass 1 — aggregate per unique key.  Uniques are numbered in first-seen
     * order; each unique's weight accumulates in stream order, exactly like
     * the scalar dict and np.bincount paths (same IEEE addition order). */
    uint64_t bmask = (uint64_t)ctx->bcap - 1;
    memset(ctx->bkeys, 0xFF, (size_t)ctx->bcap * sizeof(uint64_t));
    int64_t max_key_unique = -1; /* batch-table side slot for key==EMPTY_KEY */
    int64_t nunique = 0;
    for (int64_t i = 0; i < n; i++) {
        uint64_t key = keys[i];
        int64_t u;
        if (key == EMPTY_KEY) {
            if (max_key_unique < 0) {
                max_key_unique = nunique;
                ctx->ukeys[nunique] = key;
                ctx->usums[nunique] = 0.0;
                nunique++;
            }
            u = max_key_unique;
        } else {
            uint64_t pos = mix_key(key) & bmask;
            while (ctx->bkeys[pos] != EMPTY_KEY && ctx->bkeys[pos] != key)
                pos = (pos + 1) & bmask;
            if (ctx->bkeys[pos] == EMPTY_KEY) {
                ctx->bkeys[pos] = key;
                ctx->bvals[pos] = nunique;
                ctx->ukeys[nunique] = key;
                ctx->usums[nunique] = 0.0;
                nunique++;
            }
            u = ctx->bvals[pos];
        }
        ctx->usums[u] += weights[i];
    }

    /* Pass 2 — classify and place, in first-seen order (the only order that
     * is observable: it decides same-batch bucket contention and buffer
     * entry creation, matching the scalar backend's single pass). */
    int64_t *saddr = ctx->saddr;
    int64_t *daddr = ctx->saddr + seq_length;
    int64_t span = seq_length * seq_length;
    int fast31 = (lcg_p == MERSENNE31);
    *spill_count = 0;
    *rebuf_count = 0;
    for (int64_t u = 0; u < nunique; u++) {
        uint64_t key = ctx->ukeys[u];
        double sum = ctx->usums[u];
        int64_t slot = gss_map_get(ctx, key);
        if (slot >= 0) {
            room_weights[slot] += sum;
            continue;
        }
        if (slot == SLOT_BUFFERED) {
            rebuf_keys[*rebuf_count] = key;
            rebuf_sums[*rebuf_count] = sum;
            (*rebuf_count)++;
            continue;
        }
        /* unseen: split the packed key and derive the probe sequence */
        uint64_t source_hash = key / hash_range;
        uint64_t destination_hash = key % hash_range;
        int64_t source_base = (int64_t)(source_hash / fp_range);
        int64_t source_fp = (int64_t)(source_hash % fp_range);
        int64_t destination_base = (int64_t)(destination_hash / fp_range);
        int64_t destination_fp = (int64_t)(destination_hash % fp_range);
        int64_t probes = candidates;
        if (square_hashing) {
            uint64_t cur;
            if (fast31) {
                cur = mod_m31((uint64_t)source_fp);
                for (int64_t i = 0; i < seq_length; i++) {
                    cur = mod_m31(lcg_a * cur + lcg_b);
                    saddr[i] = (int64_t)(((uint64_t)source_base + cur) % (uint64_t)width);
                }
                cur = mod_m31((uint64_t)destination_fp);
                for (int64_t i = 0; i < seq_length; i++) {
                    cur = mod_m31(lcg_a * cur + lcg_b);
                    daddr[i] = (int64_t)(((uint64_t)destination_base + cur) % (uint64_t)width);
                }
            } else {
                cur = (uint64_t)source_fp % lcg_p;
                for (int64_t i = 0; i < seq_length; i++) {
                    cur = (lcg_a * cur + lcg_b) % lcg_p;
                    saddr[i] = (int64_t)(((uint64_t)source_base + cur) % (uint64_t)width);
                }
                cur = (uint64_t)destination_fp % lcg_p;
                for (int64_t i = 0; i < seq_length; i++) {
                    cur = (lcg_a * cur + lcg_b) % lcg_p;
                    daddr[i] = (int64_t)(((uint64_t)destination_base + cur) % (uint64_t)width);
                }
            }
            if (!sampling) probes = span;
        } else {
            saddr[0] = source_base % width;
            daddr[0] = destination_base % width;
            probes = 1;
        }
        int placed = 0;
        uint64_t cur = fast31
            ? mod_m31((uint64_t)(source_fp + destination_fp))
            : ((uint64_t)(source_fp + destination_fp)) % lcg_p;
        for (int64_t probe = 0; probe < probes; probe++) {
            int64_t i, j;
            if (!square_hashing) {
                i = 0;
                j = 0;
            } else if (!sampling) {
                i = probe / seq_length;
                j = probe % seq_length;
            } else {
                cur = fast31 ? mod_m31(lcg_a * cur + lcg_b)
                             : (lcg_a * cur + lcg_b) % lcg_p;
                int64_t position = (int64_t)(cur % (uint64_t)span);
                i = position / seq_length;
                j = position % seq_length;
            }
            int64_t row = saddr[i];
            int64_t column = daddr[j];
            int64_t bucket = row * width + column;
            if (fill[bucket] < rooms) {
                fill[bucket]++;
                rows[size] = row;
                cols[size] = column;
                src_fp_arr[size] = source_fp;
                dst_fp_arr[size] = destination_fp;
                src_idx_arr[size] = i + 1;
                dst_idx_arr[size] = j + 1;
                room_weights[size] = sum;
                if (gss_map_put(ctx, key, size) != 0) return -1;
                size++;
                placed = 1;
                break;
            }
        }
        if (!placed) {
            if (gss_map_put(ctx, key, SLOT_BUFFERED) != 0) return -1;
            spill_keys[*spill_count] = key;
            spill_sums[*spill_count] = sum;
            (*spill_count)++;
        }
    }
    return size;
}

int64_t gss_ingest_batch(
    gss_ctx *ctx,
    const uint64_t *keys, const double *weights, int64_t n,
    uint64_t hash_range, uint64_t fp_range,
    int64_t width, int64_t rooms,
    int64_t seq_length, int64_t candidates,
    int32_t square_hashing, int32_t sampling,
    uint64_t lcg_a, uint64_t lcg_b, uint64_t lcg_p,
    int64_t size,
    int64_t *rows, int64_t *cols,
    int64_t *src_fp_arr, int64_t *dst_fp_arr,
    int64_t *src_idx_arr, int64_t *dst_idx_arr,
    double *room_weights,
    uint8_t *fill,
    uint64_t *spill_keys, double *spill_sums, int64_t *spill_count,
    uint64_t *rebuf_keys, double *rebuf_sums, int64_t *rebuf_count)
{
    if (n <= 0) return size;
    return ingest_core(
        ctx, keys, weights, n, hash_range, fp_range, width, rooms,
        seq_length, candidates, square_hashing, sampling,
        lcg_a, lcg_b, lcg_p, size,
        rows, cols, src_fp_arr, dst_fp_arr, src_idx_arr, dst_idx_arr,
        room_weights, fill,
        spill_keys, spill_sums, spill_count,
        rebuf_keys, rebuf_sums, rebuf_count);
}

/* Whole-batch text ingestion: blob holds 2n NUL-separated UTF-8 node IDs in
 * interleaved (source, destination) stream order.  Returns the new room
 * count, -1 on allocation failure, or -2 when the token count does not
 * match 2n (checked before any state mutation, so the caller can fall back
 * to the per-key path with the kernel untouched). */
int64_t gss_ingest_text_batch(
    gss_ctx *ctx,
    const unsigned char *blob, int64_t blob_len,
    const double *weights, int64_t n,
    uint64_t fnv_state0,
    uint64_t hash_range, uint64_t fp_range,
    int64_t width, int64_t rooms,
    int64_t seq_length, int64_t candidates,
    int32_t square_hashing, int32_t sampling,
    uint64_t lcg_a, uint64_t lcg_b, uint64_t lcg_p,
    int64_t size,
    int64_t *rows, int64_t *cols,
    int64_t *src_fp_arr, int64_t *dst_fp_arr,
    int64_t *src_idx_arr, int64_t *dst_idx_arr,
    double *room_weights,
    uint8_t *fill,
    uint64_t *spill_keys, double *spill_sums, int64_t *spill_count,
    uint64_t *rebuf_keys, double *rebuf_sums, int64_t *rebuf_count,
    int64_t *new_offs, int64_t *new_lens, uint64_t *new_hashes,
    int64_t *new_count)
{
    if (n <= 0) return size;
    /* Defensive token-count check (Python already screens for embedded
     * NULs); runs before any mutation so -2 is a clean fallback. */
    int64_t seps = 0;
    {
        const unsigned char *p = blob;
        const unsigned char *end = blob + blob_len;
        while (p < end && (p = memchr(p, 0, (size_t)(end - p))) != NULL) {
            seps++;
            p++;
        }
    }
    if (seps != 2 * n - 1) return -2;
    if (n > ctx->tcap) {
        free(ctx->tkeys);
        ctx->tkeys = (uint64_t *)malloc((size_t)n * sizeof(uint64_t));
        if (!ctx->tkeys) return -1;
        ctx->tcap = n;
    }
    *new_count = 0;
    uint64_t prev_hmod = 0;
    int64_t tok_start = 0;
    int64_t t = 0;
    for (int64_t i = 0; i <= blob_len; i++) {
        if (i < blob_len && blob[i] != 0) continue;
        /* token = blob[tok_start:i): FNV-1a from the seeded state, then the
         * splitmix64 finalizer — hash_functions.hash_string byte for byte */
        uint32_t len = (uint32_t)(i - tok_start);
        uint64_t state = fnv_state0;
        for (int64_t b = tok_start; b < i; b++) {
            state ^= blob[b];
            state *= FNV_PRIME;
        }
        uint64_t h64 = mix_key(state);
        uint64_t hmod = h64 % hash_range;
        /* memoize in the persistent node table; report first sightings */
        uint64_t mask = (uint64_t)ctx->node_cap - 1;
        uint64_t pos = h64 & mask;
        for (;;) {
            node_entry *entry = &ctx->nodes[pos];
            if (!entry->used) {
                if ((ctx->node_count + 1) * 10 >= ctx->node_cap * 7) {
                    if (node_grow(ctx) != 0) return -1;
                    mask = (uint64_t)ctx->node_cap - 1;
                    pos = h64 & mask;
                    while (ctx->nodes[pos].used) pos = (pos + 1) & mask;
                    entry = &ctx->nodes[pos];
                }
                uint64_t off;
                if (arena_append(ctx, blob + tok_start, len, &off) != 0)
                    return -1;
                entry->used = 1;
                entry->off = off;
                entry->len = len;
                entry->h64 = h64;
                entry->hmod = hmod;
                ctx->node_count++;
                new_offs[*new_count] = tok_start;
                new_lens[*new_count] = (int64_t)len;
                new_hashes[*new_count] = hmod;
                (*new_count)++;
                break;
            }
            if (entry->h64 == h64 && entry->len == len &&
                memcmp(ctx->arena + entry->off, blob + tok_start, len) == 0)
                break;
            pos = (pos + 1) & mask;
        }
        if (t & 1)
            ctx->tkeys[t >> 1] = prev_hmod * hash_range + hmod;
        else
            prev_hmod = hmod;
        t++;
        tok_start = i + 1;
    }
    return ingest_core(
        ctx, ctx->tkeys, weights, n, hash_range, fp_range, width, rooms,
        seq_length, candidates, square_hashing, sampling,
        lcg_a, lcg_b, lcg_p, size,
        rows, cols, src_fp_arr, dst_fp_arr, src_idx_arr, dst_idx_arr,
        room_weights, fill,
        spill_keys, spill_sums, spill_count,
        rebuf_keys, rebuf_sums, rebuf_count);
}
