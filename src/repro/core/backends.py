"""Pluggable matrix-storage backends for the Graph Stream Sketch.

:class:`~repro.core.gss.GSS` owns the hashing, the left-over buffer, the
reverse node index and the query API; *where the matrix rooms live* is the
backend's business.  Three observationally identical implementations are
provided:

* :class:`PythonMatrixBackend` — the original occupancy-indexed layout:
  nested room lists per bucket, per-row/per-column occupancy sets and an
  O(1) room map.  Zero dependencies; the default.
* :class:`NumpyMatrixBackend` — columnar storage: one contiguous array per
  room field (fingerprint pairs, index pairs, weights) plus a per-bucket
  fill table and an edge-to-slot map.  Batch updates run through the
  vectorized hashing pipeline of :mod:`repro.hashing.vectorized`, and
  neighbor scans / reconstruction are whole-array operations.
* :class:`NativeMatrixBackend` — the numpy layout with the whole per-batch
  aggregate/classify/place pipeline (including the inherently sequential
  first-seen contention loop) compiled to a C kernel
  (:mod:`repro.core._native`).  A batch crosses the Python/kernel boundary
  once; only buffer spills come back to Python.

Equivalence is not accidental — it is load-bearing.  Both backends place
every sketch edge in exactly the same room (or buffer entry), because:

* an edge's candidate probe order is a pure function of its fingerprints;
* buckets only ever fill up, never empty, so "the first candidate bucket
  with a free room" is stable over time;
* a room's key ``(row, column, f_s, f_d, i_s, i_d)`` can only be produced
  by one sketch edge (the addresses and fingerprints together determine
  ``H(s)`` and ``H(d)``, Theorem 1), so an edge that has been placed — or
  has overflowed to the buffer — keeps that fate forever.

The last point is what lets the NumPy backend replace the room map with a
per-*edge* slot map and lets it skip per-candidate room lookups entirely for
edges it has already seen.  ``tests/test_numpy_backend.py`` drives both
backends through random streams (deletions, buffer overflow, serialization,
merges) and asserts the results match item-for-item.
"""

from __future__ import annotations

import ctypes
import warnings
import weakref
from bisect import insort
from itertools import chain, repeat as _repeat
from time import perf_counter
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from repro.core.config import GSSConfig
from repro.hashing.hash_functions import _FNV_OFFSET, _count_hashes, _splitmix64
from repro.hashing.linear_congruence import recover_address
from repro.metrics.ingest_profile import active_profile
from repro.hashing.vectorized import (
    NUMPY_AVAILABLE,
    address_sequences,
    candidate_pair_arrays,
    lcg_values_at,
    load_numpy,
    node_hashes_array,
)

#: Lazily bound NumPy module (populated by the first NumpyMatrixBackend), so
#: pure-Python sketches never pay the NumPy import cost.
np = None

# A room is a mutable 5-slot list: [f_s, f_d, i_s, i_d, weight].
ROOM_SOURCE_FP = 0
ROOM_DEST_FP = 1
ROOM_SOURCE_INDEX = 2
ROOM_DEST_INDEX = 3
ROOM_WEIGHT = 4

#: ``edge_slot`` value marking an edge that overflowed to the left-over buffer.
_BUFFERED = -1
#: Sentinel for "edge not seen yet" in batch lookups (never a valid slot).
_UNSEEN = -2
#: Pair-cache miss marker for packed uint64 edge keys.  Only the very last
#: key of a maximal 2^32 hash range can collide with it, in which case that
#: one edge is merely re-resolved each batch (a pure perf detail).
_KEY_SENTINEL = (1 << 64) - 1


def _native_usable() -> bool:
    """Whether the compiled placement kernel can run here (lazy probe)."""
    if not NUMPY_AVAILABLE:
        return False
    from repro.core._native import native_available

    return native_available()


def resolve_backend_name(requested: str) -> str:
    """Resolve a configured backend name to the one actually used.

    ``auto`` prefers native -> numpy -> python, taking the fastest backend
    the machine can actually run.  Explicit requests degrade down the same
    chain with a warning when their prerequisites (a C toolchain and numpy
    for ``native``, numpy for ``numpy``) are missing, so a sketch — or a
    serialized snapshot produced on a better-equipped machine — keeps
    working everywhere.
    """
    if requested == "auto":
        if _native_usable():
            return "native"
        return "numpy" if NUMPY_AVAILABLE else "python"
    if requested == "native" and not _native_usable():
        fallback = "numpy" if NUMPY_AVAILABLE else "python"
        warnings.warn(
            "GSSConfig.backend='native' but the compiled placement kernel is "
            f"unavailable here; falling back to the {fallback} matrix backend",
            RuntimeWarning,
            stacklevel=3,
        )
        return fallback
    if requested == "numpy" and not NUMPY_AVAILABLE:
        warnings.warn(
            "GSSConfig.backend='numpy' but NumPy is not installed; "
            "falling back to the pure-Python matrix backend",
            RuntimeWarning,
            stacklevel=3,
        )
        return "python"
    return requested


def resolve_counter_backend_name(requested: str) -> str:
    """Resolve a backend name for plain counter-array structures (baselines).

    The compiled kernel is GSS-placement-specific; counter sketches (TCM,
    GMatrix, CM) have only python/numpy storage, so ``native`` — explicit or
    via ``auto`` — means ``numpy`` to them (their fastest available), with
    the usual degrade-with-warning when NumPy itself is missing.
    """
    if requested == "auto":
        return "numpy" if NUMPY_AVAILABLE else "python"
    if requested == "native":
        requested = "numpy"
    return resolve_backend_name(requested)


def make_backend(sketch) -> "PythonMatrixBackend":
    """Instantiate the matrix backend selected by ``sketch.config.backend``."""
    name = resolve_backend_name(sketch.config.backend)
    if name == "native":
        config = sketch.config
        # The kernel packs H(s) * M + H(d) into uint64 and counts bucket fill
        # in uint8; configs outside that envelope run the numpy backend
        # instead (same results, just not compiled).
        if config.hash_range > (1 << 32) or config.rooms >= 255:
            if config.backend == "native":
                warnings.warn(
                    "GSSConfig.backend='native' but this config is outside "
                    "the compiled kernel's envelope (needs hash_range <= 2^32 "
                    "and rooms < 255); using the numpy matrix backend",
                    RuntimeWarning,
                    stacklevel=3,
                )
            return NumpyMatrixBackend(sketch)
        return NativeMatrixBackend(sketch)
    if name == "numpy":
        return NumpyMatrixBackend(sketch)
    return PythonMatrixBackend(sketch)


class PythonMatrixBackend:
    """Occupancy-indexed nested-list matrix storage (the zero-dependency default).

    Per-row and per-column occupancy sets record which buckets hold at least
    one room, and a room map keyed by ``(row, column, fingerprints, indices)``
    gives O(1) room lookups, so scans cost O(stored edges) rather than
    O(r * m) matrix slots.
    """

    name = "python"

    def __init__(self, sketch) -> None:
        self._sketch = sketch
        self._width = sketch.config.matrix_width
        # One slot per bucket; a bucket is lazily created as a list of rooms.
        self._buckets: List[Optional[List[List]]] = [None] * (self._width * self._width)
        self.matrix_edge_count = 0
        # Occupancy indexes: which columns of each row (and rows of each
        # column) hold at least one room, kept as ascending sorted lists so
        # scans need no per-query sort.  Buckets never empty out, so the
        # indexes only grow and stay exact without any eviction logic.
        self._row_occupancy: Dict[int, List[int]] = {}
        self._col_occupancy: Dict[int, List[int]] = {}
        # Fingerprint-bucketed room map: (row, column, f_s, f_d, i_s, i_d) ->
        # the room list itself, for O(1) aggregation and edge queries.
        self._room_map: Dict[Tuple[int, int, int, int, int, int], List] = {}

    # -- room bookkeeping --------------------------------------------------

    def bucket_at(self, row: int, column: int) -> Optional[List[List]]:
        return self._buckets[row * self._width + column]

    def _ensure_bucket(self, row: int, column: int) -> List[List]:
        position = row * self._width + column
        bucket = self._buckets[position]
        if bucket is None:
            bucket = []
            self._buckets[position] = bucket
        return bucket

    def register_room(self, row: int, column: int, room: List) -> None:
        """Store one room and keep every matrix index in sync.

        All room insertions — updates, merges, deserialization — must go
        through here so the occupancy sets and the room map stay exact.
        """
        bucket = self._ensure_bucket(row, column)
        bucket.append(room)
        self._room_map[
            (
                row,
                column,
                room[ROOM_SOURCE_FP],
                room[ROOM_DEST_FP],
                room[ROOM_SOURCE_INDEX],
                room[ROOM_DEST_INDEX],
            )
        ] = room
        if len(bucket) == 1:
            # First room in this bucket: the bucket just became occupied.
            insort(self._row_occupancy.setdefault(row, []), column)
            insort(self._col_occupancy.setdefault(column, []), row)
        self.matrix_edge_count += 1

    def occupied_buckets(self) -> Iterator[Tuple[int, int, List[List]]]:
        """Yield ``(row, column, bucket)`` for every non-empty bucket.

        Iteration is row-major (ascending row, then column), matching a full
        matrix scan, but only touches occupied positions.
        """
        for row in sorted(self._row_occupancy):
            for column in self._row_occupancy[row]:
                bucket = self.bucket_at(row, column)
                if bucket:
                    yield row, column, bucket

    # -- updates -----------------------------------------------------------

    def insert_edge(self, source_hash: int, destination_hash: int, weight: float) -> None:
        """Insert (or aggregate) one edge of the graph sketch ``Gh``."""
        sketch = self._sketch
        _, source_fp = sketch._split(source_hash)
        _, destination_fp = sketch._split(destination_hash)
        source_addresses = sketch._addresses(source_hash)
        destination_addresses = sketch._addresses(destination_hash)
        rooms_per_bucket = sketch.config.rooms
        room_map = self._room_map

        for source_index, destination_index in sketch._candidate_pairs(
            source_fp, destination_fp
        ):
            row = source_addresses[source_index]
            column = destination_addresses[destination_index]
            stored_source_index = source_index + 1
            stored_destination_index = destination_index + 1
            room = room_map.get(
                (row, column, source_fp, destination_fp, stored_source_index, stored_destination_index)
            )
            if room is not None:
                room[ROOM_WEIGHT] += weight
                return
            bucket = self.bucket_at(row, column)
            if bucket is None or len(bucket) < rooms_per_bucket:
                self.register_room(
                    row,
                    column,
                    [
                        source_fp,
                        destination_fp,
                        stored_source_index,
                        stored_destination_index,
                        weight,
                    ],
                )
                return
        sketch._buffer.add(source_hash, destination_hash, weight)

    def update_many(self, items: Iterable[Tuple[Hashable, Hashable, float]]) -> int:
        """Batched ingestion: hash once per distinct node, insert once per edge."""
        sketch = self._sketch
        hasher = sketch._hasher
        node_index = sketch._node_index
        profile = active_profile()
        started = perf_counter() if profile is not None else 0.0
        hashes: Dict[Hashable, int] = {}
        aggregated: Dict[Tuple[int, int], float] = {}
        count = 0
        for source, destination, weight in items:
            count += 1
            source_hash = hashes.get(source)
            if source_hash is None:
                source_hash = hashes[source] = hasher(source)
                if node_index is not None:
                    node_index.record(source, source_hash)
            destination_hash = hashes.get(destination)
            if destination_hash is None:
                destination_hash = hashes[destination] = hasher(destination)
                if node_index is not None:
                    node_index.record(destination, destination_hash)
            key = (source_hash, destination_hash)
            aggregated[key] = aggregated.get(key, 0.0) + weight
        if profile is not None:
            hashed_at = perf_counter()
            profile.add("hashing", hashed_at - started)
        for (source_hash, destination_hash), weight in aggregated.items():
            self.insert_edge(source_hash, destination_hash, weight)
        if profile is not None:
            # Buffer spill is interleaved inside insert_edge on this backend,
            # so it is accounted under placement.
            profile.add("placement", perf_counter() - hashed_at)
            profile.count_batch()
        return count

    def update_many_by_hash(self, edges: Iterable[Tuple[int, int, float]]) -> int:
        """Batched hash-level ingestion (merge/replay paths)."""
        aggregated: Dict[Tuple[int, int], float] = {}
        count = 0
        for source_hash, destination_hash, weight in edges:
            count += 1
            key = (source_hash, destination_hash)
            aggregated[key] = aggregated.get(key, 0.0) + weight
        for (source_hash, destination_hash), weight in aggregated.items():
            self.insert_edge(source_hash, destination_hash, weight)
        return count

    def ingest_hashed(self, batch) -> int:
        """Ingest a :class:`~repro.streaming.batch.HashedBatch`'s hash columns.

        The hash-once path: no hashing happens here — the batch's
        precomputed columns run through the same aggregate-then-insert loop
        as :meth:`update_many_by_hash`, so placement is identical to every
        other ingest route.  The node index is the sketch's business.
        """
        aggregated: Dict[Tuple[int, int], float] = {}
        count = 0
        for source_hash, destination_hash, weight in zip(
            batch.source_hash_list(), batch.destination_hash_list(), batch.weight_list()
        ):
            count += 1
            key = (source_hash, destination_hash)
            aggregated[key] = aggregated.get(key, 0.0) + weight
        for (source_hash, destination_hash), weight in aggregated.items():
            self.insert_edge(source_hash, destination_hash, weight)
        return count

    # -- queries -----------------------------------------------------------

    def matrix_edge_weight(self, source_hash: int, destination_hash: int) -> Optional[float]:
        """Weight of the edge's matrix room, or ``None`` when not in the matrix."""
        sketch = self._sketch
        _, source_fp = sketch._split(source_hash)
        _, destination_fp = sketch._split(destination_hash)
        source_addresses = sketch._addresses(source_hash)
        destination_addresses = sketch._addresses(destination_hash)
        room_map = self._room_map

        for source_index, destination_index in sketch._candidate_pairs(
            source_fp, destination_fp
        ):
            room = room_map.get(
                (
                    source_addresses[source_index],
                    destination_addresses[destination_index],
                    source_fp,
                    destination_fp,
                    source_index + 1,
                    destination_index + 1,
                )
            )
            if room is not None:
                return room[ROOM_WEIGHT]
        return None

    def matrix_neighbor_hashes(self, node_hash: int, forward: bool) -> Set[int]:
        """Scan ``r`` rows (or columns) for matrix edges touching ``node_hash``.

        Uses the occupancy indexes: only buckets that actually hold rooms are
        visited, so the cost is proportional to the occupancy of the node's
        ``r`` rows/columns instead of ``r * m`` matrix slots.  The left-over
        buffer is the caller's business.
        """
        sketch = self._sketch
        _, fingerprint = sketch._split(node_hash)
        addresses = sketch._addresses(node_hash)
        found: Set[int] = set()
        width = self._width
        occupancy = self._row_occupancy if forward else self._col_occupancy

        own_fp_slot = ROOM_SOURCE_FP if forward else ROOM_DEST_FP
        own_index_slot = ROOM_SOURCE_INDEX if forward else ROOM_DEST_INDEX
        other_fp_slot = ROOM_DEST_FP if forward else ROOM_SOURCE_FP
        other_index_slot = ROOM_DEST_INDEX if forward else ROOM_SOURCE_INDEX

        for position, address in enumerate(addresses):
            expected_index = position + 1
            occupied = occupancy.get(address)
            if not occupied:
                continue
            for offset in occupied:
                if forward:
                    bucket = self.bucket_at(address, offset)
                else:
                    bucket = self.bucket_at(offset, address)
                if bucket is None:
                    continue
                for room in bucket:
                    if room[own_fp_slot] != fingerprint:
                        continue
                    if room[own_index_slot] != expected_index:
                        continue
                    other_fp = room[other_fp_slot]
                    other_index = room[other_index_slot]
                    if sketch.config.square_hashing:
                        other_base = recover_address(
                            offset, other_fp, other_index, width, sketch._lcg
                        )
                    else:
                        other_base = offset
                    found.add(other_base * sketch._fingerprint_range + other_fp)
        return found

    def reconstruct(self) -> List[Tuple[int, int, float]]:
        """Recover every matrix edge as ``(H(s), H(d), weight)`` triples.

        The scan walks the occupancy indexes in row-major order, so it costs
        O(stored edges) and yields the same sequence a full matrix scan would.
        """
        sketch = self._sketch
        edges: List[Tuple[int, int, float]] = []
        width = self._width
        fingerprint_range = sketch._fingerprint_range
        for row, column, bucket in self.occupied_buckets():
            for room in bucket:
                source_fp = room[ROOM_SOURCE_FP]
                destination_fp = room[ROOM_DEST_FP]
                if sketch.config.square_hashing:
                    source_base = recover_address(
                        row, source_fp, room[ROOM_SOURCE_INDEX], width, sketch._lcg
                    )
                    destination_base = recover_address(
                        column, destination_fp, room[ROOM_DEST_INDEX], width, sketch._lcg
                    )
                else:
                    source_base = row
                    destination_base = column
                edges.append(
                    (
                        source_base * fingerprint_range + source_fp,
                        destination_base * fingerprint_range + destination_fp,
                        room[ROOM_WEIGHT],
                    )
                )
        return edges


class NumpyMatrixBackend:
    """Columnar NumPy matrix storage with vectorized batch updates.

    Rooms live in parallel growable arrays (struct-of-arrays layout): row and
    column, the fingerprint pair, the index pair and the weight, one entry
    per room in insertion order.  Three side structures keep updates O(1):

    * ``_bucket_fill`` — rooms per bucket, a plain Python list because it is
      only touched by the sequential placement loop;
    * ``_edge_slot`` — packed sketch-edge key -> room slot (or ``-1`` for
      edges that overflowed to the buffer).  Because an edge's placement is
      permanent (see the module docstring), this replaces the per-room map
      of the Python backend and short-circuits every repeat update;
    * ``matrix_edge_count`` — mirrors ``_size``.

    ``update_many`` computes node hashes, hash splits, address sequences and
    candidate pairs for the whole batch as array operations; only the
    placement of *previously unseen* edges runs in a (cheap, precomputed)
    Python loop, because placement order determines who wins the last room
    of a contended bucket and must match the Python backend exactly.
    """

    name = "numpy"

    _INITIAL_CAPACITY = 1024
    #: Cap on the persistent node -> hash memo.  Past the cap, unseen nodes
    #: are still hashed (and re-hashed) correctly, just without caching, so a
    #: long-running process cannot grow without bound.
    _NODE_CACHE_LIMIT = 1 << 20
    #: Default for ``GSSConfig.scalar_tail_threshold``: below this many new
    #: edges (or unknown items), the batch tail runs through the scalar
    #: helpers instead of the array pipeline — fixed per-call NumPy overhead
    #: beats vectorization on tiny inputs, and the scalar path shares the
    #: address/candidate memos, so it is cheap and — by construction —
    #: placement-identical.  Micro-calibrated on the Table I streams with
    #: ``scripts/calibrate_scalar_tail.py``: the scalar/vector crossover sits
    #: in the 64–128 range, flat to within measurement noise, and 96 is the
    #: midpoint that measured best overall (see BENCH_tab1.json).
    _SCALAR_TAIL_DEFAULT = 96

    def __init__(self, sketch) -> None:
        if not NUMPY_AVAILABLE:  # pragma: no cover - guarded by make_backend
            raise RuntimeError("NumpyMatrixBackend requires NumPy")
        global np
        if np is None:
            np = load_numpy()
        self._sketch = sketch
        config = sketch.config
        self._width = config.matrix_width
        self._fingerprint_range = config.fingerprint_range
        self._hash_range = config.hash_range
        # Packed uint64 edge keys need H(s) * M + H(d) < 2**64.
        self._packed_keys = self._hash_range <= (1 << 32)
        self._scalar_tail = (
            config.scalar_tail_threshold
            if config.scalar_tail_threshold is not None
            else self._SCALAR_TAIL_DEFAULT
        )
        capacity = self._INITIAL_CAPACITY
        self._rows = np.zeros(capacity, dtype=np.int64)
        self._cols = np.zeros(capacity, dtype=np.int64)
        self._src_fp = np.zeros(capacity, dtype=np.int64)
        self._dst_fp = np.zeros(capacity, dtype=np.int64)
        self._src_idx = np.zeros(capacity, dtype=np.int64)
        self._dst_idx = np.zeros(capacity, dtype=np.int64)
        self._weights = np.zeros(capacity, dtype=np.float64)
        self._size = 0
        self._bucket_fill: List[int] = [0] * (self._width * self._width)
        self._edge_slot: Dict = {}
        self._node_hash_cache: Dict[Hashable, int] = {}
        # (source, destination) original-ID pair -> packed edge key, so batch
        # updates resolve repeat edges with one dict probe per item.  Only
        # used in packed-key mode; resolving a pair the first time goes
        # through the node-hash cache (which also feeds the reverse index).
        self._pair_key_cache: Dict[Tuple[Hashable, Hashable], int] = {}
        self.matrix_edge_count = 0

    # -- storage plumbing --------------------------------------------------

    def _edge_key(self, source_hash: int, destination_hash: int):
        if self._packed_keys:
            return source_hash * self._hash_range + destination_hash
        return (source_hash, destination_hash)

    def _ensure_capacity(self, extra: int) -> None:
        needed = self._size + extra
        capacity = len(self._weights)
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        for attribute in ("_rows", "_cols", "_src_fp", "_dst_fp", "_src_idx", "_dst_idx", "_weights"):
            old = getattr(self, attribute)
            grown = np.zeros(capacity, dtype=old.dtype)
            grown[: self._size] = old[: self._size]
            setattr(self, attribute, grown)

    def _append_rooms(self, rooms: List[Tuple[int, int, int, int, int, int, float]]) -> None:
        """Bulk-append staged rooms: (row, col, f_s, f_d, i_s, i_d, weight)."""
        if not rooms:
            return
        rows, cols, src_fp, dst_fp, src_idx, dst_idx, weights = zip(*rooms)
        self._append_room_arrays(rows, cols, src_fp, dst_fp, src_idx, dst_idx, weights)

    def _append_room_arrays(
        self, rows, cols, src_fp, dst_fp, src_idx, dst_idx, weights
    ) -> None:
        """Column-wise bulk append of ``len(rows)`` rooms."""
        count = len(rows)
        if not count:
            return
        self._ensure_capacity(count)
        start = self._size
        stop = start + count
        self._rows[start:stop] = rows
        self._cols[start:stop] = cols
        self._src_fp[start:stop] = src_fp
        self._dst_fp[start:stop] = dst_fp
        self._src_idx[start:stop] = src_idx
        self._dst_idx[start:stop] = dst_idx
        self._weights[start:stop] = weights
        self._size = stop
        self.matrix_edge_count += count

    def bucket_at(self, row: int, column: int) -> Optional[List[List]]:
        """Materialize one bucket's rooms (diagnostic/reference path only)."""
        n = self._size
        if n == 0:
            return None
        mask = (self._rows[:n] == row) & (self._cols[:n] == column)
        slots = np.nonzero(mask)[0]
        if not len(slots):
            return None
        return [
            [
                int(self._src_fp[slot]),
                int(self._dst_fp[slot]),
                int(self._src_idx[slot]),
                int(self._dst_idx[slot]),
                float(self._weights[slot]),
            ]
            for slot in slots
        ]

    def register_room(self, row: int, column: int, room: List) -> None:
        """Append one room (deserialization/restore path) and index its edge."""
        source_fp, destination_fp, source_index, destination_index, weight = room
        sketch = self._sketch
        if sketch.config.square_hashing:
            source_base = recover_address(
                row, source_fp, source_index, self._width, sketch._lcg
            )
            destination_base = recover_address(
                column, destination_fp, destination_index, self._width, sketch._lcg
            )
        else:
            source_base = row
            destination_base = column
        source_hash = source_base * self._fingerprint_range + source_fp
        destination_hash = destination_base * self._fingerprint_range + destination_fp
        self._edge_slot[self._edge_key(source_hash, destination_hash)] = self._size
        self._bucket_fill[row * self._width + column] += 1
        self._append_rooms(
            [(row, column, source_fp, destination_fp, source_index, destination_index, weight)]
        )

    def occupied_buckets(self) -> Iterator[Tuple[int, int, List[List]]]:
        """Yield ``(row, column, bucket)`` row-major, rooms in insertion order."""
        n = self._size
        if n == 0:
            return
        order = np.lexsort((self._cols[:n], self._rows[:n]))
        rows = self._rows[order].tolist()
        cols = self._cols[order].tolist()
        src_fp = self._src_fp[order].tolist()
        dst_fp = self._dst_fp[order].tolist()
        src_idx = self._src_idx[order].tolist()
        dst_idx = self._dst_idx[order].tolist()
        weights = self._weights[order].tolist()
        bucket: List[List] = []
        current: Optional[Tuple[int, int]] = None
        for position in range(n):
            coordinates = (rows[position], cols[position])
            if coordinates != current:
                if bucket:
                    yield current[0], current[1], bucket
                bucket = []
                current = coordinates
            bucket.append(
                [src_fp[position], dst_fp[position], src_idx[position], dst_idx[position], weights[position]]
            )
        if bucket:
            yield current[0], current[1], bucket

    # -- updates -----------------------------------------------------------

    def insert_edge(self, source_hash: int, destination_hash: int, weight: float) -> None:
        """Scalar insert: edge-slot fast path, then candidate probing."""
        key = self._edge_key(source_hash, destination_hash)
        slot = self._edge_slot.get(key)
        if slot is not None:
            if slot >= 0:
                self._weights[slot] += weight
            else:
                self._sketch._buffer.add(source_hash, destination_hash, weight)
            return
        sketch = self._sketch
        _, source_fp = sketch._split(source_hash)
        _, destination_fp = sketch._split(destination_hash)
        source_addresses = sketch._addresses(source_hash)
        destination_addresses = sketch._addresses(destination_hash)
        rooms_per_bucket = sketch.config.rooms
        fill = self._bucket_fill
        width = self._width
        for source_index, destination_index in sketch._candidate_pairs(
            source_fp, destination_fp
        ):
            row = source_addresses[source_index]
            column = destination_addresses[destination_index]
            position = row * width + column
            if fill[position] < rooms_per_bucket:
                fill[position] += 1
                self._edge_slot[key] = self._size
                self._append_rooms(
                    [
                        (
                            row,
                            column,
                            source_fp,
                            destination_fp,
                            source_index + 1,
                            destination_index + 1,
                            weight,
                        )
                    ]
                )
                return
        self._edge_slot[key] = _BUFFERED
        self._sketch._buffer.add(source_hash, destination_hash, weight)

    def update_many(self, items: Iterable[Tuple[Hashable, Hashable, float]]) -> int:
        """Vectorized batch ingestion over original node identifiers."""
        triples = items if isinstance(items, list) else list(items)
        if not triples:
            return 0
        count = len(triples)
        profile = active_profile()
        if profile is not None:
            started = perf_counter()
            memo_before = profile.stage_seconds("memo")
        sources, destinations, weights = zip(*triples)
        weight_array = np.asarray(weights, dtype=np.float64)
        if not self._packed_keys:
            source_hashes, destination_hashes = self._node_hashes_for(
                sources, destinations
            )
            if profile is not None:
                memo_spent = profile.stage_seconds("memo") - memo_before
                profile.add("hashing", perf_counter() - started - memo_spent)
                profile.count_batch()
            self._ingest_hash_pairs(source_hashes, destination_hashes, weight_array)
            return count
        # Packed-key fast path: one dict probe per item resolves repeat
        # edges; only first-seen pairs go through node hashing.
        pair_cache = self._pair_key_cache
        keys = np.fromiter(
            map(pair_cache.get, zip(sources, destinations), _repeat(_KEY_SENTINEL)),
            dtype=np.uint64,
            count=count,
        )
        unknown = keys == _KEY_SENTINEL
        if unknown.any():
            unknown_positions = np.nonzero(unknown)[0].tolist()
            if len(unknown_positions) <= self._scalar_tail:
                self._resolve_pairs_scalar(sources, destinations, unknown_positions, keys)
            else:
                unknown_sources = [sources[position] for position in unknown_positions]
                unknown_destinations = [
                    destinations[position] for position in unknown_positions
                ]
                source_hashes, destination_hashes = self._node_hashes_for(
                    unknown_sources, unknown_destinations
                )
                resolved = source_hashes * np.uint64(self._hash_range) + destination_hashes
                keys[unknown] = resolved
                if len(pair_cache) < self._NODE_CACHE_LIMIT:
                    memo_started = perf_counter() if profile is not None else 0.0
                    pair_cache.update(
                        zip(zip(unknown_sources, unknown_destinations), resolved.tolist())
                    )
                    if profile is not None:
                        profile.add("memo", perf_counter() - memo_started)
        if profile is not None:
            memo_spent = profile.stage_seconds("memo") - memo_before
            profile.add("hashing", perf_counter() - started - memo_spent)
            profile.count_batch()
        self._ingest_keys(keys, weight_array)
        return count

    def _resolve_pairs_scalar(self, sources, destinations, positions, keys) -> None:
        """Scalar-tail key resolution for a few unknown pairs.

        Hashes through the node memo (falling back to the scalar hasher for
        genuinely new nodes, which also registers them in the reverse index)
        and writes packed keys straight into ``keys``.
        """
        sketch = self._sketch
        cache = self._node_hash_cache
        pair_cache = self._pair_key_cache
        hasher = sketch._hasher
        node_index = sketch._node_index
        hash_range = self._hash_range
        node_limit = len(cache) < self._NODE_CACHE_LIMIT
        pair_limit = len(pair_cache) < self._NODE_CACHE_LIMIT
        for position in positions:
            source = sources[position]
            destination = destinations[position]
            source_hash = cache.get(source)
            if source_hash is None:
                source_hash = hasher(source)
                if node_index is not None:
                    node_index.record(source, source_hash)
                if node_limit:
                    cache[source] = source_hash
            destination_hash = cache.get(destination)
            if destination_hash is None:
                destination_hash = hasher(destination)
                if node_index is not None:
                    node_index.record(destination, destination_hash)
                if node_limit:
                    cache[destination] = destination_hash
            key = source_hash * hash_range + destination_hash
            keys[position] = key
            if pair_limit:
                pair_cache[(source, destination)] = key

    def _node_hashes_for(self, sources, destinations):
        """Hash two aligned node-ID sequences through the node memo.

        Registers first-ever-seen nodes in the reverse index, in first-seen
        interleaved (source, destination) order — the order the scalar path
        records them.  A pair that reaches this resolver always contains the
        first batch occurrence of any genuinely new node, because the pair
        cache can only hold pairs whose nodes were resolved before.
        """
        sketch = self._sketch
        count = len(sources)
        cache = self._node_hash_cache
        distinct = dict.fromkeys(chain.from_iterable(zip(sources, destinations)))
        missing = [node for node in distinct if node not in cache]
        if missing:
            hashed = node_hashes_array(
                missing, self._hash_range, sketch.config.seed
            ).tolist()
            node_index = sketch._node_index
            if node_index is not None:
                for node, node_hash in zip(missing, hashed):
                    node_index.record(node, node_hash)
            if len(cache) < self._NODE_CACHE_LIMIT:
                profile = active_profile()
                memo_started = perf_counter() if profile is not None else 0.0
                cache.update(zip(missing, hashed))
                if profile is not None:
                    profile.add("memo", perf_counter() - memo_started)
                lookup = cache
            else:
                # Cache is at capacity: resolve this batch through a private
                # overlay so correctness never depends on cache admission.
                lookup = {node: cache[node] for node in distinct if node in cache}
                lookup.update(zip(missing, hashed))
        else:
            lookup = cache
        hashes = np.fromiter(
            map(lookup.__getitem__, chain(sources, destinations)),
            dtype=np.uint64,
            count=2 * count,
        )
        return hashes[:count], hashes[count:]

    def update_many_by_hash(self, edges: Iterable[Tuple[int, int, float]]) -> int:
        """Vectorized batch ingestion over sketch hashes (merge/replay)."""
        triples = edges if isinstance(edges, list) else list(edges)
        if not triples:
            return 0
        count = len(triples)
        sources, destinations, weights = zip(*triples)
        source_hashes = np.fromiter(sources, dtype=np.uint64, count=count)
        destination_hashes = np.fromiter(destinations, dtype=np.uint64, count=count)
        weight_array = np.asarray(weights, dtype=np.float64)
        if self._packed_keys:
            self._ingest_keys(
                source_hashes * np.uint64(self._hash_range) + destination_hashes,
                weight_array,
            )
        else:
            self._ingest_hash_pairs(source_hashes, destination_hashes, weight_array)
        return count

    def ingest_hashed(self, batch) -> int:
        """Ingest a :class:`~repro.streaming.batch.HashedBatch`'s hash columns.

        The columns are consumed as arrays directly (zero-copy when the batch
        was built on the vectorized path); placement runs through the exact
        machinery of :meth:`update_many_by_hash`.
        """
        count = len(batch)
        if count == 0:
            return 0
        source_hashes = np.asarray(batch.source_hashes, dtype=np.uint64)
        destination_hashes = np.asarray(batch.destination_hashes, dtype=np.uint64)
        weight_array = np.asarray(batch.weights, dtype=np.float64)
        if self._packed_keys:
            self._ingest_keys(
                source_hashes * np.uint64(self._hash_range) + destination_hashes,
                weight_array,
            )
        else:
            self._ingest_hash_pairs(source_hashes, destination_hashes, weight_array)
        return count

    def _ingest_keys(self, keys, weights) -> None:
        """Aggregate a batch of packed edge keys and route edges to rooms/buffer.

        Mirrors the scalar semantics exactly: edges are pre-aggregated
        (bincount accumulates in stream order, like the scalar batch dict),
        previously placed edges become one vectorized weight scatter,
        previously buffered edges go back to the buffer, and unseen edges run
        through the sequential placement loop in first-seen order — the only
        ordering that is observable, because it decides same-batch bucket
        contention and buffer-entry creation.
        """
        profile = active_profile()
        if profile is not None:
            started = perf_counter()
            spill_before = profile.stage_seconds("buffer_spill")
        unique_keys, first_index, inverse = np.unique(
            keys, return_index=True, return_inverse=True
        )
        sums = np.bincount(
            inverse.reshape(-1), weights=weights, minlength=len(first_index)
        )
        key_list = unique_keys.tolist()
        edge_slot = self._edge_slot
        slots = np.fromiter(
            map(edge_slot.get, key_list, _repeat(_UNSEEN)),
            dtype=np.int64,
            count=len(key_list),
        )
        placed = slots >= 0
        if placed.any():
            # Unique edges map to unique slots, so fancy indexing (not
            # np.add.at) is safe and cheap.  Order is irrelevant here: each
            # room gets exactly one aggregated addition.
            self._weights[slots[placed]] += sums[placed]
        hash_range = np.uint64(self._hash_range)
        buffered = slots == _BUFFERED
        if buffered.any():
            # These edges already own their buffer entries, so add order
            # cannot affect buffer iteration order.
            spill_started = perf_counter() if profile is not None else 0.0
            buffer = self._sketch._buffer
            source_hashes, destination_hashes = np.divmod(
                unique_keys[buffered], hash_range
            )
            for source_hash, destination_hash, weight in zip(
                source_hashes.tolist(),
                destination_hashes.tolist(),
                sums[buffered].tolist(),
            ):
                buffer.add(source_hash, destination_hash, weight)
            if profile is not None:
                profile.add("buffer_spill", perf_counter() - spill_started)
        unseen = slots == _UNSEEN
        if unseen.any():
            # First-seen order decides who wins contended rooms; restore it
            # for just this subset.
            order = np.argsort(first_index[unseen], kind="stable")
            unseen_keys = unique_keys[unseen][order]
            source_hashes, destination_hashes = np.divmod(unseen_keys, hash_range)
            if len(unseen_keys) <= self._scalar_tail:
                self._place_new_edges_scalar(
                    source_hashes.tolist(),
                    destination_hashes.tolist(),
                    sums[unseen][order].tolist(),
                    unseen_keys.tolist(),
                )
            else:
                self._place_new_edges(
                    source_hashes,
                    destination_hashes,
                    sums[unseen][order],
                    unseen_keys.tolist(),
                )
        if profile is not None:
            spill_spent = profile.stage_seconds("buffer_spill") - spill_before
            profile.add("placement", perf_counter() - started - spill_spent)

    def _ingest_hash_pairs(self, source_hashes, destination_hashes, weights) -> None:
        """Ingest fallback for hash ranges too large to pack into uint64.

        Same structure as :meth:`_ingest_keys`, with 2-column row uniqueness
        and tuple edge keys.
        """
        pairs = np.stack((source_hashes, destination_hashes), axis=1)
        unique_pairs, first_index, inverse = np.unique(
            pairs, axis=0, return_index=True, return_inverse=True
        )
        sums = np.bincount(
            inverse.reshape(-1), weights=weights, minlength=len(first_index)
        )
        order = np.argsort(first_index, kind="stable")
        ordered_sources = unique_pairs[order, 0]
        ordered_destinations = unique_pairs[order, 1]
        ordered_sums = sums[order]
        key_list = [tuple(pair) for pair in unique_pairs[order].tolist()]
        edge_slot = self._edge_slot
        slots = np.fromiter(
            map(edge_slot.get, key_list, _repeat(_UNSEEN)),
            dtype=np.int64,
            count=len(key_list),
        )
        placed = slots >= 0
        if placed.any():
            self._weights[slots[placed]] += ordered_sums[placed]
        buffered = slots == _BUFFERED
        if buffered.any():
            buffer = self._sketch._buffer
            for source_hash, destination_hash, weight in zip(
                ordered_sources[buffered].tolist(),
                ordered_destinations[buffered].tolist(),
                ordered_sums[buffered].tolist(),
            ):
                buffer.add(source_hash, destination_hash, weight)
        unseen = slots == _UNSEEN
        if unseen.any():
            self._place_new_edges(
                ordered_sources[unseen],
                ordered_destinations[unseen],
                ordered_sums[unseen],
                [key for key, new in zip(key_list, unseen.tolist()) if new],
            )

    def _place_new_edges_scalar(
        self,
        source_hashes: List[int],
        destination_hashes: List[int],
        sums: List[float],
        keys: List,
    ) -> None:
        """Scalar-tail placement for small unseen batches.

        Probes candidates exactly like :meth:`insert_edge`, sharing the
        sketch's address/candidate memos (warm across batches), and stages
        rooms for one bulk array append.  Placement-identical to the
        vectorized path by construction — both walk the same candidate order
        over the same fill table.
        """
        sketch = self._sketch
        split = sketch._split
        addresses = sketch._addresses
        candidate_pairs = sketch._candidate_pairs
        rooms_per_bucket = sketch.config.rooms
        width = self._width
        fill = self._bucket_fill
        edge_slot = self._edge_slot
        buffer = sketch._buffer
        base_slot = self._size
        staged: List[Tuple[int, int, int, int, int, int, float]] = []
        for source_hash, destination_hash, weight, key in zip(
            source_hashes, destination_hashes, sums, keys
        ):
            _, source_fp = split(source_hash)
            _, destination_fp = split(destination_hash)
            source_addresses = addresses(source_hash)
            destination_addresses = addresses(destination_hash)
            for source_index, destination_index in candidate_pairs(
                source_fp, destination_fp
            ):
                row = source_addresses[source_index]
                column = destination_addresses[destination_index]
                position = row * width + column
                if fill[position] < rooms_per_bucket:
                    fill[position] += 1
                    edge_slot[key] = base_slot + len(staged)
                    staged.append(
                        (
                            row,
                            column,
                            source_fp,
                            destination_fp,
                            source_index + 1,
                            destination_index + 1,
                            weight,
                        )
                    )
                    break
            else:
                edge_slot[key] = _BUFFERED
                buffer.add(source_hash, destination_hash, weight)
        self._append_rooms(staged)

    def _place_new_edges(self, source_hashes, destination_hashes, sums, keys) -> None:
        """Place previously unseen edges, probing candidates in order.

        All hashing-derived quantities — fingerprints, address sequences,
        candidate pairs, bucket positions — are computed for the whole batch
        as array operations; the remaining loop only walks precomputed lists
        and touches ``_bucket_fill``.  A new edge cannot collide with any
        existing room (a room key determines its edge), so the probe only
        needs bucket fill counts, never room lookups.
        """
        sketch = self._sketch
        config = sketch.config
        width = self._width
        fingerprint_range = self._fingerprint_range
        count = len(keys)
        source_bases = (source_hashes // np.uint64(fingerprint_range)).astype(np.int64)
        source_fps = (source_hashes % np.uint64(fingerprint_range)).astype(np.int64)
        destination_bases = (destination_hashes // np.uint64(fingerprint_range)).astype(np.int64)
        destination_fps = (destination_hashes % np.uint64(fingerprint_range)).astype(np.int64)

        if config.square_hashing:
            sequence_length = config.sequence_length
            # One LCG run covers both endpoints: concatenate, iterate, split.
            both_addresses = address_sequences(
                np.concatenate((source_bases, destination_bases)),
                np.concatenate((source_fps, destination_fps)),
                sequence_length,
                width,
                sketch._lcg,
            )
            source_addresses = both_addresses[:count]
            destination_addresses = both_addresses[count:]
            if config.sampling:
                row_indices, column_indices = candidate_pair_arrays(
                    source_fps,
                    destination_fps,
                    config.candidate_buckets,
                    sequence_length,
                    sketch._lcg,
                )
            else:
                grid = np.arange(sequence_length * sequence_length, dtype=np.int64)
                row_indices = np.broadcast_to(grid // sequence_length, (count, len(grid)))
                column_indices = np.broadcast_to(grid % sequence_length, (count, len(grid)))
        else:
            source_addresses = (source_bases % width)[:, None]
            destination_addresses = (destination_bases % width)[:, None]
            row_indices = np.zeros((count, 1), dtype=np.int64)
            column_indices = np.zeros((count, 1), dtype=np.int64)

        rows = np.take_along_axis(source_addresses, row_indices, axis=1)
        columns = np.take_along_axis(destination_addresses, column_indices, axis=1)
        positions = (rows * width + columns).tolist()

        # The loop below decides, for every edge in first-seen order, which
        # probe wins — the only part of placement that is inherently
        # sequential (it is what resolves same-batch bucket contention).  It
        # walks precomputed position lists and records (edge, probe) winners;
        # slot numbers, room fields and buffer spills are then committed in
        # bulk.  Probe 0 almost always wins, so it is special-cased ahead of
        # the general probe walk.
        rooms_per_bucket = config.rooms
        probe_count = len(positions[0]) if count else 0
        fill = self._bucket_fill
        placed_edges: List[int] = []
        placed_probes: List[int] = []
        overflowed: List[int] = []
        placed_append = placed_edges.append
        probes_append = placed_probes.append
        for edge in range(count):
            row = positions[edge]
            position = row[0]
            if fill[position] < rooms_per_bucket:
                fill[position] = fill[position] + 1
                placed_append(edge)
                probes_append(0)
                continue
            for probe in range(1, probe_count):
                position = row[probe]
                if fill[position] < rooms_per_bucket:
                    fill[position] = fill[position] + 1
                    placed_append(edge)
                    probes_append(probe)
                    break
            else:
                overflowed.append(edge)

        edge_slot = self._edge_slot
        if placed_edges:
            base_slot = self._size
            edge_slot.update(
                zip(
                    [keys[edge] for edge in placed_edges],
                    range(base_slot, base_slot + len(placed_edges)),
                )
            )
            edge_array = np.asarray(placed_edges, dtype=np.int64)
            probe_array = np.asarray(placed_probes, dtype=np.int64)
            self._append_room_arrays(
                rows[edge_array, probe_array],
                columns[edge_array, probe_array],
                source_fps[edge_array],
                destination_fps[edge_array],
                row_indices[edge_array, probe_array] + 1,
                column_indices[edge_array, probe_array] + 1,
                sums[edge_array],
            )
        if overflowed:
            profile = active_profile()
            spill_started = perf_counter() if profile is not None else 0.0
            buffer = sketch._buffer
            edge_slot.update(zip([keys[edge] for edge in overflowed], _repeat(_BUFFERED)))
            spilled = np.asarray(overflowed, dtype=np.int64)
            for source_hash, destination_hash, weight in zip(
                source_hashes[spilled].tolist(),
                destination_hashes[spilled].tolist(),
                sums[spilled].tolist(),
            ):
                buffer.add(source_hash, destination_hash, weight)
            if profile is not None:
                profile.add("buffer_spill", perf_counter() - spill_started)

    # -- queries -----------------------------------------------------------

    def matrix_edge_weight(self, source_hash: int, destination_hash: int) -> Optional[float]:
        """Weight of the edge's matrix room, or ``None`` when not in the matrix."""
        slot = self._edge_slot.get(self._edge_key(source_hash, destination_hash))
        if slot is None or slot < 0:
            return None
        return float(self._weights[slot])

    def matrix_neighbor_hashes(self, node_hash: int, forward: bool) -> Set[int]:
        """Vectorized neighbor scan over the columnar room arrays."""
        n = self._size
        if n == 0:
            return set()
        sketch = self._sketch
        _, fingerprint = sketch._split(node_hash)
        addresses = sketch._addresses(node_hash)
        if forward:
            own_positions = self._rows[:n]
            own_fp = self._src_fp[:n]
            own_idx = self._src_idx[:n]
            other_positions = self._cols[:n]
            other_fp = self._dst_fp[:n]
            other_idx = self._dst_idx[:n]
        else:
            own_positions = self._cols[:n]
            own_fp = self._dst_fp[:n]
            own_idx = self._dst_idx[:n]
            other_positions = self._rows[:n]
            other_fp = self._src_fp[:n]
            other_idx = self._src_idx[:n]
        mask = np.zeros(n, dtype=bool)
        for position, address in enumerate(addresses):
            mask |= (own_positions == address) & (own_idx == position + 1)
        mask &= own_fp == fingerprint
        if not mask.any():
            return set()
        matched_fp = other_fp[mask]
        if sketch.config.square_hashing:
            offsets = lcg_values_at(matched_fp, other_idx[mask], sketch._lcg)
            bases = (other_positions[mask] - offsets) % self._width
        else:
            bases = other_positions[mask]
        return set((bases * self._fingerprint_range + matched_fp).tolist())

    def reconstruct(self) -> List[Tuple[int, int, float]]:
        """Vectorized matrix-edge recovery, row-major like a full scan."""
        n = self._size
        if n == 0:
            return []
        sketch = self._sketch
        order = np.lexsort((self._cols[:n], self._rows[:n]))
        rows = self._rows[order]
        cols = self._cols[order]
        src_fp = self._src_fp[order]
        dst_fp = self._dst_fp[order]
        if sketch.config.square_hashing:
            source_bases = (rows - lcg_values_at(src_fp, self._src_idx[order], sketch._lcg)) % self._width
            destination_bases = (cols - lcg_values_at(dst_fp, self._dst_idx[order], sketch._lcg)) % self._width
        else:
            source_bases = rows
            destination_bases = cols
        fingerprint_range = self._fingerprint_range
        return list(
            zip(
                (source_bases * fingerprint_range + src_fp).tolist(),
                (destination_bases * fingerprint_range + dst_fp).tolist(),
                self._weights[order].tolist(),
            )
        )


class _NativeEdgeSlotMap:
    """Dict facade over the kernel's persistent C edge->slot table.

    Exposes exactly the mapping surface the inherited scalar paths use —
    ``get``, item assignment, ``update``, ``len``, containment — so
    ``insert_edge``, ``register_room`` and ``matrix_edge_weight`` work
    unchanged against kernel-owned state.  The C side stores ``-2`` for
    missing keys; this facade translates that back to the caller's default.
    """

    __slots__ = ("_ctx", "_map_get", "_map_put", "_map_len")

    def __init__(self, lib, ctx) -> None:
        self._ctx = ctx
        self._map_get = lib.gss_map_get
        self._map_put = lib.gss_map_put
        self._map_len = lib.gss_map_len

    def get(self, key, default=None):
        value = self._map_get(self._ctx, key)
        return default if value == _UNSEEN else value

    def __setitem__(self, key, value) -> None:
        if self._map_put(self._ctx, key, value) != 0:
            raise MemoryError("native edge-slot table allocation failed")

    def __contains__(self, key) -> bool:
        return self._map_get(self._ctx, key) != _UNSEEN

    def __len__(self) -> int:
        return self._map_len(self._ctx)

    def update(self, pairs) -> None:
        for key, value in pairs:
            self[key] = value


class NativeMatrixBackend(NumpyMatrixBackend):
    """Columnar storage with the batch pipeline compiled to a C kernel.

    Storage is the numpy backend's struct-of-arrays layout — every query,
    scan, merge and serialization path is inherited verbatim.  What changes
    is batched ingestion: aggregation, edge classification and the
    first-seen-order bucket-probe/contention loop all run inside one
    ``gss_ingest_batch`` call (:mod:`repro.core._native`), so a batch crosses
    the Python/kernel boundary exactly once.  Only buffer traffic comes back
    out, as (key, aggregated weight) arrays, because the left-over buffer is
    an exact structure with Python dict semantics.

    The kernel owns exactly one piece of state: the persistent edge->slot
    map (a C open-addressing table, wrapped by :class:`_NativeEdgeSlotMap`
    for the inherited scalar paths).  Room arrays and the bucket-fill table
    stay Python-owned numpy arrays that the kernel writes through pointers —
    ``_bucket_fill`` becomes a uint8 array instead of a list so both sides
    can touch it.

    Construction compiles/binds the kernel, so building a store *is* the
    warm-up; every benchmark harness in this repo constructs stores outside
    timed regions.  ``make_backend`` guards the envelope: packed uint64 keys
    (``hash_range <= 2^32``) and ``rooms < 255`` (uint8 fill), degrading to
    the numpy backend otherwise.
    """

    name = "native"

    def __init__(self, sketch) -> None:
        super().__init__(sketch)
        if not self._packed_keys:  # pragma: no cover - guarded by make_backend
            raise RuntimeError("NativeMatrixBackend requires packed uint64 keys")
        from repro.core._native import load_native

        lib = load_native()
        ctx = lib.gss_new()
        if not ctx:  # pragma: no cover - allocation failure
            raise MemoryError("native kernel context allocation failed")
        self._lib = lib
        self._ctx = ctx
        self._ctx_finalizer = weakref.finalize(self, lib.gss_free, ctx)
        self._edge_slot = _NativeEdgeSlotMap(lib, ctx)
        self._bucket_fill = np.zeros(self._width * self._width, dtype=np.uint8)
        lcg = sketch._lcg
        config = sketch.config
        self._kernel_config = (
            self._hash_range,
            self._fingerprint_range,
            self._width,
            config.rooms,
            config.sequence_length,
            config.candidate_buckets,
            1 if config.square_hashing else 0,
            1 if config.sampling else 0,
            lcg.multiplier,
            lcg.increment,
            lcg.modulus,
        )
        # Seeded FNV-1a initial state for the kernel's node hashing — the
        # same value hash_functions.hash_bytes starts from, so the kernel's
        # token hashes are bit-identical to hash_string(node, seed).
        self._fnv_state0 = _FNV_OFFSET ^ _splitmix64(config.seed)
        # Kernel out-arrays, reused across batches and grown to the largest
        # batch seen; their contents are consumed before the call returns.
        self._scratch_len = 0
        self._spill_ctr = ctypes.c_int64(0)
        self._rebuf_ctr = ctypes.c_int64(0)
        self._new_ctr = ctypes.c_int64(0)

    def _ensure_batch_scratch(self, count: int) -> None:
        if count <= self._scratch_len:
            return
        self._sc_spill_keys = np.empty(count, dtype=np.uint64)
        self._sc_spill_sums = np.empty(count, dtype=np.float64)
        self._sc_rebuf_keys = np.empty(count, dtype=np.uint64)
        self._sc_rebuf_sums = np.empty(count, dtype=np.float64)
        self._sc_new_offs = np.empty(2 * count, dtype=np.int64)
        self._sc_new_lens = np.empty(2 * count, dtype=np.int64)
        self._sc_new_hashes = np.empty(2 * count, dtype=np.uint64)
        self._scratch_len = count

    def update_many(self, items: Iterable[Tuple[Hashable, Hashable, float]]) -> int:
        """Whole-batch text ingestion: node IDs to placed rooms in one call.

        For all-string batches the node identifiers cross the boundary as a
        single NUL-joined UTF-8 blob (interleaved source/destination stream
        order).  The kernel hashes each token with the same seeded
        FNV-1a/splitmix64 mix as :func:`repro.hashing.hash_functions.hash_string`,
        memoizes it in a persistent C node table, packs the edge keys and
        runs the aggregate/classify/place pipeline — hashing included, the
        batch crosses the Python/kernel boundary exactly once.  Genuinely
        new nodes come back as blob slices and are mirrored into the reverse
        node index (first-seen interleaved order, like the scalar paths) and
        the Python-side node memo; the hash-once counter is credited with
        exactly the keys the kernel mixed.  Batches containing non-string
        IDs — or strings with embedded NULs, which would make the join
        ambiguous — fall back to the inherited per-key path, which is itself
        kernel-backed.
        """
        triples = items if isinstance(items, list) else list(items)
        if not triples:
            return 0
        count = len(triples)
        profile = active_profile()
        if profile is not None:
            started = perf_counter()
        sources, destinations, weights = zip(*triples)
        try:
            joined = "\x00".join(chain.from_iterable(zip(sources, destinations)))
        except TypeError:
            return super().update_many(triples)
        blob = joined.encode("utf-8")
        if blob.count(0) != 2 * count - 1:
            return super().update_many(triples)
        weight_array = np.ascontiguousarray(weights, dtype=np.float64)
        self._ensure_capacity(count)
        self._ensure_batch_scratch(count)
        spill_count = self._spill_ctr
        rebuf_count = self._rebuf_ctr
        new_count = self._new_ctr
        if profile is not None:
            profile.add("hashing", perf_counter() - started)
            started = perf_counter()
        new_size = self._lib.gss_ingest_text_batch(
            self._ctx,
            blob,
            len(blob),
            weight_array.ctypes.data,
            count,
            self._fnv_state0,
            *self._kernel_config,
            self._size,
            self._rows.ctypes.data,
            self._cols.ctypes.data,
            self._src_fp.ctypes.data,
            self._dst_fp.ctypes.data,
            self._src_idx.ctypes.data,
            self._dst_idx.ctypes.data,
            self._weights.ctypes.data,
            self._bucket_fill.ctypes.data,
            self._sc_spill_keys.ctypes.data,
            self._sc_spill_sums.ctypes.data,
            ctypes.addressof(spill_count),
            self._sc_rebuf_keys.ctypes.data,
            self._sc_rebuf_sums.ctypes.data,
            ctypes.addressof(rebuf_count),
            self._sc_new_offs.ctypes.data,
            self._sc_new_lens.ctypes.data,
            self._sc_new_hashes.ctypes.data,
            ctypes.addressof(new_count),
        )
        if new_size == -2:  # pragma: no cover - screened by the NUL check
            return super().update_many(triples)
        if new_size < 0:  # pragma: no cover - allocation failure
            raise MemoryError("native kernel batch allocation failed")
        self.matrix_edge_count += new_size - self._size
        self._size = new_size
        if profile is not None:
            profile.add("placement", perf_counter() - started)
            started = perf_counter()
        self._apply_buffer_arrays(
            self._sc_spill_keys, self._sc_spill_sums, spill_count.value,
            self._sc_rebuf_keys, self._sc_rebuf_sums, rebuf_count.value,
        )
        if profile is not None:
            profile.add("buffer_spill", perf_counter() - started)
            started = perf_counter()
        fresh = new_count.value
        if fresh:
            pairs = [
                (blob[offset : offset + length].decode("utf-8"), node_hash)
                for offset, length, node_hash in zip(
                    self._sc_new_offs[:fresh].tolist(),
                    self._sc_new_lens[:fresh].tolist(),
                    self._sc_new_hashes[:fresh].tolist(),
                )
            ]
            node_index = self._sketch._node_index
            if node_index is not None:
                node_index.record_new_many(pairs)
            cache = self._node_hash_cache
            if len(cache) < self._NODE_CACHE_LIMIT:
                cache.update(pairs)
            _count_hashes(fresh)
        if profile is not None:
            profile.add("hashing", perf_counter() - started)
            profile.count_batch()
        return count

    def _ingest_keys(self, keys, weights) -> None:
        """One kernel call per batch: aggregate, classify, place, spill."""
        count = len(keys)
        if count == 0:
            return
        profile = active_profile()
        if profile is not None:
            started = perf_counter()
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        weights = np.ascontiguousarray(weights, dtype=np.float64)
        # Worst case every key is new and placeable: reserve room slots up
        # front so the kernel can append without reallocating.
        self._ensure_capacity(count)
        self._ensure_batch_scratch(count)
        spill_count = self._spill_ctr
        rebuf_count = self._rebuf_ctr
        new_size = self._lib.gss_ingest_batch(
            self._ctx,
            keys.ctypes.data,
            weights.ctypes.data,
            count,
            *self._kernel_config,
            self._size,
            self._rows.ctypes.data,
            self._cols.ctypes.data,
            self._src_fp.ctypes.data,
            self._dst_fp.ctypes.data,
            self._src_idx.ctypes.data,
            self._dst_idx.ctypes.data,
            self._weights.ctypes.data,
            self._bucket_fill.ctypes.data,
            self._sc_spill_keys.ctypes.data,
            self._sc_spill_sums.ctypes.data,
            ctypes.addressof(spill_count),
            self._sc_rebuf_keys.ctypes.data,
            self._sc_rebuf_sums.ctypes.data,
            ctypes.addressof(rebuf_count),
        )
        if new_size < 0:  # pragma: no cover - allocation failure
            raise MemoryError("native kernel batch allocation failed")
        self.matrix_edge_count += new_size - self._size
        self._size = new_size
        if profile is not None:
            profile.add("placement", perf_counter() - started)
            started = perf_counter()
        self._apply_buffer_arrays(
            self._sc_spill_keys, self._sc_spill_sums, spill_count.value,
            self._sc_rebuf_keys, self._sc_rebuf_sums, rebuf_count.value,
        )
        if profile is not None:
            profile.add("buffer_spill", perf_counter() - started)

    def _apply_buffer_arrays(
        self, spill_keys, spill_sums, spills, rebuf_keys, rebuf_sums, rebufs
    ) -> None:
        """Apply the kernel's buffer traffic to the left-over buffer.

        Exactly as the numpy backend orders it: re-buffered edges first
        (their entries already exist, so add order is unobservable), then
        genuine spills in first-seen order (this order creates buffer
        entries and is observable).
        """
        buffer = self._sketch._buffer
        hash_range = np.uint64(self._hash_range)
        if rebufs:
            source_hashes, destination_hashes = np.divmod(
                rebuf_keys[:rebufs], hash_range
            )
            for source_hash, destination_hash, weight in zip(
                source_hashes.tolist(),
                destination_hashes.tolist(),
                rebuf_sums[:rebufs].tolist(),
            ):
                buffer.add(source_hash, destination_hash, weight)
        if spills:
            source_hashes, destination_hashes = np.divmod(
                spill_keys[:spills], hash_range
            )
            for source_hash, destination_hash, weight in zip(
                source_hashes.tolist(),
                destination_hashes.tolist(),
                spill_sums[:spills].tolist(),
            ):
                buffer.add(source_hash, destination_hash, weight)
