"""Use case 1 (paper Section I): network-traffic monitoring.

The network traffic between IP addresses forms a fast-changing graph stream.
This example summarizes a flow-trace analog with GSS and answers the questions
a security team would ask:

* which hosts send the most traffic (heavy talkers, via node queries),
* who exactly did a suspicious host talk to (successor queries),
* how much traffic flowed on a specific pair (edge queries),
* and whether a compromised host can reach a sensitive one (reachability).

Run with::

    python examples/network_traffic.py
"""

from __future__ import annotations

from repro import GSS, GSSConfig, AdjacencyListGraph
from repro.datasets import load_dataset
from repro.queries.node_query import node_out_weight
from repro.queries.primitives import consume_stream
from repro.queries.reachability import is_reachable


def top_talkers(sketch: GSS, nodes, count: int = 5):
    """Rank nodes by their estimated outgoing traffic volume."""
    estimates = {node: node_out_weight(sketch, node) for node in nodes}
    return sorted(estimates.items(), key=lambda item: item[1], reverse=True)[:count]


def main() -> None:
    stream = load_dataset("caida-networkflow", scale=0.15)
    statistics = stream.statistics()
    print(f"flow trace: {statistics.item_count} flow records, "
          f"{statistics.node_count} hosts, {statistics.distinct_edges} host pairs")

    config = GSSConfig.for_edge_count(
        statistics.distinct_edges, fingerprint_bits=16, sequence_length=8, candidate_buckets=8
    )
    sketch = GSS(config)
    sketch.ingest(stream)
    exact = consume_stream(AdjacencyListGraph(), stream)
    print(f"GSS memory: {sketch.memory_bytes() / 1024:.1f} KiB "
          f"(vs {statistics.item_count * 24 / 1024:.1f} KiB to log every record)\n")

    # -- heavy talkers ------------------------------------------------------
    nodes = stream.nodes()
    print("top talkers (estimated outgoing volume vs exact):")
    for host, estimate in top_talkers(sketch, nodes):
        print(f"  {host:>8}: GSS {estimate:10.0f}   exact {exact.node_out_weight(host):10.0f}")

    # -- drill into one suspicious host ---------------------------------------
    suspicious = top_talkers(sketch, nodes, count=1)[0][0]
    contacts = sketch.successor_query(suspicious)
    true_contacts = exact.successor_query(suspicious)
    print(f"\nsuspicious host {suspicious!r} contacted {len(contacts)} hosts "
          f"(exact: {len(true_contacts)}; every true contact is reported)")
    example_contact = next(iter(true_contacts))
    print(f"  traffic {suspicious} -> {example_contact}: "
          f"GSS {sketch.edge_query(suspicious, example_contact):.0f}, "
          f"exact {exact.edge_query(suspicious, example_contact):.0f}")

    # -- lateral-movement check ------------------------------------------------
    target = nodes[-1]
    reachable = is_reachable(sketch, suspicious, target, max_nodes=2000)
    reachable_truth = is_reachable(exact, suspicious, target)
    print(f"\ncan {suspicious!r} reach {target!r}? GSS says {reachable}, exact says {reachable_truth}")
    print("(GSS never reports 'unreachable' for a genuinely reachable pair)")


if __name__ == "__main__":
    main()
