"""Unit tests for the left-over buffer and the reverse node index."""

from repro.core.buffer import LeftoverBuffer
from repro.core.reverse_index import NodeIndex


class TestLeftoverBuffer:
    def test_empty(self):
        buffer = LeftoverBuffer()
        assert len(buffer) == 0
        assert not buffer
        assert buffer.get(1, 2) is None
        assert not buffer.contains(1, 2)

    def test_add_and_query(self):
        buffer = LeftoverBuffer()
        buffer.add(10, 20, 2.0)
        assert buffer.contains(10, 20)
        assert buffer.weight(10, 20) == 2.0
        assert len(buffer) == 1

    def test_weights_accumulate(self):
        buffer = LeftoverBuffer()
        buffer.add(10, 20, 2.0)
        buffer.add(10, 20, 3.0)
        assert buffer.weight(10, 20) == 5.0
        assert len(buffer) == 1  # still one distinct edge

    def test_successors_and_precursors(self):
        buffer = LeftoverBuffer()
        buffer.add(1, 2, 1.0)
        buffer.add(1, 3, 1.0)
        buffer.add(4, 2, 1.0)
        assert set(buffer.successors_of(1)) == {2, 3}
        assert set(buffer.precursors_of(2)) == {1, 4}
        assert buffer.successors_of(99) == []

    def test_edges_iteration(self):
        buffer = LeftoverBuffer()
        buffer.add(1, 2, 1.0)
        buffer.add(3, 4, 2.0)
        assert sorted(buffer.edges()) == [(1, 2, 1.0), (3, 4, 2.0)]

    def test_memory_model(self):
        buffer = LeftoverBuffer()
        buffer.add(1, 2, 1.0)
        buffer.add(3, 4, 2.0)
        assert buffer.memory_bytes() == 32


class TestNodeIndex:
    def test_record_and_lookup(self):
        index = NodeIndex()
        index.record("a", 42)
        assert "a" in index
        assert index.hash_of("a") == 42
        assert index.originals(42) == {"a"}
        assert len(index) == 1

    def test_duplicate_record_is_ignored(self):
        index = NodeIndex()
        index.record("a", 42)
        index.record("a", 42)
        assert len(index) == 1

    def test_collisions_tracked(self):
        index = NodeIndex()
        index.record("a", 7)
        index.record("b", 7)
        index.record("c", 8)
        assert index.originals(7) == {"a", "b"}
        assert index.collision_count() == 2

    def test_expand(self):
        index = NodeIndex()
        index.record("a", 1)
        index.record("b", 2)
        assert index.expand([1, 2, 3]) == {"a", "b"}

    def test_known_nodes_and_memory(self):
        index = NodeIndex()
        index.record("a", 1)
        index.record("b", 2)
        assert set(index.known_nodes()) == {"a", "b"}
        assert index.memory_bytes() == 32
