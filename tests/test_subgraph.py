"""Unit tests for the labeled subgraph matcher and the exact-matcher baseline."""

import random

import pytest

from repro.baselines.exact_matcher import WindowedExactMatcher
from repro.core.config import GSSConfig
from repro.core.gss import GSS
from repro.experiments.subgraph import random_walk_pattern
from repro.queries.subgraph import (
    LabeledDiGraph,
    Pattern,
    PatternEdge,
    SubgraphMatcher,
    count_subgraph_matches,
)
from repro.streaming.edge import StreamEdge
from repro.streaming.stream import GraphStream


@pytest.fixture()
def labeled_graph() -> LabeledDiGraph:
    graph = LabeledDiGraph()
    graph.add_edge("a", "b", "x")
    graph.add_edge("b", "c", "y")
    graph.add_edge("a", "c", "x")
    graph.add_edge("c", "d", "z")
    return graph


class TestLabeledDiGraph:
    def test_edges_and_nodes(self, labeled_graph):
        assert labeled_graph.edge_count() == 4
        assert set(labeled_graph.nodes()) == {"a", "b", "c", "d"}

    def test_has_edge_with_and_without_label(self, labeled_graph):
        assert labeled_graph.has_edge("a", "b")
        assert labeled_graph.has_edge("a", "b", "x")
        assert not labeled_graph.has_edge("a", "b", "y")
        assert not labeled_graph.has_edge("b", "a")

    def test_successors_predecessors(self, labeled_graph):
        assert labeled_graph.successors("a") == {"b": "x", "c": "x"}
        assert labeled_graph.predecessors("c") == {"b": "y", "a": "x"}

    def test_from_stream(self, paper_stream):
        graph = LabeledDiGraph.from_stream(paper_stream)
        assert graph.edge_count() == 11
        assert graph.has_edge("a", "c")

    def test_from_store_uses_primitives(self, paper_stream):
        sketch = GSS(GSSConfig(matrix_width=8, sequence_length=4, candidate_buckets=4))
        sketch.ingest(paper_stream)
        graph = LabeledDiGraph.from_store(sketch, paper_stream.nodes())
        for source, destination in paper_stream.distinct_edge_keys():
            assert graph.has_edge(source, destination)


class TestPattern:
    def test_variables_order(self):
        pattern = Pattern.from_tuples([("u", "v", ""), ("v", "w", "")])
        assert pattern.variables == ["u", "v", "w"]
        assert len(pattern) == 2


class TestSubgraphMatcher:
    def test_single_edge_pattern(self, labeled_graph):
        pattern = Pattern([PatternEdge("u", "v", "x")])
        matcher = SubgraphMatcher(labeled_graph)
        matches = matcher.find_all(pattern)
        found = {(m["u"], m["v"]) for m in matches}
        assert found == {("a", "b"), ("a", "c")}

    def test_path_pattern(self, labeled_graph):
        pattern = Pattern.from_tuples([("u", "v", "x"), ("v", "w", "y")])
        match = SubgraphMatcher(labeled_graph).find_one(pattern)
        assert match == {"u": "a", "v": "b", "w": "c"}

    def test_unlabeled_pattern_matches_any_label(self, labeled_graph):
        pattern = Pattern.from_tuples([("u", "v", ""), ("v", "w", "")])
        assert SubgraphMatcher(labeled_graph).count(pattern) >= 2

    def test_absent_pattern(self, labeled_graph):
        pattern = Pattern.from_tuples([("u", "v", "missing-label")])
        assert SubgraphMatcher(labeled_graph).find_one(pattern) is None

    def test_injectivity(self):
        graph = LabeledDiGraph()
        graph.add_edge("a", "b")
        pattern = Pattern.from_tuples([("u", "v", ""), ("v", "w", "")])
        # needs two edges, graph has one: no match even though u->v matches.
        assert SubgraphMatcher(graph).find_one(pattern) is None

    def test_triangle_pattern(self):
        graph = LabeledDiGraph()
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        graph.add_edge("c", "a")
        pattern = Pattern.from_tuples([("x", "y", ""), ("y", "z", ""), ("z", "x", "")])
        matches = SubgraphMatcher(graph).find_all(pattern)
        assert len(matches) == 3  # three rotations of the same triangle

    def test_count_helper_and_limit(self, labeled_graph):
        pattern = Pattern([PatternEdge("u", "v", "")])
        assert count_subgraph_matches(labeled_graph, pattern) == 4
        assert count_subgraph_matches(labeled_graph, pattern, limit=2) == 2

    def test_empty_pattern_has_no_matches(self, labeled_graph):
        assert SubgraphMatcher(labeled_graph).find_all(Pattern([])) == []


class TestWindowedExactMatcher:
    def test_finds_existing_pattern(self):
        window = GraphStream(
            [
                StreamEdge("a", "b", label="t"),
                StreamEdge("b", "c", label="t"),
                StreamEdge("c", "d", label="u"),
            ]
        )
        matcher = WindowedExactMatcher(window)
        pattern = Pattern.from_tuples([("x", "y", "t"), ("y", "z", "t")])
        assert matcher.find_match(pattern) == {"x": "a", "y": "b", "z": "c"}
        assert matcher.count_matches(pattern) == 1
        assert matcher.contains_edges([("a", "b"), ("b", "c")])
        assert not matcher.contains_edges([("d", "a")])
        assert matcher.update_count == 3


class TestRandomWalkPattern:
    def test_extracted_pattern_matches_its_own_graph(self, paper_stream):
        graph = LabeledDiGraph.from_stream(paper_stream)
        rng = random.Random(5)
        extracted = random_walk_pattern(graph, 3, rng)
        assert extracted is not None
        pattern, instance = extracted
        assert len(pattern) == 3
        assert SubgraphMatcher(graph).find_one(pattern) is not None
        # the recorded instance really is an embedding
        for edge in pattern.edges:
            assert graph.has_edge(instance[edge.source], instance[edge.destination])

    def test_returns_none_on_empty_graph(self):
        assert random_walk_pattern(LabeledDiGraph(), 3, random.Random(1)) is None
