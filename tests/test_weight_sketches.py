"""Unit tests for the edge-weight-only baselines: CM, CU and gSketch."""

import pytest

from repro.baselines.cm_sketch import CountMinSketch
from repro.baselines.cu_sketch import CountMinCUSketch
from repro.baselines.gsketch import GSketch
from repro.queries.primitives import UnsupportedQueryError, consume_stream


@pytest.fixture(params=[CountMinSketch, CountMinCUSketch])
def cm_class(request):
    return request.param


class TestCountMinFamily:
    def test_rejects_bad_parameters(self, cm_class):
        with pytest.raises(ValueError):
            cm_class(width=0)
        with pytest.raises(ValueError):
            cm_class(width=8, depth=0)

    def test_never_underestimates(self, cm_class, paper_stream):
        sketch = consume_stream(cm_class(width=64, depth=4), paper_stream)
        for key, weight in paper_stream.aggregate_weights().items():
            assert sketch.edge_query(*key) >= weight

    def test_exact_when_wide_enough(self, cm_class, paper_stream):
        sketch = consume_stream(cm_class(width=4096, depth=4), paper_stream)
        truth = paper_stream.aggregate_weights()
        exact_hits = sum(1 for key, weight in truth.items() if sketch.edge_query(*key) == weight)
        assert exact_hits >= len(truth) - 1

    def test_memory_model(self, cm_class):
        assert cm_class(width=100, depth=4).memory_bytes() == 1600

    def test_update_count(self, cm_class, paper_stream):
        sketch = consume_stream(cm_class(width=16, depth=2), paper_stream)
        assert sketch.update_count == len(paper_stream)

    def test_has_no_topology_queries(self, cm_class):
        sketch = cm_class(width=16)
        with pytest.raises(UnsupportedQueryError):
            sketch.successor_query("a")
        with pytest.raises(UnsupportedQueryError):
            sketch.precursor_query("a")
        assert not sketch.capabilities().topology_queries


class TestConservativeUpdate:
    def test_cu_estimates_at_most_cm(self, small_stream):
        cm = consume_stream(CountMinSketch(width=64, depth=4, seed=5), small_stream)
        cu = consume_stream(CountMinCUSketch(width=64, depth=4, seed=5), small_stream)
        truth = small_stream.aggregate_weights()
        for key in list(truth)[:300]:
            assert cu.edge_query(*key) <= cm.edge_query(*key) + 1e-9

    def test_cu_negative_weight_falls_back(self):
        cu = CountMinCUSketch(width=32, depth=2)
        cu.update("a", "b", 5.0)
        cu.update("a", "b", -2.0)
        assert cu.edge_query("a", "b") >= 3.0


class TestGSketch:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            GSketch(total_width=4, partitions=0)
        with pytest.raises(ValueError):
            GSketch(total_width=2, partitions=8)

    def test_never_underestimates(self, paper_stream):
        sketch = consume_stream(GSketch(total_width=256, partitions=4), paper_stream)
        for key, weight in paper_stream.aggregate_weights().items():
            assert sketch.edge_query(*key) >= weight

    def test_partitioning_routes_by_source(self):
        sketch = GSketch(total_width=64, partitions=8)
        assert sketch._partition_of("a") == sketch._partition_of("a")

    def test_memory_is_sum_of_partitions(self):
        sketch = GSketch(total_width=64, partitions=8, depth=2)
        assert sketch.memory_bytes() == 8 * (64 // 8) * 2 * 4

    def test_update_count(self, paper_stream):
        sketch = consume_stream(GSketch(total_width=64, partitions=4), paper_stream)
        assert sketch.update_count == len(paper_stream)
