"""Columnar hashed edge batches — the single ingest currency of the pipeline.

The hot path of every summary is dominated by node hashing, yet the layered
deployment used to hash each edge up to three times: once for shard routing
(:class:`~repro.core.partitioned.PartitionedGSS`,
:class:`~repro.cluster.ShardedSummary`), again inside each shard's
``update_many``, and again for memo upkeep.  :class:`HashedBatch` fixes that
by hashing **once at the edge of the system** and carrying the results as
columns the rest of the pipeline consumes directly:

* ``sources`` / ``destinations`` — the original node keys (kept because the
  leftover buffer and the reverse :class:`~repro.core.reverse_index.NodeIndex`
  need them, and because they are what travels to remote shards);
* ``source_hashes`` / ``destination_hashes`` — the sketch node hashes
  ``H(v) = hash_key(v, seed) % hash_range`` under a :class:`HashSpec`;
* ``route_hashes`` — the full 64-bit routing hash ``hash_key(source,
  routing_seed)`` (consumers reduce it modulo their shard count), present
  only when the spec carries a ``routing_seed``;
* ``weights`` and (optionally) ``timestamps``.

With NumPy available the columns are uint64/float64 arrays produced by the
vectorized hashing pipeline and routing becomes one gather plus a stable
``argsort`` group-split; without it the same batch API is backed by plain
Python lists and the scalar hash loop — consumers never need to know which.
A batch built with ``spec=None`` performs *no* hashing and simply normalizes
the items (the fallback container for summaries that predate the hashed
ingest protocol, e.g. windowed sketches routing by timestamp).

Distinct keys are hashed exactly once per batch (``dict.fromkeys``
deduplication) and callers may thread a long-lived ``memo`` dict through
successive batches to skip re-hashing keys seen in earlier chunks; the
instrumentation hook :func:`repro.hashing.count_key_hashes` proves the
invariant end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain
from typing import Hashable, Iterable, List, Optional, Sequence, Tuple, Union

from repro.hashing.hash_functions import hash_key
from repro.hashing.vectorized import NUMPY_AVAILABLE, load_numpy
from repro.obs.trace import active as _obs_active, span as _obs_span

__all__ = ["HashSpec", "HashedBatch", "MEMO_LIMIT"]

#: Obs counters proving the hash-once invariant live: every distinct key in
#: a batch either hits the cross-batch memo or is hashed exactly once.
_MEMO_HITS = "repro_hash_memo_hits_total"
_MEMO_MISSES = "repro_hash_memo_misses_total"
_MEMO_HELP = "Distinct batch keys resolved from (hits) or added to (misses) the cross-batch hash memo."

#: Hard cap on entries held in a caller-owned hash memo.  Beyond it, new keys
#: are still hashed exactly once per batch (a per-batch overlay dict) but are
#: no longer remembered across batches, bounding client-side memory on
#: adversarial streams with unbounded key cardinality.
MEMO_LIMIT = 1 << 20

#: Batches (or missing-key sets) below this size take the scalar loop even
#: when NumPy is available: the vectorized path's fixed per-call costs
#: dominate tiny inputs.  Both paths are bit-identical, so this is purely a
#: constant-factor knob.
_VECTOR_MIN = 16


@dataclass(frozen=True)
class HashSpec:
    """The hash function family a :class:`HashedBatch` was built under.

    ``seed`` and ``hash_range`` pin the sketch node hash ``H(v) =
    hash_key(v, seed) % hash_range`` (Definition 5's ``M``); ``routing_seed``
    optionally requests the *independent* full-width routing hash used by the
    sharded deployments.  Consumers must verify a batch's spec matches their
    own before ingesting its hash columns — :meth:`matches` ignores the
    routing seed because sketch placement does not depend on it.
    """

    seed: int
    hash_range: int
    routing_seed: Optional[int] = None

    def with_routing(self, routing_seed: Optional[int]) -> "HashSpec":
        """This spec with a different routing seed (sketch hash unchanged)."""
        return HashSpec(self.seed, self.hash_range, routing_seed)

    def matches(self, other: "HashSpec") -> bool:
        """True when both specs produce identical *sketch* node hashes."""
        return self.seed == other.seed and self.hash_range == other.hash_range


def _hash_lookup(
    keys: Iterable[Hashable],
    seed: int,
    value_range: Optional[int],
    memo: Optional[dict],
) -> dict:
    """Return a mapping covering ``keys``, hashing each unseen key once.

    ``value_range`` of ``None`` yields the full 64-bit hash (routing);
    otherwise values are reduced modulo it (sketch node hashes).  ``memo``
    is a caller-owned cross-batch cache, updated in place while it stays
    under :data:`MEMO_LIMIT`.
    """
    distinct = dict.fromkeys(keys)
    if memo is None:
        memo = {}
    missing = [key for key in distinct if key not in memo]
    registry = _obs_active()
    if registry is not None:
        hits = len(distinct) - len(missing)
        if hits:
            registry.counter(_MEMO_HITS, _MEMO_HELP).inc(hits)
        if missing:
            registry.counter(_MEMO_MISSES, _MEMO_HELP).inc(len(missing))
    if not missing:
        return memo
    if NUMPY_AVAILABLE and len(missing) >= _VECTOR_MIN:
        from repro.hashing.vectorized import hash_keys_array

        np = load_numpy()
        hashed_values = hash_keys_array(missing, seed)
        if value_range is not None:
            hashed_values = hashed_values % np.uint64(value_range)
        hashed = hashed_values.tolist()
    elif value_range is None:
        # repro: allow(hash-once): this IS the hash-once edge — the memo
        # miss path computes each distinct key's hash exactly once here.
        hashed = [hash_key(key, seed) for key in missing]
    else:
        # repro: allow(hash-once): same hash-once edge, range-reduced.
        hashed = [hash_key(key, seed) % value_range for key in missing]
    if len(memo) + len(missing) <= MEMO_LIMIT:
        memo.update(zip(missing, hashed))
        return memo
    overlay = {key: memo[key] for key in distinct if key in memo}
    overlay.update(zip(missing, hashed))
    return overlay


class HashedBatch:
    """One chunk of stream items with node hashes computed exactly once.

    Build through :meth:`from_items` (normalization + hashing) or
    :meth:`from_columns` (transport decode).  Column types are an internal
    detail — NumPy arrays on the vectorized path, plain lists otherwise; use
    the ``*_list`` accessors when Python ints/floats are required (dict keys,
    JSON serialization).
    """

    __slots__ = (
        "spec",
        "sources",
        "destinations",
        "weights",
        "timestamps",
        "source_hashes",
        "destination_hashes",
        "route_hashes",
        "_raw_items",
        "_source_hash_ints",
        "_destination_hash_ints",
    )

    def __init__(
        self,
        spec: Optional[HashSpec],
        *,
        sources: Optional[Sequence] = None,
        destinations: Optional[Sequence] = None,
        weights=None,
        timestamps: Optional[Sequence] = None,
        source_hashes=None,
        destination_hashes=None,
        route_hashes=None,
        raw_items: Optional[List] = None,
    ) -> None:
        self.spec = spec
        self.sources = sources
        self.destinations = destinations
        self.weights = weights
        self.timestamps = timestamps
        self.source_hashes = source_hashes
        self.destination_hashes = destination_hashes
        self.route_hashes = route_hashes
        self._raw_items = raw_items
        self._source_hash_ints = None
        self._destination_hash_ints = None

    # -- construction --------------------------------------------------------

    @classmethod
    def from_items(
        cls,
        items: Iterable,
        spec: Optional[HashSpec] = None,
        *,
        node_memo: Optional[dict] = None,
        route_memo: Optional[dict] = None,
        keep_timestamps: bool = False,
    ) -> "HashedBatch":
        """Normalize (and, with a spec, hash) one chunk of stream items.

        ``items`` may mix :class:`~repro.streaming.edge.StreamEdge`-like
        objects (anything with ``source``/``destination``/``weight``
        attributes) and bare tuples.  Without a spec the batch only
        normalizes — edge-like items become triples (or 4-tuples with the
        timestamp when ``keep_timestamps``), bare tuples pass through
        untouched — and :meth:`items` returns them for non-hashed consumers.
        With a spec, every distinct key is hashed exactly once (``node_memo``
        / ``route_memo`` extend the dedup across batches).
        """
        if spec is None:
            raw: List = []
            for item in items:
                if hasattr(item, "source"):
                    if keep_timestamps:
                        raw.append(
                            (
                                item.source,
                                item.destination,
                                item.weight,
                                getattr(item, "timestamp", None),
                            )
                        )
                    else:
                        raw.append((item.source, item.destination, item.weight))
                else:
                    raw.append(item)
            return cls(None, raw_items=raw)

        sources: List = []
        destinations: List = []
        weights: List = []
        timestamps: Optional[List] = [] if keep_timestamps else None
        for item in items:
            if hasattr(item, "source"):
                sources.append(item.source)
                destinations.append(item.destination)
                weights.append(item.weight)
                if timestamps is not None:
                    timestamps.append(getattr(item, "timestamp", None))
            else:
                sources.append(item[0])
                destinations.append(item[1])
                weights.append(item[2])
                if timestamps is not None:
                    timestamps.append(item[3] if len(item) > 3 else None)

        count = len(sources)
        routes = spec.routing_seed is not None
        with _obs_span("ingest.hash_batch"):
            lookup = _hash_lookup(
                chain(sources, destinations), spec.seed, spec.hash_range, node_memo
            )
            route_lookup = (
                _hash_lookup(sources, spec.routing_seed, None, route_memo)
                if routes
                else None
            )
        if NUMPY_AVAILABLE and count >= _VECTOR_MIN:
            np = load_numpy()
            source_hashes = np.fromiter(
                map(lookup.__getitem__, sources), dtype=np.uint64, count=count
            )
            destination_hashes = np.fromiter(
                map(lookup.__getitem__, destinations), dtype=np.uint64, count=count
            )
            weight_column = np.asarray(weights, dtype=np.float64)
            route_hashes = (
                np.fromiter(
                    map(route_lookup.__getitem__, sources),
                    dtype=np.uint64,
                    count=count,
                )
                if routes
                else None
            )
        else:
            source_hashes = [lookup[key] for key in sources]
            destination_hashes = [lookup[key] for key in destinations]
            weight_column = weights
            route_hashes = (
                [route_lookup[key] for key in sources] if routes else None
            )
        return cls(
            spec,
            sources=sources,
            destinations=destinations,
            weights=weight_column,
            timestamps=timestamps,
            source_hashes=source_hashes,
            destination_hashes=destination_hashes,
            route_hashes=route_hashes,
        )

    @classmethod
    def from_columns(
        cls,
        spec: Optional[HashSpec],
        sources: Sequence,
        destinations: Sequence,
        weights,
        source_hashes,
        destination_hashes,
        route_hashes=None,
    ) -> "HashedBatch":
        """Rebuild a hashed batch from already-computed columns (transport)."""
        return cls(
            spec,
            sources=sources,
            destinations=destinations,
            weights=weights,
            source_hashes=source_hashes,
            destination_hashes=destination_hashes,
            route_hashes=route_hashes,
        )

    # -- shape ---------------------------------------------------------------

    def __len__(self) -> int:
        if self._raw_items is not None:
            return len(self._raw_items)
        return len(self.sources)

    @property
    def hashed(self) -> bool:
        """True when the batch carries precomputed hash columns."""
        return self.source_hashes is not None

    # -- accessors -----------------------------------------------------------

    def items(self) -> List:
        """The batch as plain items, for consumers without hashed ingestion.

        Spec-less batches return their normalized items verbatim (bare input
        tuples untouched); hashed batches reconstitute ``(source,
        destination, weight)`` triples from the key columns.
        """
        if self._raw_items is not None:
            return self._raw_items
        return list(zip(self.sources, self.destinations, self.weight_list()))

    def source_hash_list(self) -> List[int]:
        """Source node hashes as Python ints (cached)."""
        if self._source_hash_ints is None:
            column = self.source_hashes
            self._source_hash_ints = (
                column if isinstance(column, list) else column.tolist()
            )
        return self._source_hash_ints

    def destination_hash_list(self) -> List[int]:
        """Destination node hashes as Python ints (cached)."""
        if self._destination_hash_ints is None:
            column = self.destination_hashes
            self._destination_hash_ints = (
                column if isinstance(column, list) else column.tolist()
            )
        return self._destination_hash_ints

    def weight_list(self) -> List[float]:
        """Weights as a plain Python list."""
        if isinstance(self.weights, list):
            return self.weights
        return self.weights.tolist()

    def node_hash_items(self) -> Iterable[Tuple[Hashable, int]]:
        """Iterate ``(key, node_hash)`` pairs over both key columns.

        Hashes are Python ints — safe as dict keys/values in the reverse
        :class:`~repro.core.reverse_index.NodeIndex` and in JSON snapshots.
        """
        yield from zip(self.sources, self.source_hash_list())
        yield from zip(self.destinations, self.destination_hash_list())

    def address_fingerprint_columns(
        self, fingerprint_range: int
    ) -> Tuple[Sequence, Sequence, Sequence, Sequence]:
        """Address/fingerprint split of both hash columns (Definition 5).

        Returns ``(source_addresses, source_fingerprints,
        destination_addresses, destination_fingerprints)`` with the column
        type matching the batch's (arrays on the vectorized path, lists on
        the scalar one).  Backends typically derive these internally; this
        helper exists for consumers that want the split without re-hashing.
        """
        if fingerprint_range <= 0:
            raise ValueError("fingerprint_range must be positive")
        if isinstance(self.source_hashes, list):
            return (
                [value // fingerprint_range for value in self.source_hashes],
                [value % fingerprint_range for value in self.source_hashes],
                [value // fingerprint_range for value in self.destination_hashes],
                [value % fingerprint_range for value in self.destination_hashes],
            )
        from repro.hashing.vectorized import split_hashes

        source_addresses, source_fingerprints = split_hashes(
            self.source_hashes, fingerprint_range
        )
        destination_addresses, destination_fingerprints = split_hashes(
            self.destination_hashes, fingerprint_range
        )
        return (
            source_addresses,
            source_fingerprints,
            destination_addresses,
            destination_fingerprints,
        )

    # -- routing -------------------------------------------------------------

    def split_by_route(self, shard_count: int) -> List[Tuple[int, "HashedBatch"]]:
        """Group-split by ``route_hash % shard_count``, stream order preserved.

        Returns ``(shard_index, sub_batch)`` pairs for the non-empty shards,
        in ascending shard order.  The split is stable: within a shard, items
        keep their relative stream order (bucket placement and deletion
        semantics observe it).  Vectorized as one modulo + stable argsort +
        boundary scan when the columns are arrays.
        """
        if self.route_hashes is None:
            raise ValueError("batch was built without a routing seed")
        if shard_count <= 0:
            raise ValueError("shard_count must be positive")
        count = len(self.sources)
        if count == 0:
            return []
        if isinstance(self.route_hashes, list):
            buckets: dict = {}
            for index, route in enumerate(self.route_hashes):
                buckets.setdefault(route % shard_count, []).append(index)
            return [
                (shard, self._take(indices))
                for shard, indices in sorted(buckets.items())
            ]
        np = load_numpy()
        shards = (self.route_hashes % np.uint64(shard_count)).astype(np.int64)
        order = np.argsort(shards, kind="stable")
        ordered = shards[order]
        boundaries = np.nonzero(np.diff(ordered))[0] + 1
        starts = [0, *boundaries.tolist(), count]
        return [
            (int(ordered[begin]), self._take(order[begin:end]))
            for begin, end in zip(starts, starts[1:])
        ]

    def _take(self, indices: Union[List[int], "object"]) -> "HashedBatch":
        """A sub-batch holding the rows at ``indices`` (route hashes dropped)."""
        if isinstance(indices, list):
            positions = indices
            source_hashes = [self.source_hashes[i] for i in positions]
            destination_hashes = [self.destination_hashes[i] for i in positions]
            weights = [self.weights[i] for i in positions]
        else:
            positions = indices.tolist()
            source_hashes = self.source_hashes[indices]
            destination_hashes = self.destination_hashes[indices]
            weights = self.weights[indices]
        return HashedBatch(
            self.spec,
            sources=[self.sources[i] for i in positions],
            destinations=[self.destinations[i] for i in positions],
            weights=weights,
            timestamps=(
                [self.timestamps[i] for i in positions]
                if self.timestamps is not None
                else None
            ),
            source_hashes=source_hashes,
            destination_hashes=destination_hashes,
        )
