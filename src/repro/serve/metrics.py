"""The counters behind the server's ``/metrics`` endpoint.

:class:`ServerMetrics` accumulates cheap in-loop counters (connections,
frames, busy rejections, in-flight credits) and, on demand, merges the
summary's own :class:`~repro.api.ShardIngestStats` — items per shard,
queue-depth high water, routing imbalance.  Collection deliberately touches
only client-side bookkeeping (never the worker pipes), so ``/metrics``
answers instantly even while the summary executor is saturated with ingest
work — exactly when an operator most wants to look at it.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["ServerMetrics", "http_response", "render_metrics"]


@dataclass
class ServerMetrics:
    """Mutable counter block owned by one :class:`SummaryServer`."""

    started: float = field(default_factory=time.monotonic)
    connections_total: int = 0
    connections_open: int = 0
    frames_received: int = 0
    ingest_frames: int = 0
    ingest_items: int = 0
    binary_ingest_frames: int = 0
    busy_replies: int = 0
    queries: int = 0
    flushes: int = 0
    checkpoints: int = 0
    errors: int = 0
    #: Batches admitted but not yet applied by the summary executor.
    inflight: int = 0
    #: Largest ``inflight`` observed (admission-queue high water).
    inflight_high_water: int = 0

    def admit(self) -> None:
        self.inflight += 1
        if self.inflight > self.inflight_high_water:
            self.inflight_high_water = self.inflight

    def settle(self) -> None:
        self.inflight -= 1


def render_metrics(
    metrics: ServerMetrics,
    summary,
    *,
    credits: int,
    max_inflight: int,
    transport: Optional[str] = None,
) -> Dict:
    """One JSON-safe snapshot of the server and its summary.

    ``summary`` may be any :class:`~repro.api.GraphSummary`; the shard
    section appears only when it exposes ``shard_ingest_stats()`` (the
    sharded deployments).  ``update_count`` counts items *routed*, which can
    momentarily exceed items applied — the difference is what ``inflight``
    measures.
    """
    document: Dict = {
        "server": "repro-serve",
        "uptime_seconds": time.monotonic() - metrics.started,
        "connections_open": metrics.connections_open,
        "connections_total": metrics.connections_total,
        "frames_received": metrics.frames_received,
        "ingest_frames": metrics.ingest_frames,
        "ingest_items": metrics.ingest_items,
        "binary_ingest_frames": metrics.binary_ingest_frames,
        "busy_replies": metrics.busy_replies,
        "queries": metrics.queries,
        "flushes": metrics.flushes,
        "checkpoints": metrics.checkpoints,
        "errors": metrics.errors,
        "inflight_batches": metrics.inflight,
        "inflight_high_water": metrics.inflight_high_water,
        "credits_per_connection": credits,
        "max_inflight_batches": max_inflight,
    }
    if transport is not None:
        document["transport"] = transport
    update_count = getattr(summary, "update_count", None)
    if update_count is not None:
        document["update_count"] = update_count
    shard_stats = getattr(summary, "shard_ingest_stats", None)
    if callable(shard_stats):
        stats = shard_stats()
        document["shards"] = {
            "items_routed": list(stats.items_routed),
            "queue_depth_high_water": stats.queue_depth_high_water,
            "routing_imbalance": stats.routing_imbalance,
        }
    return document


def http_response(document: Dict, status: str = "200 OK") -> bytes:
    """A minimal ``HTTP/1.0`` response carrying ``document`` as JSON."""
    body = json.dumps(document, indent=2).encode("utf-8") + b"\n"
    head = (
        f"HTTP/1.0 {status}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("ascii")
    return head + body
