"""Unit tests for the Section VI analytical models."""

import math

import pytest

from repro.analysis.buffer_model import (
    bucket_availability_probability,
    expected_buffer_fraction,
    insertion_failure_probability,
)
from repro.analysis.collision import (
    edge_collision_probability,
    edge_query_correct_rate,
    gss_hash_range,
    node_collision_free_probability,
    precursor_query_correct_rate,
    successor_query_correct_rate,
    tcm_hash_range,
)
from repro.analysis.figure3 import figure3_series, minimum_ratio_for_accuracy


class TestCollisionFormulas:
    def test_paper_worked_example(self):
        """Section VI-C: F=256, m=1000, |E|=5e5, D=200 -> P ~= 0.9992."""
        M = gss_hash_range(1000, 8)
        rate = edge_query_correct_rate(M, 5e5, 200)
        assert rate == pytest.approx(0.9992, abs=2e-4)

    def test_paper_tcm_comparison(self):
        """Same matrix for TCM (M = m = 1000) gives about 0.497 in the paper."""
        rate = edge_query_correct_rate(tcm_hash_range(1000), 5e5, 200)
        assert rate == pytest.approx(0.497, abs=0.02)

    def test_correct_rate_monotone_in_M(self):
        rates = [edge_query_correct_rate(M, 1e5, 50) for M in (1e3, 1e4, 1e5, 1e6)]
        assert rates == sorted(rates)

    def test_correct_rate_decreases_with_edges(self):
        assert edge_query_correct_rate(1e4, 1e6, 10) < edge_query_correct_rate(1e4, 1e4, 10)

    def test_collision_probability_complementary(self):
        assert edge_collision_probability(1e4, 1e5, 10) == pytest.approx(
            1 - edge_query_correct_rate(1e4, 1e5, 10)
        )

    def test_node_collision_free_probability(self):
        assert node_collision_free_probability(1e6, 1) == 1.0
        value = node_collision_free_probability(1000, 1001)
        assert value == pytest.approx(math.exp(-1), rel=1e-6)

    def test_successor_rate_below_edge_rate(self):
        M, V, E = 1e6, 1e5, 5e5
        assert successor_query_correct_rate(M, V, E, 8) <= edge_query_correct_rate(M, E, 8)

    def test_precursor_equals_successor(self):
        assert precursor_query_correct_rate(1e6, 1e5, 5e5, 8) == successor_query_correct_rate(
            1e6, 1e5, 5e5, 8
        )

    def test_input_validation(self):
        with pytest.raises(ValueError):
            edge_query_correct_rate(0, 10)
        with pytest.raises(ValueError):
            edge_query_correct_rate(10, -1)
        with pytest.raises(ValueError):
            edge_query_correct_rate(10, 5, 6)
        with pytest.raises(ValueError):
            gss_hash_range(0, 8)
        with pytest.raises(ValueError):
            tcm_hash_range(-1)


class TestBufferModel:
    def test_paper_worked_example(self):
        """Section VI-D: N=1e6, D=1e4, m=1000, r=8, l=3, k=8 -> about 0.002."""
        probability = insertion_failure_probability(
            stored_edges=1_000_000,
            adjacent_edges=10_000,
            matrix_width=1000,
            sequence_length=8,
            rooms=3,
            candidate_buckets=8,
        )
        assert probability == pytest.approx(0.002, abs=0.003)

    def test_empty_matrix_never_fails(self):
        assert insertion_failure_probability(0, 0, 100, 8, 2, 8) == pytest.approx(0.0, abs=1e-12)

    def test_more_candidates_reduce_failure(self):
        few = insertion_failure_probability(50_000, 500, 200, 8, 2, 2)
        many = insertion_failure_probability(50_000, 500, 200, 8, 2, 16)
        assert many <= few

    def test_more_rooms_reduce_failure(self):
        one = insertion_failure_probability(50_000, 500, 200, 8, 1, 8)
        two = insertion_failure_probability(50_000, 500, 200, 8, 2, 8)
        assert two <= one

    def test_availability_is_probability(self):
        value = bucket_availability_probability(10_000, 100, 100, 8, 2)
        assert 0.0 <= value <= 1.0

    def test_input_validation(self):
        with pytest.raises(ValueError):
            bucket_availability_probability(10, 20, 100, 8, 2)
        with pytest.raises(ValueError):
            bucket_availability_probability(10, 5, 0, 8, 2)
        with pytest.raises(ValueError):
            insertion_failure_probability(10, 5, 10, 8, 2, 0)

    def test_expected_buffer_fraction_small_when_matrix_large(self):
        fraction = expected_buffer_fraction(
            total_edges=10_000,
            matrix_width=110,          # ~ sqrt(10_000 / 2) * 1.5
            sequence_length=8,
            rooms=2,
            candidate_buckets=8,
        )
        assert fraction < 0.05

    def test_expected_buffer_fraction_zero_for_empty_stream(self):
        assert expected_buffer_fraction(0, 10, 4, 2, 4) == 0.0


class TestFigure3:
    def test_panels_present(self):
        series = figure3_series(node_count=10_000)
        assert set(series) == {"edge_query", "successor_query", "precursor_query"}
        assert len(series["edge_query"]) == len(series["successor_query"])

    def test_edge_query_accuracy_high_even_at_small_ratio(self):
        series = figure3_series(node_count=10_000)
        small_ratio = [p for p in series["edge_query"] if p.ratio == 0.25 and p.degree == 1]
        assert small_ratio[0].correct_rate > 0.9

    def test_successor_accuracy_needs_large_ratio(self):
        """The paper's reading of Figure 3: >80% accuracy needs M/|V| in the hundreds."""
        ratio = minimum_ratio_for_accuracy(target=0.8, node_count=100_000, degree=8)
        assert ratio >= 64

    def test_accuracy_monotone_in_ratio(self):
        series = figure3_series(node_count=10_000)
        degree_8 = [p for p in series["successor_query"] if p.degree == 8]
        rates = [p.correct_rate for p in sorted(degree_8, key=lambda p: p.ratio)]
        assert rates == sorted(rates)

    def test_rejects_bad_node_count(self):
        with pytest.raises(ValueError):
            figure3_series(node_count=0)
