"""Extension experiment — sliding-window summarization accuracy.

The paper's Figure 15 queries fixed windows of the stream; this experiment
generalises that to the :class:`~repro.core.windowed.WindowedGSS` wrapper and
measures, for a sweep of window spans:

* edge-query ARE inside the window against the exact windowed ground truth;
* 1-hop successor precision inside the window;
* how many per-slice sketches are alive and their combined memory.

The workload is the timestamped ``lkml-reply`` analog (the paper's own
windowed dataset is web-NotreDame; both are covered by the configuration).
"""

from __future__ import annotations

from typing import Dict, Hashable, Set, Tuple

from repro.experiments.config import ExperimentConfig, load_streams
from repro.experiments.report import ExperimentResult
from repro.metrics.accuracy import average_precision, average_relative_error
from repro.queries.primitives import edge_weight_or_zero


def _window_ground_truth(stream, span: float):
    """Exact weights and successor sets of the last ``span`` time units."""
    if len(stream) == 0:
        return {}, {}
    latest = max(edge.timestamp for edge in stream)
    start = latest - span
    weights: Dict[Tuple[Hashable, Hashable], float] = {}
    successors: Dict[Hashable, Set[Hashable]] = {}
    for edge in stream:
        if edge.timestamp < start:
            continue
        weights[edge.key] = weights.get(edge.key, 0.0) + edge.weight
        successors.setdefault(edge.source, set()).add(edge.destination)
    return weights, successors


def run_window_experiment(config: ExperimentConfig = None) -> ExperimentResult:
    """Sliding-window accuracy of WindowedGSS for several window spans."""
    config = config or ExperimentConfig()
    fingerprint_bits = max(config.fingerprint_bits)
    span_fractions = config.extras.get("window_span_fractions", (0.25, 0.5, 1.0))
    slices = config.extras.get("window_slices", 4)
    result = ExperimentResult(
        experiment="window",
        description="sliding-window GSS accuracy vs window span",
        columns=[
            "dataset",
            "span_fraction",
            "slices",
            "edge_are",
            "successor_precision",
            "live_slices",
            "memory_bytes",
        ],
    )
    for name, stream in load_streams(config):
        if len(stream) == 0:
            continue
        ordered = stream.sorted_by_timestamp()
        duration = max(edge.timestamp for edge in ordered) - min(edge.timestamp for edge in ordered)
        duration = max(duration, 1.0)
        statistics = ordered.statistics()
        width = config.recommended_width(statistics)
        for fraction in span_fractions:
            span = duration * fraction
            window = config.build_sketch(
                "windowed-gss",
                memory_bytes=None,
                matrix_width=width,
                fingerprint_bits=fingerprint_bits,
                rooms=config.rooms,
                sequence_length=config.sequence_length,
                candidate_buckets=config.candidate_buckets,
                window_span=span,
                slices=slices,
            )
            config.feed(window, ordered)

            truth_weights, truth_successors = _window_ground_truth(ordered, span)
            edge_pairs = [
                (edge_weight_or_zero(window, *key), true_weight)
                for key, true_weight in config.sample_items(list(truth_weights.items()))
            ]
            successor_pairs = []
            for node, true_set in config.sample_items(list(truth_successors.items())):
                successor_pairs.append((true_set, window.successor_query(node)))

            result.add(
                dataset=name,
                span_fraction=fraction,
                slices=slices,
                edge_are=average_relative_error(edge_pairs),
                successor_precision=average_precision(successor_pairs),
                live_slices=window.active_slice_count,
                memory_bytes=window.memory_bytes(),
            )
    return result
