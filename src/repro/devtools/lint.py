"""Command-line driver: ``python -m repro.devtools.lint src/``.

Exit status is 0 when no violations survive suppression filtering, 1
otherwise (2 for usage errors), so the command slots directly into CI.
``--json`` emits the full machine-readable report, ``--rules`` narrows the
run to a comma-separated subset, ``--list-rules`` documents the suite.

The programmatic surface for tests is :func:`run_lint`, which takes paths
plus an optional explicit checker list and returns the
:class:`~repro.devtools.framework.LintReport`.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.devtools.checkers import default_checkers
from repro.devtools.framework import Checker, LintReport, Project, run_checkers

__all__ = ["main", "run_lint"]


def run_lint(
    paths: Sequence[Path],
    checkers: Optional[Sequence[Checker]] = None,
) -> LintReport:
    """Lint ``paths`` (files or directories) and return the report."""
    project = Project.load(paths)
    return run_checkers(
        project,
        list(checkers or default_checkers()),
        known_rules=[checker.rule for checker in default_checkers()],
    )


def _select(names: str) -> Sequence[Checker]:
    available = {checker.rule: checker for checker in default_checkers()}
    selected = []
    for name in names.split(","):
        name = name.strip()
        if not name:
            continue
        if name not in available:
            raise SystemExit(
                f"unknown rule {name!r}; available: {', '.join(sorted(available))}"
            )
        selected.append(available[name])
    if not selected:
        raise SystemExit("--rules selected nothing")
    return selected


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="repro invariant lint suite (see repro.devtools).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories to lint"
    )
    parser.add_argument("--json", action="store_true", help="emit a JSON report")
    parser.add_argument(
        "--rules", default=None, help="comma-separated subset of rules to run"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="describe every rule and exit"
    )
    arguments = parser.parse_args(argv)

    if arguments.list_rules:
        for checker in default_checkers():
            print(f"{checker.rule:15s} {checker.description}")
        print(f"{'suppression':15s} allow() markers must carry a justification")
        return 0

    paths = [Path(p) for p in arguments.paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    checkers = _select(arguments.rules) if arguments.rules else default_checkers()
    report = run_lint(paths, checkers)

    if arguments.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        for violation in report.violations:
            print(violation.format())
        summary = (
            f"{len(report.violations)} violation(s), "
            f"{len(report.suppressed)} suppressed, "
            f"{report.checked_files} file(s) checked, "
            f"rules: {', '.join(report.rules)}"
        )
        print(("FAIL " if report.violations else "OK ") + summary)
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
