"""Unit tests for the basic GSS of Section IV."""

import pytest

from repro.core.basic import GSSBasic
from repro.queries.primitives import EDGE_NOT_FOUND, consume_stream


class TestGSSBasicConstruction:
    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            GSSBasic(matrix_width=0)

    def test_rejects_bad_fingerprint_bits(self):
        with pytest.raises(ValueError):
            GSSBasic(matrix_width=4, fingerprint_bits=0)

    def test_hash_range_is_width_times_fingerprint_range(self):
        sketch = GSSBasic(matrix_width=8, fingerprint_bits=8)
        assert sketch.hash_range == 8 * 256
        assert 0 <= sketch.node_hash("anything") < sketch.hash_range


class TestGSSBasicQueries:
    def test_edge_query_never_underestimates(self, paper_stream):
        sketch = consume_stream(GSSBasic(matrix_width=8, fingerprint_bits=8), paper_stream)
        for key, weight in paper_stream.aggregate_weights().items():
            assert sketch.edge_query(*key) >= weight

    def test_absent_edge_usually_not_found(self):
        sketch = GSSBasic(matrix_width=32, fingerprint_bits=16)
        sketch.update("a", "b", 1.0)
        assert sketch.edge_query("x", "y") is None

    def test_duplicate_edges_aggregate(self):
        sketch = GSSBasic(matrix_width=16, fingerprint_bits=12)
        sketch.update("a", "b", 1.0)
        sketch.update("a", "b", 4.0)
        assert sketch.edge_query("a", "b") == 5.0

    def test_successors_are_superset_of_truth(self, paper_stream):
        sketch = consume_stream(GSSBasic(matrix_width=8, fingerprint_bits=8), paper_stream)
        truth = paper_stream.successors()
        for node, successors in truth.items():
            assert successors <= sketch.successor_query(node)

    def test_precursors_are_superset_of_truth(self, paper_stream):
        sketch = consume_stream(GSSBasic(matrix_width=8, fingerprint_bits=8), paper_stream)
        truth = paper_stream.precursors()
        for node, precursors in truth.items():
            assert precursors <= sketch.precursor_query(node)

    def test_buffer_used_on_collision(self):
        # A 1x1 matrix forces every second distinct edge into the buffer.
        sketch = GSSBasic(matrix_width=1, fingerprint_bits=8)
        sketch.update("a", "b", 1.0)
        sketch.update("c", "d", 2.0)
        sketch.update("e", "f", 3.0)
        assert sketch.buffer_edge_count >= 1
        assert sketch.buffer_percentage > 0
        # buffered edges are still answerable
        assert sketch.edge_query("c", "d") >= 2.0
        assert sketch.edge_query("e", "f") >= 3.0

    def test_node_index_required_for_original_ids(self):
        sketch = GSSBasic(matrix_width=8, keep_node_index=False)
        sketch.update("a", "b")
        with pytest.raises(RuntimeError):
            sketch.successor_query("a")

    def test_memory_model_positive(self):
        sketch = GSSBasic(matrix_width=8, fingerprint_bits=16)
        assert sketch.memory_bytes() == 8 * 8 * (2 * 16 + 32) // 8

    def test_matrix_edge_count(self, paper_stream):
        sketch = consume_stream(GSSBasic(matrix_width=16, fingerprint_bits=12), paper_stream)
        stored = sketch.matrix_edge_count + sketch.buffer_edge_count
        # 11 distinct streaming-graph edges, minus possible sketch collisions.
        assert 9 <= stored <= 11
