"""End-to-end integration tests across the whole stack.

These mirror the three use cases from the paper's introduction: network
traffic monitoring, social-network analysis and data-center troubleshooting,
each exercising GSS against the exact ground truth through the public API.
"""

import pytest

from repro.core.config import GSSConfig
from repro.core.gss import GSS
from repro.datasets.registry import load_dataset
from repro.datasets.synthetic import labeled_stream, unreachable_pairs
from repro.exact.adjacency_list import AdjacencyListGraph
from repro.metrics.accuracy import average_precision, average_relative_error
from repro.queries.node_query import node_out_weight
from repro.queries.primitives import EDGE_NOT_FOUND, consume_stream
from repro.queries.reachability import is_reachable
from repro.queries.subgraph import LabeledDiGraph, SubgraphMatcher
from repro.experiments.subgraph import random_walk_pattern
from repro.streaming.window import tumbling_windows


@pytest.fixture(scope="module")
def traffic_stream():
    return load_dataset("caida-networkflow", scale=0.05)


@pytest.fixture(scope="module")
def traffic_sketch(traffic_stream):
    statistics = traffic_stream.statistics()
    config = GSSConfig.for_edge_count(
        statistics.distinct_edges, sequence_length=8, candidate_buckets=8
    )
    return GSS(config).ingest(traffic_stream)


class TestNetworkTrafficUseCase:
    def test_edge_queries_are_accurate(self, traffic_stream, traffic_sketch):
        truth = traffic_stream.aggregate_weights()
        pairs = []
        for key, weight in list(truth.items())[:400]:
            estimate = traffic_sketch.edge_query(*key)
            assert estimate >= weight - 1e-9
            pairs.append((estimate, weight))
        assert average_relative_error(pairs) < 0.01

    def test_heavy_hitter_detection(self, traffic_stream, traffic_sketch):
        """Node queries find the top talkers of the traffic graph."""
        truth = traffic_stream.node_out_weights()
        top_talkers = sorted(truth, key=truth.get, reverse=True)[:5]
        for node in top_talkers:
            estimate = node_out_weight(traffic_sketch, node)
            assert estimate >= truth[node] - 1e-9
            assert estimate <= truth[node] * 1.2 + 1.0

    def test_memory_is_linear_in_edges(self, traffic_stream, traffic_sketch):
        statistics = traffic_stream.statistics()
        bytes_per_edge = traffic_sketch.memory_bytes() / statistics.distinct_edges
        assert bytes_per_edge < 40


class TestSocialNetworkUseCase:
    def test_potential_friends_via_successors(self):
        stream = load_dataset("lkml-reply", scale=0.05)
        statistics = stream.statistics()
        sketch = GSS(
            GSSConfig.for_edge_count(
                statistics.distinct_edges, sequence_length=8, candidate_buckets=8
            )
        ).ingest(stream)
        truth = stream.successors()
        nodes = stream.nodes()[:150]
        precision = average_precision(
            [(truth.get(node, set()), sketch.successor_query(node)) for node in nodes]
        )
        assert precision > 0.95

    def test_news_spreading_path_reachability(self):
        stream = load_dataset("lkml-reply", scale=0.05)
        statistics = stream.statistics()
        sketch = GSS(
            GSSConfig.for_edge_count(
                statistics.distinct_edges, sequence_length=8, candidate_buckets=8
            )
        ).ingest(stream)
        exact = consume_stream(AdjacencyListGraph(), stream)
        nodes = stream.nodes()
        source = nodes[0]
        reachable_truth = [node for node in nodes[:60] if is_reachable(exact, source, node)]
        for node in reachable_truth:
            assert is_reachable(sketch, source, node)
        for source_node, destination in unreachable_pairs(stream, 10, seed=3):
            assert not is_reachable(exact, source_node, destination)


class TestTroubleshootingUseCase:
    def test_windowed_pattern_search(self):
        stream = labeled_stream(load_dataset("web-NotreDame", scale=0.05), seed=1)
        labels = {edge.key: edge.label for edge in stream}
        windows = list(tumbling_windows(stream, 800))
        window = windows[0]
        statistics = window.statistics()
        sketch = GSS(
            GSSConfig.for_edge_count(
                statistics.distinct_edges, sequence_length=8, candidate_buckets=8
            )
        ).ingest(window)

        exact_graph = LabeledDiGraph.from_stream(window)
        sketch_graph = LabeledDiGraph.from_store(sketch, window.nodes(), labels)

        import random

        extracted = random_walk_pattern(exact_graph, 4, random.Random(9))
        assert extracted is not None
        pattern, _ = extracted
        embedding = SubgraphMatcher(sketch_graph).find_one(pattern)
        assert embedding is not None
        # every edge of the found embedding really happened in the window
        for edge in pattern.edges:
            assert exact_graph.has_edge(embedding[edge.source], embedding[edge.destination])

    def test_communication_log_edge_lookup(self):
        stream = load_dataset("web-NotreDame", scale=0.05)
        statistics = stream.statistics()
        sketch = GSS(
            GSSConfig.for_edge_count(
                statistics.distinct_edges, sequence_length=8, candidate_buckets=8
            )
        ).ingest(stream)
        truth = stream.aggregate_weights()
        present = list(truth)[:100]
        for key in present:
            assert sketch.edge_query(*key) is not None
        absent_queries = [("ghost-1", "ghost-2"), ("ghost-3", "ghost-4")]
        for source, destination in absent_queries:
            assert sketch.edge_query(source, destination) is None
