"""Persistence of GSS sketches.

A summarization structure is only useful in production if it can be
checkpointed: operators periodically snapshot the sketch of the stream so far
and restore it after restarts.  The format here is a compact JSON document —
portable, diff-able and dependency-free — containing the configuration, every
occupied room, the left-over buffer and (optionally) the reverse node index.

The round trip is exact: a restored sketch answers every query identically to
the original, which the tests verify property-style.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import replace
from pathlib import Path
from typing import Dict, Optional, Union

from repro.core.config import GSSConfig
from repro.core.gss import GSS
from repro.hashing.hash_functions import HASH_VERSION

FORMAT_VERSION = 1


def sketch_to_dict(sketch: GSS, include_node_index: bool = True) -> Dict:
    """Serialize a GSS into a plain dictionary (JSON-compatible)."""
    config = sketch.config
    occupied = [
        {"row": row, "column": column, "rooms": [list(room) for room in bucket]}
        for row, column, bucket in sketch.occupied_buckets()
    ]
    document = {
        "format_version": FORMAT_VERSION,
        # Which registered sketch wrote the snapshot, so repro.api.from_dict
        # can dispatch without the caller knowing the concrete class.
        "sketch": "gss",
        "hash_version": HASH_VERSION,
        "config": {
            "matrix_width": config.matrix_width,
            "fingerprint_bits": config.fingerprint_bits,
            "rooms": config.rooms,
            "sequence_length": config.sequence_length,
            "candidate_buckets": config.candidate_buckets,
            "square_hashing": config.square_hashing,
            "sampling": config.sampling,
            "keep_node_index": config.keep_node_index,
            "seed": config.seed,
            # The *resolved* backend (never "auto", and never a name whose
            # prerequisites were missing), so restoring the snapshot lands on
            # the same backend that actually wrote it — modulo the restoring
            # machine's own availability fallbacks.
            "backend": sketch.backend_name,
            "scalar_tail_threshold": config.scalar_tail_threshold,
        },
        "matrix_edge_count": sketch.matrix_edge_count,
        "update_count": sketch.update_count,
        "buckets": occupied,
        "buffer": [
            {"source": source, "destination": destination, "weight": weight}
            for source, destination, weight in sketch.buffer.edges()
        ],
    }
    if include_node_index and sketch.node_index is not None:
        document["node_index"] = [
            {"node": repr(node), "hash": sketch.node_index.hash_of(node), "raw": node}
            for node in sketch.node_index.known_nodes()
            if isinstance(node, (str, int, float, bool))
        ]
    return document


def sketch_from_dict(document: Dict, backend: Optional[str] = None) -> GSS:
    """Rebuild a GSS from a dictionary produced by :func:`sketch_to_dict`.

    ``backend`` overrides the backend recorded in the snapshot, so a sketch
    written by one backend can be restored into the other (the room layout in
    the document is backend-agnostic, and both backends place restored rooms
    identically).  Snapshots written before the backend field existed restore
    onto the pure-Python default.

    Snapshots also record the hash-mapping version (see
    :data:`repro.hashing.hash_functions.HASH_VERSION`).  A snapshot written
    under a *newer* mapping cannot be interpreted and is rejected; one
    written under an *older* mapping (or before the field existed) loads
    with a warning, because only sketches whose node IDs were non-ASCII
    ``bytes`` are affected by the v1 -> v2 change — rebuild such sketches
    from the stream instead of restoring them.
    """
    if document.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported sketch format version {document.get('format_version')!r}"
        )
    stored_hash_version = document.get("hash_version", 1)
    if stored_hash_version > HASH_VERSION:
        raise ValueError(
            f"snapshot was written under hash version {stored_hash_version}, "
            f"newer than this library's {HASH_VERSION}; upgrade the library "
            "to restore it"
        )
    if stored_hash_version < HASH_VERSION:
        warnings.warn(
            f"restoring a snapshot written under hash version "
            f"{stored_hash_version} (current {HASH_VERSION}): stored hashes "
            "for non-ASCII bytes node IDs no longer match hash_key — queries "
            "on such nodes will be wrong; rebuild the sketch from the stream "
            "if it used bytes node IDs",
            RuntimeWarning,
            stacklevel=2,
        )
    config = GSSConfig(**document["config"])
    if backend is not None:
        config = replace(config, backend=backend)
    sketch = GSS(config)
    for entry in document["buckets"]:
        for room in entry["rooms"]:
            # _register_room keeps the backend's indexes in sync, so a
            # restored sketch queries exactly like the original.  It also
            # counts the rooms, making the stored matrix_edge_count purely
            # informational.
            sketch._register_room(entry["row"], entry["column"], list(room))
    sketch._update_count = document["update_count"]
    for edge in document["buffer"]:
        sketch.buffer.add(edge["source"], edge["destination"], edge["weight"])
    if "node_index" in document and sketch.node_index is not None:
        for entry in document["node_index"]:
            sketch.node_index.record(entry["raw"], entry["hash"])
    return sketch


def save_sketch(sketch: GSS, path: Union[str, Path], include_node_index: bool = True) -> None:
    """Write a GSS snapshot to ``path`` as JSON."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(sketch_to_dict(sketch, include_node_index=include_node_index), handle)


def load_sketch(path: Union[str, Path], backend: Optional[str] = None) -> GSS:
    """Restore a GSS snapshot written by :func:`save_sketch`.

    ``backend`` optionally re-targets the restored sketch onto a different
    matrix backend (see :func:`sketch_from_dict`).
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        return sketch_from_dict(json.load(handle), backend=backend)
