#!/usr/bin/env python3
"""Run the native-backend test suites under ASan + UBSan.

The kernel is rebuilt with ``-fsanitize=address,undefined
-fno-sanitize-recover=all`` (see ``_SANITIZE_FLAGS`` in
``repro.core._native``), so any heap error, out-of-bounds room write or
undefined arithmetic in ``kernel.c`` aborts the test run instead of
silently corrupting placement state.

An ASan-instrumented shared library can only be dlopen-ed into a process
whose *initial* library list starts with the ASan runtime, so this script
re-execs pytest in a child with:

* ``LD_PRELOAD`` pointing at the compiler's ``libasan.so``;
* ``ASAN_OPTIONS=detect_leaks=0`` — CPython itself "leaks" interned
  objects at exit, which would drown real reports;
* ``REPRO_NATIVE_SANITIZE=1`` so the kernel cache builds (and keys) the
  sanitized flavor.

Usage::

    python scripts/native_sanitize.py                 # default suites
    python scripts/native_sanitize.py tests/test_x.py # explicit selection
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
#: The suites that drive the compiled kernel hard: direct backend tests
#: plus the cross-backend equivalence sweeps.
DEFAULT_SUITES = (
    "tests/test_native_backend.py",
    "tests/test_numpy_backend.py",
)


def find_libasan() -> str:
    compiler = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if compiler is None:
        raise SystemExit("no C compiler found; cannot locate libasan")
    result = subprocess.run(
        [compiler, "-print-file-name=libasan.so"],
        check=True,
        capture_output=True,
        text=True,
    )
    path = result.stdout.strip()
    if not path or path == "libasan.so":
        raise SystemExit(
            f"{compiler} cannot locate libasan.so — install the ASan runtime"
        )
    return path


def main(argv: list) -> int:
    suites = argv or [str(REPO / suite) for suite in DEFAULT_SUITES]
    environment = dict(os.environ)
    environment["LD_PRELOAD"] = find_libasan()
    environment["REPRO_NATIVE_SANITIZE"] = "1"
    # CPython's interned/static allocations at exit would be reported as
    # leaks; keep ASan focused on the kernel's own heap discipline.
    environment.setdefault("ASAN_OPTIONS", "detect_leaks=0")
    environment.setdefault("UBSAN_OPTIONS", "print_stacktrace=1")
    environment["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(REPO / "src"), environment.get("PYTHONPATH")])
    )
    command = [sys.executable, "-m", "pytest", "-x", "-q", *suites]
    print("+", " ".join(command))
    print(f"  LD_PRELOAD={environment['LD_PRELOAD']}")
    return subprocess.call(command, env=environment, cwd=str(REPO))


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
