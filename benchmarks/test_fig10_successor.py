"""Benchmark: regenerate Figure 10 (1-hop successor query precision)."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import run_successor_experiment


@pytest.mark.paper_artifact("fig10")
def test_fig10_successor_precision(benchmark, bench_config):
    result = run_once(benchmark, run_successor_experiment, bench_config)
    print()
    print(result.to_text())

    gss_rows = [row for row in result.rows if row["structure"].startswith("GSS")]
    tcm_rows = [row for row in result.rows if row["structure"].startswith("TCM")]
    assert gss_rows and tcm_rows

    assert min(row["precision"] for row in gss_rows) > 0.9
    for gss_row in gss_rows:
        matching_tcm = [
            row
            for row in tcm_rows
            if row["dataset"] == gss_row["dataset"] and row["width"] == gss_row["width"]
        ]
        assert matching_tcm
        # 16-bit GSS must beat TCM outright; 12-bit gets a small slack on the
        # scaled-down analogs where 64x-memory TCM can tie it.
        slack = 1e-9 if "16" in gss_row["structure"] else 0.02
        assert gss_row["precision"] >= matching_tcm[0]["precision"] - slack

    # Precision should not degrade when the matrix gets wider (more capacity).
    for dataset in {row["dataset"] for row in gss_rows}:
        rows_16 = sorted(
            (r for r in gss_rows if r["dataset"] == dataset and "16" in r["structure"]),
            key=lambda r: r["width"],
        )
        assert rows_16[-1]["precision"] >= rows_16[0]["precision"] - 0.02
