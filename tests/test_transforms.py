"""Tests for stream transformations (filter, sample, map, split, merge)."""

from __future__ import annotations

import pytest

from repro.streaming.edge import StreamEdge
from repro.streaming.stream import GraphStream
from repro.streaming.transforms import (
    deduplicate,
    filter_by_nodes,
    filter_by_weight,
    filter_edges,
    head,
    map_nodes,
    map_weights,
    merge_streams,
    rate_per_interval,
    reverse_edges,
    sample_stream,
    split_by,
    split_by_time,
)


@pytest.fixture()
def stream() -> GraphStream:
    items = [
        StreamEdge("a", "b", weight=1.0, timestamp=0.0, label="L0"),
        StreamEdge("a", "c", weight=5.0, timestamp=1.0, label="L1"),
        StreamEdge("b", "c", weight=2.0, timestamp=2.0, label="L0"),
        StreamEdge("a", "b", weight=3.0, timestamp=10.0, label="L0"),
        StreamEdge("c", "a", weight=4.0, timestamp=11.0, label="L1"),
    ]
    return GraphStream(items, name="toy")


class TestFilters:
    def test_filter_edges(self, stream):
        filtered = filter_edges(stream, lambda edge: edge.source == "a")
        assert len(filtered) == 3
        assert all(edge.source == "a" for edge in filtered)

    def test_filter_by_weight(self, stream):
        assert len(filter_by_weight(stream, 3.0)) == 3

    def test_filter_by_nodes(self, stream):
        induced = filter_by_nodes(stream, ["a", "b"])
        assert {edge.key for edge in induced} == {("a", "b")}

    def test_head(self, stream):
        assert len(head(stream, 2)) == 2
        with pytest.raises(ValueError):
            head(stream, -1)

    def test_sample_rate_bounds(self, stream):
        assert len(sample_stream(stream, 0.0)) == 0
        assert len(sample_stream(stream, 1.0)) == len(stream)
        with pytest.raises(ValueError):
            sample_stream(stream, 1.5)

    def test_sample_deterministic(self, stream):
        assert [e.key for e in sample_stream(stream, 0.5, seed=3)] == [
            e.key for e in sample_stream(stream, 0.5, seed=3)
        ]


class TestMaps:
    def test_map_nodes(self, stream):
        upper = map_nodes(stream, lambda node: node.upper())
        assert upper[0].source == "A"
        assert len(upper) == len(stream)

    def test_map_weights(self, stream):
        doubled = map_weights(stream, lambda weight: weight * 2)
        assert doubled[1].weight == 10.0

    def test_reverse_edges(self, stream):
        reversed_stream = reverse_edges(stream)
        assert reversed_stream[0].key == ("b", "a")
        assert len(reversed_stream) == len(stream)


class TestMergeSplit:
    def test_merge_orders_by_timestamp(self):
        first = GraphStream([StreamEdge("a", "b", timestamp=5.0)], name="one")
        second = GraphStream([StreamEdge("c", "d", timestamp=1.0)], name="two")
        merged = merge_streams(first, second)
        assert merged[0].key == ("c", "d")
        assert merged.name == "one+two"

    def test_merge_explicit_name(self):
        merged = merge_streams(GraphStream([], name="x"), name="combined")
        assert merged.name == "combined"

    def test_split_by_label(self, stream):
        groups = split_by(stream, lambda edge: edge.label)
        assert set(groups) == {"L0", "L1"}
        assert len(groups["L0"]) == 3

    def test_split_by_time(self, stream):
        pieces = split_by_time(stream, interval=5.0)
        assert len(pieces) == 3
        assert len(pieces[0]) == 3
        assert len(pieces[2]) == 2

    def test_split_by_time_empty_stream(self):
        assert split_by_time(GraphStream([]), 5.0) == []

    def test_split_by_time_rejects_bad_interval(self, stream):
        with pytest.raises(ValueError):
            split_by_time(stream, 0.0)

    def test_rate_per_interval(self, stream):
        rates = rate_per_interval(stream, interval=5.0)
        assert rates[0] == (0.0, 3)
        assert rates[-1][1] == 2

    def test_rate_per_interval_empty(self):
        assert rate_per_interval(GraphStream([]), 5.0) == []


class TestDeduplicate:
    def test_keep_first(self, stream):
        unique = deduplicate(stream, keep="first")
        assert len(unique) == 4
        assert unique.aggregate_weights()[("a", "b")] == 1.0

    def test_keep_sum(self, stream):
        summed = deduplicate(stream, keep="sum")
        assert len(summed) == 4
        assert summed.aggregate_weights()[("a", "b")] == 4.0

    def test_invalid_mode(self, stream):
        with pytest.raises(ValueError):
            deduplicate(stream, keep="last")
