"""The full Graph Stream Sketch (Section V of the paper).

The sketch stores the graph sketch ``Gh`` (obtained by hashing node IDs into
``[0, M)`` with ``M = m * F``) in an ``m x m`` matrix of buckets plus a small
left-over buffer.  Every bucket holds ``l`` rooms; every room records the
fingerprint pair, the index pair (which member of each endpoint's address
sequence produced this row/column) and the aggregated weight.

Square hashing gives every node ``r`` alternative rows/columns derived from a
linear-congruential sequence seeded by its fingerprint, and candidate-bucket
sampling probes only ``k`` of the resulting ``r * r`` buckets per edge.  Both
optimizations — and the number of rooms — can be switched off to reproduce the
paper's ablations.

Matrix storage is pluggable (``GSSConfig.backend``, see
:mod:`repro.core.backends`): the default pure-Python backend keeps the
occupancy-indexed nested-list layout, and the NumPy backend stores rooms in
columnar arrays and runs ``update_many`` / ``update_many_by_hash`` through a
vectorized batch-hashing pipeline.  The two backends are observationally
identical — every query answers the same — so the choice is purely about
speed and dependencies.  In both cases scans cost O(stored edges), not
O(r * m) matrix slots, which is what makes the paper's O(1)-update /
1-hop-query claims hold in this reproduction.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

import warnings

from repro.core.backends import (
    ROOM_DEST_FP,
    ROOM_DEST_INDEX,
    ROOM_SOURCE_FP,
    ROOM_SOURCE_INDEX,
    ROOM_WEIGHT,
    make_backend,
)
from repro.core.buffer import LeftoverBuffer
from repro.core.config import GSSConfig
from repro.core.reverse_index import NodeIndex
from repro.hashing.hash_functions import NodeHasher
from repro.hashing.linear_congruence import (
    LinearCongruentialSequence,
    address_sequence,
    candidate_sequence,
    recover_address,
    unique_candidates,
)
from repro.queries.primitives import Capabilities, SummaryShims

#: Cap on the memoized candidate-pair sequences (one entry per distinct
#: fingerprint pair seen).  Past the cap, sequences are recomputed instead of
#: cached so a long-running process cannot grow without bound.
_CANDIDATE_CACHE_LIMIT = 1 << 16

# Backwards-compatible aliases for the room-slot layout (now owned by
# repro.core.backends).
_ROOM_SOURCE_FP = ROOM_SOURCE_FP
_ROOM_DEST_FP = ROOM_DEST_FP
_ROOM_SOURCE_INDEX = ROOM_SOURCE_INDEX
_ROOM_DEST_INDEX = ROOM_DEST_INDEX
_ROOM_WEIGHT = ROOM_WEIGHT


class GSS(SummaryShims):
    """Graph Stream Sketch with square hashing, sampling and multiple rooms.

    Parameters are supplied through :class:`~repro.core.config.GSSConfig`;
    the most common construction is::

        sketch = GSS(GSSConfig.for_edge_count(expected_edges=100_000))
        for item in stream:
            sketch.update(item.source, item.destination, item.weight)
        weight = sketch.edge_query("a", "b")
        successors = sketch.successor_query("a")
    """

    def __init__(self, config: GSSConfig) -> None:
        self.config = config
        self._width = config.matrix_width
        self._fingerprint_range = config.fingerprint_range
        self._hasher = NodeHasher(value_range=config.hash_range, seed=config.seed)
        self._lcg = LinearCongruentialSequence()
        self._buffer = LeftoverBuffer()
        self._node_index: Optional[NodeIndex] = NodeIndex() if config.keep_node_index else None
        self._update_count = 0
        self._address_cache: Dict[int, List[int]] = {}
        self._candidate_cache: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        # Matrix storage is delegated to the configured backend; see
        # repro.core.backends for the layout and the equivalence argument.
        self._matrix = make_backend(self)

    # -- hashing helpers -----------------------------------------------------

    def node_hash(self, node: Hashable) -> int:
        """``H(node)`` in ``[0, m * F)``."""
        return self._hasher(node)

    def _split(self, node_hash: int) -> Tuple[int, int]:
        """Split ``H(v)`` into ``(h(v), f(v))``."""
        return node_hash // self._fingerprint_range, node_hash % self._fingerprint_range

    def _addresses(self, node_hash: int) -> List[int]:
        """The square-hashing address sequence ``{h_i(v)}`` of a node hash."""
        cached = self._address_cache.get(node_hash)
        if cached is not None:
            return cached
        base_address, fingerprint = self._split(node_hash)
        if self.config.square_hashing:
            addresses = address_sequence(
                base_address,
                fingerprint,
                self.config.sequence_length,
                self._width,
                self._lcg,
            )
        else:
            addresses = [base_address % self._width]
        self._address_cache[node_hash] = addresses
        return addresses

    def _candidate_pairs(
        self, source_fingerprint: int, destination_fingerprint: int
    ) -> List[Tuple[int, int]]:
        """Which (row-index, column-index) pairs to probe for an edge.

        Returns 0-based indices into the two address sequences, in probe
        order.  Without square hashing there is a single pair; without
        sampling all ``r * r`` pairs are probed row-first.  Results are cached
        per fingerprint pair — the sequence depends only on the fingerprints,
        and real streams revisit the same node pairs constantly.
        """
        key = (source_fingerprint, destination_fingerprint)
        cached = self._candidate_cache.get(key)
        if cached is not None:
            return cached
        if not self.config.square_hashing:
            pairs = [(0, 0)]
        elif not self.config.sampling:
            r = self.config.sequence_length
            pairs = [(i, j) for i in range(r) for j in range(r)]
        else:
            pairs = unique_candidates(
                candidate_sequence(
                    source_fingerprint,
                    destination_fingerprint,
                    self.config.candidate_buckets,
                    self.config.sequence_length,
                    self._lcg,
                )
            )
        if len(self._candidate_cache) < _CANDIDATE_CACHE_LIMIT:
            self._candidate_cache[key] = pairs
        return pairs

    # -- backend plumbing ------------------------------------------------------

    @property
    def backend_name(self) -> str:
        """Name of the matrix backend actually in use (after auto/fallback)."""
        return self._matrix.name

    def _bucket_at(self, row: int, column: int) -> Optional[List[List]]:
        return self._matrix.bucket_at(row, column)

    def _register_room(self, row: int, column: int, room: List) -> None:
        """Store one room and keep every matrix index in sync.

        All room insertions — updates, merges, deserialization — must go
        through here so the backend's indexes stay exact.
        """
        self._matrix.register_room(row, column, room)

    def occupied_buckets(self):
        """Yield ``(row, column, bucket)`` for every non-empty bucket.

        Iteration is row-major (ascending row, then column), matching a full
        matrix scan, but only touches occupied positions.
        """
        return self._matrix.occupied_buckets()

    # -- updates ---------------------------------------------------------------

    def update(self, source: Hashable, destination: Hashable, weight: float = 1.0) -> None:
        """Apply one stream item: add ``weight`` to edge ``source -> destination``.

        Negative weights model deletions of earlier items, exactly as in the
        streaming-graph semantics of Definition 1.
        """
        self._update_count += 1
        source_hash = self._hasher(source)
        destination_hash = self._hasher(destination)
        if self._node_index is not None:
            self._node_index.record(source, source_hash)
            self._node_index.record(destination, destination_hash)
        self._matrix.insert_edge(source_hash, destination_hash, weight)

    def update_by_hash(
        self, source_hash: int, destination_hash: int, weight: float = 1.0
    ) -> None:
        """Apply one sketch-level update addressed by node hashes directly.

        Used when merging sketches or replaying edges recovered with
        :meth:`reconstruct_sketch_edges`, where the original node IDs may no
        longer be available.  The reverse node index is left untouched.
        """
        self._update_count += 1
        self._matrix.insert_edge(source_hash, destination_hash, weight)

    def update_many(self, items: Iterable[Tuple[Hashable, Hashable, float]]) -> int:
        """Apply a batch of ``(source, destination, weight)`` stream items.

        Equivalent to calling :meth:`update` once per item but measurably
        faster: node hashes (and reverse-index registrations) are computed
        once per distinct node, items targeting the same sketch edge are
        pre-aggregated into a single insertion, and — on the NumPy backend —
        hashing, hash splitting, address sequences and candidate pairs for
        the whole batch are array operations.  Pre-aggregation is exact
        because a room, once placed, never moves — the first occurrence of an
        edge determines its placement and later occurrences only add weight.

        Returns the number of stream items applied.
        """
        count = self._matrix.update_many(items)
        self._update_count += count
        return count

    def update_many_by_hash(self, edges: Iterable[Tuple[int, int, float]]) -> int:
        """Batch variant of :meth:`update_by_hash` for merge/replay paths.

        Accepts ``(H(s), H(d), weight)`` triples (the shape produced by
        :meth:`reconstruct_sketch_edges`), pre-aggregates duplicates and
        leaves the reverse node index untouched.  Returns the item count.
        """
        count = self._matrix.update_many_by_hash(edges)
        self._update_count += count
        return count

    def hash_spec(self) -> "HashSpec":
        """The hash function family this sketch places edges under.

        Batches built under a matching spec (see
        :meth:`~repro.streaming.batch.HashSpec.matches`) can be ingested via
        :meth:`update_many_hashed` without any re-hashing — the contract that
        lets routing layers and remote transports hash once at the system
        edge.
        """
        from repro.streaming.batch import HashSpec

        return HashSpec(seed=self.config.seed, hash_range=self.config.hash_range)

    def update_many_hashed(self, batch: "HashedBatch") -> int:
        """Ingest a :class:`~repro.streaming.batch.HashedBatch` directly.

        The batch's precomputed node-hash columns feed the matrix backend
        with no further hashing; original keys are recorded in the reverse
        node index (they also serve buffer spill, which stores hashes the
        batch already carries).  A batch built without hash columns — or
        under a different :class:`HashSpec` — falls back to :meth:`update_many`
        over its normalized items, so the method is safe for any batch.

        Returns the number of stream items applied.
        """
        if not batch.hashed or batch.spec is None or not batch.spec.matches(
            self.hash_spec()
        ):
            return self.update_many(batch.items())
        if self._node_index is not None:
            record = self._node_index.record
            for node, node_hash in batch.node_hash_items():
                record(node, node_hash)
        count = self._matrix.ingest_hashed(batch)
        self._update_count += count
        return count

    def _insert_sketch_edge(
        self, source_hash: int, destination_hash: int, weight: float
    ) -> None:
        """Insert (or aggregate) one edge of the graph sketch ``Gh``."""
        self._matrix.insert_edge(source_hash, destination_hash, weight)

    # -- query primitives -------------------------------------------------------

    def edge_query(self, source: Hashable, destination: Hashable) -> Optional[float]:
        """Return the aggregated weight of ``source -> destination`` or ``None``.

        Only over-estimation errors are possible (when the additions cumulate
        weights): if the true edge exists its weight is always reported.

        ``None`` (rather than the paper's ``-1.0``) reports an absent edge, so
        the answer is unambiguous for streams with deletions: a stored edge
        whose weights sum to ``-1.0`` is reported as ``-1.0`` while a missing
        edge is reported as ``None``.  The paper's sentinel convention
        survives as the deprecated
        :meth:`~repro.queries.primitives.SummaryShims.edge_query_sentinel`.
        """
        source_hash = self._hasher(source)
        destination_hash = self._hasher(destination)
        return self.edge_query_by_hash(source_hash, destination_hash)

    def edge_query_by_hash(
        self, source_hash: int, destination_hash: int
    ) -> Optional[float]:
        """Edge query by sketch hashes; ``None`` when the edge is absent."""
        weight = self._matrix.matrix_edge_weight(source_hash, destination_hash)
        if weight is not None:
            return weight
        return self._buffer.get(source_hash, destination_hash)

    def edge_query_by_hash_opt(
        self, source_hash: int, destination_hash: int
    ) -> Optional[float]:
        """Deprecated alias: :meth:`edge_query_by_hash` now returns ``Optional``."""
        warnings.warn(
            "edge_query_by_hash_opt is deprecated; edge_query_by_hash itself "
            "now returns None when the edge is absent",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.edge_query_by_hash(source_hash, destination_hash)

    def successor_hashes(self, node: Hashable) -> Set[int]:
        """Sketch hashes of the 1-hop successors of ``node``."""
        node_hash = self._hasher(node)
        return self._neighbor_hashes(node_hash, forward=True)

    def precursor_hashes(self, node: Hashable) -> Set[int]:
        """Sketch hashes of the 1-hop precursors of ``node``."""
        node_hash = self._hasher(node)
        return self._neighbor_hashes(node_hash, forward=False)

    def _neighbor_hashes(self, node_hash: int, forward: bool) -> Set[int]:
        """Scan ``r`` rows (or columns) for edges touching ``node_hash``.

        ``forward=True`` looks for out-going edges (successors): the node's
        fingerprint must match the *source* fingerprint of a room and the
        room's source index must equal the row's position in the node's
        address sequence.  The destination hash is then recovered from the
        column, the destination fingerprint and the destination index
        (Theorem 1 reversibility).  ``forward=False`` is the symmetric column
        scan for precursors.

        The matrix scan is the backend's business (occupancy-indexed on the
        Python backend, a vectorized mask on the NumPy backend); the
        left-over buffer is consulted here.
        """
        found = self._matrix.matrix_neighbor_hashes(node_hash, forward)
        if forward:
            found.update(self._buffer.successors_of(node_hash))
        else:
            found.update(self._buffer.precursors_of(node_hash))
        return found

    def _neighbor_hashes_unindexed(self, node_hash: int, forward: bool) -> Set[int]:
        """Reference implementation of :meth:`_neighbor_hashes` without the
        backend's indexes: the original full ``r * m`` slot scan.

        Kept for the property tests that assert the indexed scan returns
        identical results; not used on any production path.
        """
        _, fingerprint = self._split(node_hash)
        addresses = self._addresses(node_hash)
        found: Set[int] = set()
        width = self._width

        own_fp_slot = _ROOM_SOURCE_FP if forward else _ROOM_DEST_FP
        own_index_slot = _ROOM_SOURCE_INDEX if forward else _ROOM_DEST_INDEX
        other_fp_slot = _ROOM_DEST_FP if forward else _ROOM_SOURCE_FP
        other_index_slot = _ROOM_DEST_INDEX if forward else _ROOM_SOURCE_INDEX

        for position, address in enumerate(addresses):
            expected_index = position + 1
            for offset in range(width):
                if forward:
                    bucket = self._bucket_at(address, offset)
                else:
                    bucket = self._bucket_at(offset, address)
                if bucket is None:
                    continue
                for room in bucket:
                    if room[own_fp_slot] != fingerprint:
                        continue
                    if room[own_index_slot] != expected_index:
                        continue
                    other_fp = room[other_fp_slot]
                    other_index = room[other_index_slot]
                    if self.config.square_hashing:
                        other_base = recover_address(
                            offset, other_fp, other_index, width, self._lcg
                        )
                    else:
                        other_base = offset
                    found.add(other_base * self._fingerprint_range + other_fp)

        if forward:
            found.update(self._buffer.successors_of(node_hash))
        else:
            found.update(self._buffer.precursors_of(node_hash))
        return found

    def successor_query(self, node: Hashable) -> Set[Hashable]:
        """Original node IDs that are 1-hop reachable from ``node``.

        Requires the reverse node index (``keep_node_index=True``).  The
        result can only contain false positives, never miss a true successor.
        """
        return self._expand(self.successor_hashes(node))

    def precursor_query(self, node: Hashable) -> Set[Hashable]:
        """Original node IDs that reach ``node`` in one hop."""
        return self._expand(self.precursor_hashes(node))

    def _expand(self, hashes: Set[int]) -> Set[Hashable]:
        if self._node_index is None:
            raise RuntimeError(
                "successor/precursor queries over original IDs require "
                "keep_node_index=True; use successor_hashes/precursor_hashes instead"
            )
        return self._node_index.expand(hashes)

    # -- compound helpers -------------------------------------------------------

    def node_out_weight(self, node: Hashable) -> float:
        """Node query: total weight of out-going edges of ``node``.

        Computed by summing the edge-query estimate over the recovered
        successor hashes, which mirrors how the paper composes node queries
        from the primitives.
        """
        node_hash = self._hasher(node)
        total = 0.0
        for successor_hash in sorted(self._neighbor_hashes(node_hash, forward=True)):
            weight = self.edge_query_by_hash(node_hash, successor_hash)
            if weight is not None:
                total += weight
        return total

    def node_in_weight(self, node: Hashable) -> float:
        """Total weight of in-coming edges of ``node``."""
        node_hash = self._hasher(node)
        total = 0.0
        for precursor_hash in sorted(self._neighbor_hashes(node_hash, forward=False)):
            weight = self.edge_query_by_hash(precursor_hash, node_hash)
            if weight is not None:
                total += weight
        return total

    def reconstruct_sketch_edges(self) -> List[Tuple[int, int, float]]:
        """Recover every edge of the graph sketch ``Gh`` stored in the matrix
        and buffer as ``(H(s), H(d), weight)`` triples.

        This demonstrates the paper's claim that the whole graph can be
        re-constructed from the data structure.  The scan yields edges in
        row-major bucket order (the sequence a full matrix scan would
        produce) at O(stored edges) cost on both backends.
        """
        edges = self._matrix.reconstruct()
        edges.extend(self._buffer.edges())
        return edges

    def reconstruct_sketch_edges_unindexed(self) -> List[Tuple[int, int, float]]:
        """Reference full ``m * m`` matrix scan of :meth:`reconstruct_sketch_edges`.

        Kept so the property tests can assert the backend scans are
        byte-identical; not used on any production path.
        """
        edges: List[Tuple[int, int, float]] = []
        width = self._width
        for row in range(width):
            for column in range(width):
                bucket = self._bucket_at(row, column)
                if bucket is None:
                    continue
                for room in bucket:
                    source_fp = room[_ROOM_SOURCE_FP]
                    destination_fp = room[_ROOM_DEST_FP]
                    if self.config.square_hashing:
                        source_base = recover_address(
                            row, source_fp, room[_ROOM_SOURCE_INDEX], width, self._lcg
                        )
                        destination_base = recover_address(
                            column, destination_fp, room[_ROOM_DEST_INDEX], width, self._lcg
                        )
                    else:
                        source_base = row
                        destination_base = column
                    edges.append(
                        (
                            source_base * self._fingerprint_range + source_fp,
                            destination_base * self._fingerprint_range + destination_fp,
                            room[_ROOM_WEIGHT],
                        )
                    )
        edges.extend(self._buffer.edges())
        return edges

    # -- introspection ------------------------------------------------------------

    @property
    def node_index(self) -> Optional[NodeIndex]:
        """The reverse node table, or ``None`` when disabled."""
        return self._node_index

    @property
    def buffer(self) -> LeftoverBuffer:
        """The left-over edge buffer."""
        return self._buffer

    @property
    def matrix_edge_count(self) -> int:
        """Distinct sketch edges stored in matrix rooms."""
        return self._matrix.matrix_edge_count

    @property
    def buffer_edge_count(self) -> int:
        """Distinct sketch edges stored in the left-over buffer."""
        return len(self._buffer)

    @property
    def update_count(self) -> int:
        """Number of stream items applied so far."""
        return self._update_count

    @property
    def buffer_percentage(self) -> float:
        """Fraction of stored sketch edges that had to go to the buffer."""
        total = self._matrix.matrix_edge_count + len(self._buffer)
        if total == 0:
            return 0.0
        return len(self._buffer) / total

    # Python-backend structural views, kept for the occupancy-index property
    # tests (they raise on other backends, whose storage has no buckets).

    @property
    def _row_occupancy(self) -> Dict[int, List[int]]:
        return self._matrix._row_occupancy

    @property
    def _col_occupancy(self) -> Dict[int, List[int]]:
        return self._matrix._col_occupancy

    @property
    def _room_map(self) -> Dict[Tuple[int, int, int, int, int, int], List]:
        return self._matrix._room_map

    def occupancy(self) -> float:
        """Fraction of matrix rooms currently occupied."""
        capacity = self._width * self._width * self.config.rooms
        return self._matrix.matrix_edge_count / capacity if capacity else 0.0

    def memory_bytes(self, include_node_index: bool = False) -> int:
        """Memory footprint under the paper's C layout (see GSSConfig)."""
        total = self.config.matrix_memory_bytes() + self._buffer.memory_bytes()
        if include_node_index and self._node_index is not None:
            total += self._node_index.memory_bytes()
        return total

    def ingest(self, edges: Sequence) -> "GSS":
        """Feed an iterable of :class:`~repro.streaming.edge.StreamEdge`."""
        self.update_many((edge.source, edge.destination, edge.weight) for edge in edges)
        return self

    # -- protocol surface --------------------------------------------------------

    @classmethod
    def capabilities(cls) -> Capabilities:
        """Feature descriptor of the full GSS (see :class:`Capabilities`)."""
        return Capabilities(
            serializable=True,
            mergeable=True,
            by_hash=True,
        )

    def to_dict(self, include_node_index: bool = True) -> Dict:
        """Serialize into the snapshot document of :mod:`repro.core.serialization`."""
        from repro.core.serialization import sketch_to_dict

        return sketch_to_dict(self, include_node_index=include_node_index)

    @classmethod
    def from_dict(cls, document: Dict, backend: Optional[str] = None) -> "GSS":
        """Rebuild a sketch from a :meth:`to_dict` document.

        ``backend`` optionally re-targets the restored sketch onto a different
        matrix backend (see :func:`repro.core.serialization.sketch_from_dict`).
        """
        from repro.core.serialization import sketch_from_dict

        return sketch_from_dict(document, backend=backend)
