"""Reading and writing graph streams as plain text.

The on-disk format is one item per line::

    source destination weight timestamp [label]

which matches the edge-list conventions of the SNAP / KONECT datasets the
paper evaluates on.  Comment lines start with ``#``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.streaming.edge import StreamEdge
from repro.streaming.stream import GraphStream


def write_edge_file(stream: GraphStream, path: Union[str, Path]) -> None:
    """Write a stream to ``path`` in the whitespace-separated edge format."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write("# source destination weight timestamp label\n")
        for edge in stream:
            fields = [
                str(edge.source),
                str(edge.destination),
                repr(float(edge.weight)),
                repr(float(edge.timestamp)),
            ]
            if edge.label:
                fields.append(edge.label)
            handle.write(" ".join(fields) + "\n")


def read_edge_file(path: Union[str, Path], name: str = "") -> GraphStream:
    """Read a stream previously written by :func:`write_edge_file`.

    Lines with only two fields are accepted as unweighted edges (weight 1,
    timestamp equal to the line position), so raw SNAP edge lists load too.
    """
    path = Path(path)
    stream = GraphStream(name=name or path.stem)
    with path.open("r", encoding="utf-8") as handle:
        for position, line in enumerate(handle):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if len(fields) < 2:
                raise ValueError(f"malformed edge line {position}: {line!r}")
            source, destination = fields[0], fields[1]
            weight = float(fields[2]) if len(fields) > 2 else 1.0
            timestamp = float(fields[3]) if len(fields) > 3 else float(position)
            label = fields[4] if len(fields) > 4 else ""
            stream.append(
                StreamEdge(
                    source=source,
                    destination=destination,
                    weight=weight,
                    timestamp=timestamp,
                    label=label,
                )
            )
    return stream
