"""Analytical model of the left-over buffer size (Section VI-D).

For an arriving edge ``e`` with ``D`` adjacent edges among ``N`` edges already
stored, matrix width ``m``, ``r`` addresses per node, ``l`` rooms per bucket
and ``k`` probed candidate buckets, the probability that one candidate bucket
still has a free room is (Equation 16/18)

    Pr = sum_{n=0}^{l-1} sum_{a=0}^{n}
         C(N - D, a) * C(D, n - a) * (1 / m^2)^a * (1 / (r m))^{n - a}
         * exp(-((N - D - a) / m^2 + (D - n + a) / (r m)))

and the probability that the edge becomes a left-over is ``(1 - Pr)^k``
(Equation 17).  The paper's worked example (N = 1e6, D = 1e4, m = 1000,
r = 8, l = 3, k = 8) gives about 0.002, which the tests check.
"""

from __future__ import annotations

import math


def bucket_availability_probability(
    stored_edges: int,
    adjacent_edges: int,
    matrix_width: int,
    sequence_length: int,
    rooms: int,
) -> float:
    """``Pr`` of Equation 16 — one candidate bucket still has a free room."""
    if matrix_width <= 0 or sequence_length <= 0 or rooms <= 0:
        raise ValueError("matrix_width, sequence_length and rooms must be positive")
    if stored_edges < 0 or adjacent_edges < 0 or adjacent_edges > stored_edges:
        raise ValueError("need 0 <= adjacent_edges <= stored_edges")

    non_adjacent = stored_edges - adjacent_edges
    cell_probability = 1.0 / (matrix_width * matrix_width)
    strip_probability = 1.0 / (sequence_length * matrix_width)

    total = 0.0
    for occupied in range(rooms):
        for from_non_adjacent in range(occupied + 1):
            from_adjacent = occupied - from_non_adjacent
            if from_non_adjacent > non_adjacent or from_adjacent > adjacent_edges:
                continue
            term = (
                math.comb(non_adjacent, from_non_adjacent)
                * math.comb(adjacent_edges, from_adjacent)
                * (cell_probability ** from_non_adjacent)
                * (strip_probability ** from_adjacent)
                * math.exp(
                    -(
                        (non_adjacent - from_non_adjacent) * cell_probability
                        + (adjacent_edges - occupied + from_non_adjacent) * strip_probability
                    )
                )
            )
            total += term
    return min(1.0, total)


def insertion_failure_probability(
    stored_edges: int,
    adjacent_edges: int,
    matrix_width: int,
    sequence_length: int,
    rooms: int,
    candidate_buckets: int,
) -> float:
    """``P`` of Equation 17 — the arriving edge cannot be placed in the matrix."""
    if candidate_buckets <= 0:
        raise ValueError("candidate_buckets must be positive")
    availability = bucket_availability_probability(
        stored_edges, adjacent_edges, matrix_width, sequence_length, rooms
    )
    return (1.0 - availability) ** candidate_buckets


def expected_buffer_fraction(
    total_edges: int,
    matrix_width: int,
    sequence_length: int,
    rooms: int,
    candidate_buckets: int,
    adjacent_fraction: float = 0.01,
    steps: int = 50,
) -> float:
    """Rough expected fraction of edges that end up in the buffer.

    Integrates the insertion-failure probability as the matrix fills: the
    ``i``-th step inserts ``total_edges / steps`` edges with ``N`` equal to the
    number already stored.  It is an upper-bound style estimate (collisions in
    the sketch mapping are ignored), matching the paper's analysis.
    """
    if total_edges <= 0:
        return 0.0
    if not 0 <= adjacent_fraction <= 1:
        raise ValueError("adjacent_fraction must be in [0, 1]")
    per_step = total_edges / steps
    failures = 0.0
    for step in range(steps):
        stored = int(step * per_step)
        adjacent = int(stored * adjacent_fraction)
        failures += per_step * insertion_failure_probability(
            stored, adjacent, matrix_width, sequence_length, rooms, candidate_buckets
        )
    return failures / total_edges
