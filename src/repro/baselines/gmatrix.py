"""gMatrix (Khan & Aggarwal, 2016): TCM with reversible hash functions.

gMatrix keeps the same hashed adjacency matrices as TCM but replaces the
per-sketch reverse hash table with *reversible* hash functions, so node
identifiers can be recovered directly from matrix coordinates.  The price is
that the reverse procedure cannot distinguish which of the node identifiers
mapping to a given cell actually occurred in the stream, which introduces
additional error — the reason the paper reports gMatrix accuracy as "no better
than TCM, sometimes even worse".

Our implementation interns node IDs to consecutive integers and uses an affine
permutation ``H(x) = (a * x + b) mod p mod width`` whose pre-images can be
enumerated, which captures exactly that behaviour.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.core.backends import resolve_counter_backend_name
from repro.hashing.vectorized import load_numpy
from repro.queries.primitives import Capabilities, SummaryShims


class GMatrix(SummaryShims):
    """Single-sketch gMatrix with a reversible affine node hash.

    ``backend`` selects the counter storage (``python`` list / ``numpy``
    float64 array / ``auto``); interning is a Python dict either way because
    the affine hash is keyed by arrival order.
    """

    def __init__(
        self,
        width: int,
        universe_size: int = 1 << 20,
        multiplier: int = 2654435761,
        increment: int = 1013904223,
        seed: int = 0,
        backend: str = "python",
    ) -> None:
        if width <= 0:
            raise ValueError("width must be positive")
        self.width = width
        self.universe_size = universe_size
        self.seed = seed
        self.multiplier = multiplier + 2 * seed  # keep it odd so it stays invertible
        if self.multiplier % 2 == 0:
            self.multiplier += 1
        self.increment = increment + seed
        self.backend = resolve_counter_backend_name(backend)
        if self.backend == "numpy":
            np = load_numpy()
            self.counters = np.zeros(width * width, dtype=np.float64)
        else:
            self.counters: List[float] = [0.0] * (width * width)
        self._intern: Dict[Hashable, int] = {}
        self._known_ids: List[Hashable] = []
        self._update_count = 0

    # -- hashing --------------------------------------------------------------

    def _intern_node(self, node: Hashable) -> int:
        index = self._intern.get(node)
        if index is None:
            index = len(self._known_ids)
            self._intern[node] = index
            self._known_ids.append(node)
        return index

    def _hash(self, interned: int) -> int:
        return ((self.multiplier * interned + self.increment) % self.universe_size) % self.width

    def _reverse(self, cell: int) -> Set[Hashable]:
        """All *seen* node IDs whose hash equals ``cell``.

        A true reversible hash would enumerate the whole universe; restricting
        to seen nodes is the most favourable interpretation for gMatrix and
        still exhibits the extra collision error the paper describes.
        """
        return {
            node
            for node, interned in self._intern.items()
            if self._hash(interned) == cell
        }

    # -- updates ------------------------------------------------------------------

    def update(self, source: Hashable, destination: Hashable, weight: float = 1.0) -> None:
        """Apply one stream item."""
        self._update_count += 1
        row = self._hash(self._intern_node(source))
        column = self._hash(self._intern_node(destination))
        self.counters[row * self.width + column] += weight

    def update_many(self, items: Iterable[Tuple[Hashable, Hashable, float]]) -> int:
        """Apply a batch of stream items, pre-aggregated per edge.

        Interning happens in first-seen order (the order the scalar path
        would intern), so the affine hashes are identical; on the NumPy
        backend the aggregated weights land in one counter scatter.
        """
        triples = items if isinstance(items, list) else list(items)
        if not triples:
            return 0
        count = len(triples)
        aggregated: Dict[Tuple[int, int], float] = {}
        for source, destination, weight in triples:
            key = (
                self._hash(self._intern_node(source)),
                self._hash(self._intern_node(destination)),
            )
            aggregated[key] = aggregated.get(key, 0.0) + weight
        if self.backend == "numpy":
            np = load_numpy()
            positions = np.fromiter(
                (row * self.width + column for row, column in aggregated),
                dtype=np.int64,
                count=len(aggregated),
            )
            weights = np.fromiter(
                aggregated.values(), dtype=np.float64, count=len(aggregated)
            )
            self.counters += np.bincount(
                positions, weights=weights, minlength=len(self.counters)
            )
        else:
            for (row, column), weight in aggregated.items():
                self.counters[row * self.width + column] += weight
        self._update_count += count
        return count

    def ingest(self, edges) -> "GMatrix":
        """Feed an iterable of stream edges."""
        for edge in edges:
            self.update(edge.source, edge.destination, edge.weight)
        return self

    # -- primitives ------------------------------------------------------------------

    def edge_query(self, source: Hashable, destination: Hashable) -> Optional[float]:
        """Estimated edge weight, or ``None`` when the counter is zero.

        A non-zero counter — including a negative one after deletions — is
        reported as-is, so a real edge deleted below zero stays
        distinguishable from an absent edge (only a counter deleted to
        exactly zero is indistinguishable, which is inherent to counter
        sketches).
        """
        if source not in self._intern or destination not in self._intern:
            return None
        row = self._hash(self._intern[source])
        column = self._hash(self._intern[destination])
        value = float(self.counters[row * self.width + column])
        return value if value != 0.0 else None

    def successor_query(self, node: Hashable) -> Set[Hashable]:
        """Original IDs recovered by reversing the non-zero columns of the row."""
        if node not in self._intern:
            return set()
        row = self._hash(self._intern[node])
        base = row * self.width
        result: Set[Hashable] = set()
        for column in range(self.width):
            if self.counters[base + column] > 0:
                result |= self._reverse(column)
        return result

    def precursor_query(self, node: Hashable) -> Set[Hashable]:
        """Original IDs recovered by reversing the non-zero rows of the column."""
        if node not in self._intern:
            return set()
        column = self._hash(self._intern[node])
        result: Set[Hashable] = set()
        for row in range(self.width):
            if self.counters[row * self.width + column] > 0:
                result |= self._reverse(row)
        return result

    def node_out_weight(self, node: Hashable) -> float:
        """Aggregated out-weight estimate (sum of the node's row)."""
        if node not in self._intern:
            return 0.0
        row = self._hash(self._intern[node])
        base = row * self.width
        return float(sum(self.counters[base:base + self.width]))

    # -- introspection ------------------------------------------------------------------

    @property
    def update_count(self) -> int:
        """Number of stream items applied."""
        return self._update_count

    def memory_bytes(self) -> int:
        """Counter memory under a C layout (32-bit counters)."""
        return self.width * self.width * 4

    @classmethod
    def capabilities(cls) -> Capabilities:
        """Feature descriptor: reversible topology queries, no in-weight query."""
        return Capabilities(
            node_in_weights=False,
            serializable=True,
        )

    def to_dict(self) -> Dict:
        """Serialize counters plus the interning table (arrival order matters:
        it determines every node's affine hash)."""
        if not all(
            isinstance(node, (str, int, float, bool)) for node in self._known_ids
        ):
            raise ValueError(
                "gMatrix serialization requires scalar node IDs (the interning "
                "order must be reconstructable from JSON)"
            )
        return {
            "sketch": "gmatrix",
            "width": self.width,
            "universe_size": self.universe_size,
            "seed": self.seed,
            # The affine coefficients are recorded directly: they may have
            # been customised at construction, and every hash depends on them.
            "multiplier": self.multiplier,
            "increment": self.increment,
            "backend": self.backend,
            "update_count": self._update_count,
            "counters": [float(value) for value in self.counters],
            "known_ids": list(self._known_ids),
        }

    @classmethod
    def from_dict(cls, document: Dict, backend: Optional[str] = None) -> "GMatrix":
        """Rebuild a gMatrix from a :meth:`to_dict` document."""
        summary = cls(
            width=document["width"],
            universe_size=document.get("universe_size", 1 << 20),
            seed=document.get("seed", 0),
            backend=backend if backend is not None else document.get("backend", "python"),
        )
        if "multiplier" in document:
            summary.multiplier = document["multiplier"]
        if "increment" in document:
            summary.increment = document["increment"]
        counters = document["counters"]
        if summary.backend == "numpy":
            np = load_numpy()
            summary.counters = np.asarray(counters, dtype=np.float64)
        else:
            summary.counters = [float(value) for value in counters]
        for node in document.get("known_ids", []):
            summary._intern_node(node)
        summary._update_count = document.get("update_count", 0)
        return summary
