"""Tests for :mod:`repro.cluster`: multi-process sharded ingestion/queries.

The load-bearing law is *deployment equivalence*: a ``ShardedSummary`` and a
single-process ``PartitionedGSS`` with the same shard count, shard
configuration and routing seed answer every query identically on the same
stream — crossing process boundaries changes throughput, never answers.
"""

from __future__ import annotations

import pytest

from repro.api import (
    SketchSpec,
    StreamSession,
    build,
    from_dict,
    sketch_info,
)
from repro.cluster import ClusterError, ShardedSummary
from repro.cluster.transport import shm_available
from repro.core.config import GSSConfig
from repro.core.partitioned import PartitionedGSS
from repro.hashing import count_key_hashes

#: Shard parameters shared by the cluster and the in-process reference.
SHARD_PARAMS = dict(matrix_width=24, sequence_length=4, candidate_buckets=4)


def inner_spec(**overrides) -> SketchSpec:
    return SketchSpec("gss", params={**SHARD_PARAMS, **overrides})


def shard_config() -> GSSConfig:
    return GSSConfig(**SHARD_PARAMS)


@pytest.fixture()
def cluster():
    summary = ShardedSummary(inner_spec(), workers=2)
    yield summary
    summary.close()


@pytest.fixture(params=["pipe", "shm"])
def transport(request):
    """Every concrete data-plane transport available in this environment."""
    if request.param == "shm" and not shm_available():
        pytest.skip("shared-memory transport needs NumPy and shared_memory")
    return request.param


class TestConstruction:
    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            ShardedSummary(inner_spec(), workers=0)

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            ShardedSummary(inner_spec(), workers=1, batch_size=0)

    def test_unsized_inner_spec_fails_the_build_handshake(self):
        with pytest.raises(ClusterError, match="SpecSizingError"):
            ShardedSummary(SketchSpec("gss"), workers=1)

    def test_registry_build_and_capabilities(self):
        with build("sharded-gss", memory_bytes=32 * 1024, params={"workers": 2}) as summary:
            assert isinstance(summary, ShardedSummary)
            assert summary.workers == 2
            assert summary.capabilities() == sketch_info("sharded-gss").capabilities

    def test_registry_splits_the_memory_budget_across_workers(self):
        budget = 64 * 1024
        with build("sharded-gss", memory_bytes=budget, params={"workers": 4}) as summary:
            per_shard = summary.shard_memory_bytes()
            assert len(per_shard) == 4
            assert len(set(per_shard)) == 1  # equal shards
            assert budget / 2 <= summary.memory_bytes() <= budget

    def test_registry_rejects_unknown_params(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            build("sharded-gss", memory_bytes=4096, params={"shards": 3})

    def test_context_manager_closes(self):
        with ShardedSummary(inner_spec(), workers=1) as summary:
            summary.update("a", "b")
        assert summary.closed
        with pytest.raises(ClusterError, match="closed"):
            summary.edge_query("a", "b")

    def test_close_is_idempotent(self, cluster):
        cluster.close()
        cluster.close()
        assert cluster.closed


class TestUpdatesAndQueries:
    def test_scalar_updates_visible_to_queries(self, cluster):
        cluster.update("a", "b", 2.0)
        cluster.update("a", "b", 1.0)
        assert cluster.edge_query("a", "b") == 3.0
        assert cluster.edge_query("ghost", "nothing") is None

    def test_update_many_returns_count_and_accepts_generators(self, cluster):
        count = cluster.update_many(
            (f"s{i % 3}", f"d{i % 5}", 1.0) for i in range(40)
        )
        assert count == 40
        assert cluster.update_count == 40

    def test_scalar_and_batched_ingestion_agree(self):
        items = [(f"n{i % 7}", f"n{(i * 3 + 1) % 9}", float(1 + i % 3)) for i in range(120)]
        with ShardedSummary(inner_spec(), workers=2, batch_size=16) as scalar:
            for source, destination, weight in items:
                scalar.update(source, destination, weight)
            with ShardedSummary(inner_spec(), workers=2) as batched:
                batched.update_many(items)
                for source, destination, _ in items:
                    assert scalar.edge_query(source, destination) == batched.edge_query(
                        source, destination
                    )

    def test_interleaved_scalar_and_batch_preserve_shard_order(self, cluster):
        # Scalar updates coalesce client-side; a following update_many must
        # not overtake them inside a shard (deletions make order observable
        # at the weight level only, but the invariant matters for windowed
        # inner sketches and is cheap to hold).
        cluster.update("a", "b", 5.0)
        cluster.update_many([("a", "b", -3.0)])
        assert cluster.edge_query("a", "b") == 2.0

    def test_flush_is_a_barrier(self, cluster):
        cluster.update_many([(f"s{i}", f"d{i}", 1.0) for i in range(50)])
        cluster.flush()
        stats = cluster.shard_ingest_stats()
        assert stats.total_items == 50

    def test_worker_exception_propagates_as_cluster_error(self):
        spec = inner_spec(keep_node_index=False)
        with ShardedSummary(spec, workers=1) as summary:
            summary.update("a", "b")
            # GSS without a node index refuses original-ID neighbor queries;
            # the worker's traceback must surface in the parent.
            with pytest.raises(ClusterError, match="keep_node_index"):
                summary.successor_query("a")

    def test_shard_stays_usable_after_a_worker_error(self):
        # Regression: an "err" reply must still be counted against the
        # pending-reply counter, or the next request on the shard would wait
        # for a reply the worker already sent and hang forever.
        spec = inner_spec(keep_node_index=False)
        with ShardedSummary(spec, workers=1) as summary:
            summary.update("a", "b", 2.0)
            with pytest.raises(ClusterError):
                summary.successor_query("a")
            assert summary.edge_query("a", "b") == 2.0
            with pytest.raises(ClusterError):
                summary.precursor_query("a")
            summary.update("a", "c", 1.0)
            summary.flush()
            assert summary.edge_query("a", "c") == 1.0

    def test_deletions_route_like_insertions(self, cluster):
        cluster.update("x", "y", 5.0)
        cluster.update("x", "y", -2.0)
        assert cluster.edge_query("x", "y") == 3.0


class TestPartitionedEquivalence:
    """Cluster answers == single-process PartitionedGSS answers, always."""

    @pytest.fixture()
    def fed_pair(self, small_stream):
        reference = PartitionedGSS(shard_config(), partitions=3, routing_seed=97)
        summary = ShardedSummary(inner_spec(), workers=3, routing_seed=97)
        items = [(e.source, e.destination, e.weight) for e in small_stream]
        reference.update_many(items)
        summary.update_many(items)
        yield reference, summary, small_stream
        summary.close()

    def test_edge_queries_identical(self, fed_pair):
        reference, summary, stream = fed_pair
        for key in list(stream.aggregate_weights())[:150]:
            assert summary.edge_query(*key) == reference.edge_query(*key)
        assert summary.edge_query("ghost", "nothing") is None

    def test_topology_queries_identical(self, fed_pair):
        reference, summary, stream = fed_pair
        for node in stream.nodes()[:60]:
            assert summary.successor_query(node) == reference.successor_query(node)
            assert summary.precursor_query(node) == reference.precursor_query(node)

    def test_node_weights_identical(self, fed_pair):
        reference, summary, stream = fed_pair
        for node in stream.nodes()[:40]:
            assert summary.node_out_weight(node) == pytest.approx(
                reference.node_out_weight(node)
            )
            assert summary.node_in_weight(node) == pytest.approx(
                reference.node_in_weight(node)
            )

    def test_same_routing_hash_as_partitioned(self, fed_pair):
        reference, summary, stream = fed_pair
        for node in stream.nodes()[:60]:
            assert summary.shard_of(node) == reference.shard_of(node)


def transports_available():
    return ["pipe", "shm"] if shm_available() else ["pipe"]


def nasty_items():
    """Insertions, repeats, deletions and enough distinct edges to overflow
    a deliberately undersized shard matrix into the leftover buffer."""
    items = []
    for i in range(400):
        items.append((f"n{i % 29}", f"n{(i * 7 + 2) % 31}", float(1 + i % 5)))
    for i in range(0, 400, 7):
        items.append((f"n{i % 29}", f"n{(i * 7 + 2) % 31}", -1.0))
    return items


class TestTransports:
    """The data-plane transport changes throughput, never answers or stats."""

    def test_transport_property_reports_effective_plane(self, transport):
        with ShardedSummary(inner_spec(), workers=1, transport=transport) as summary:
            assert summary.transport == transport

    def test_auto_resolves_to_an_available_transport(self):
        with ShardedSummary(inner_spec(), workers=1) as summary:
            assert summary.transport == ("shm" if shm_available() else "pipe")

    def test_explicit_shm_degrades_to_pipe_with_a_warning(self, monkeypatch):
        from repro.cluster import transport as transport_module

        monkeypatch.setattr(transport_module, "NUMPY_AVAILABLE", False)
        with pytest.warns(RuntimeWarning, match="falling back"):
            summary = ShardedSummary(inner_spec(), workers=1, transport="shm")
        with summary:
            summary.update("a", "b", 2.0)
            assert summary.transport == "pipe"
            assert summary.edge_query("a", "b") == 2.0

    def test_unknown_transport_is_rejected(self):
        with pytest.raises(ValueError, match="unknown transport"):
            ShardedSummary(inner_spec(), workers=1, transport="carrier-pigeon")

    def test_every_query_identical_across_transports_and_reference(self):
        # Deletions and buffer-overflow keys ride along: shard matrices of
        # width 8 cannot hold the ~400 distinct edges, so the leftover
        # buffer path crosses the transports too.
        items = nasty_items()
        config = GSSConfig(matrix_width=8, sequence_length=4, candidate_buckets=4)
        reference = PartitionedGSS(config, partitions=2, routing_seed=97)
        reference.update_many(items)
        assert reference.buffer_edge_count > 0  # the overflow is real
        keys = sorted({(source, destination) for source, destination, _ in items})
        nodes = sorted({key for pair in keys for key in pair})
        for transport in transports_available():
            with ShardedSummary(
                inner_spec(matrix_width=8), workers=2, transport=transport
            ) as summary:
                for start in range(0, len(items), 64):
                    summary.update_many(items[start : start + 64])
                for key in keys:
                    assert summary.edge_query(*key) == reference.edge_query(*key), (
                        transport,
                        key,
                    )
                for node in nodes:
                    assert summary.successor_query(node) == (
                        reference.successor_query(node)
                    )
                    assert summary.precursor_query(node) == (
                        reference.precursor_query(node)
                    )
                    assert summary.node_out_weight(node) == pytest.approx(
                        reference.node_out_weight(node)
                    )
                    assert summary.node_in_weight(node) == pytest.approx(
                        reference.node_in_weight(node)
                    )

    def test_ingest_stats_identical_across_transports(self):
        # max_pending_batches=1 plus a flush per chunk pins the queue-depth
        # high-water mark (otherwise timing-dependent: the handles drain
        # replies opportunistically) so all three observable stats must be
        # bit-identical across data planes.
        items = [(f"s{i % 17}", f"d{i % 5}", 1.0) for i in range(300)]
        observed = {}
        for transport in transports_available():
            with ShardedSummary(
                inner_spec(),
                workers=2,
                transport=transport,
                max_pending_batches=1,
            ) as summary:
                for start in range(0, len(items), 50):
                    summary.update_many(items[start : start + 50])
                    summary.flush()
                stats = summary.shard_ingest_stats()
                observed[transport] = (
                    stats.items_routed,
                    stats.queue_depth_high_water,
                    stats.routing_imbalance,
                )
        first = next(iter(observed.values()))
        assert all(value == first for value in observed.values()), observed
        assert first[1] == 1  # every chunk waited out: depth never exceeded 1

    def test_client_hashes_each_routed_batch_exactly_once(self, transport):
        # The end-to-end hash-once law, observed at the client: routing a
        # batch costs one node hash per distinct key plus one routing hash
        # per distinct source — never one hash per item per layer.  (The
        # workers consume the shipped columns; their processes do not hash.)
        items = [(f"s{i % 11}", f"d{i % 13}", 1.0) for i in range(500)]
        nodes = {key for source, destination, _ in items for key in (source, destination)}
        sources = {source for source, _, _ in items}
        with ShardedSummary(inner_spec(), workers=2, transport=transport) as summary:
            with count_key_hashes() as counter:
                summary.update_many(items)
            assert counter.count == len(nodes) + len(sources)
            with count_key_hashes() as counter:
                summary.update_many(items)
                summary.flush()
            assert counter.count == 0  # memoized across batches
            assert summary.edge_query("s1", "d1") is not None

    def test_interleaved_scalar_and_batch_preserve_order_on_all_transports(
        self, transport
    ):
        with ShardedSummary(inner_spec(), workers=2, transport=transport) as summary:
            summary.update("a", "b", 5.0)
            summary.update_many([("a", "b", -3.0)])
            assert summary.edge_query("a", "b") == 2.0

    def test_session_feed_equivalent_across_transports(self, small_stream):
        # StreamSession builds the hashed batches in this configuration (the
        # cluster publishes its hash spec), so this exercises the session →
        # routing → transport → backend pipeline end to end, timestamps and
        # all (small_stream items carry timestamps; unwindowed summaries
        # drop them uniformly).
        reference = PartitionedGSS(shard_config(), partitions=2, routing_seed=97)
        StreamSession(reference, batch_size=64).feed(small_stream)
        for transport in transports_available():
            with ShardedSummary(inner_spec(), workers=2, transport=transport) as summary:
                report = StreamSession(summary, batch_size=64).feed(small_stream)
                assert report.items == len(small_stream)
                for key in list(small_stream.aggregate_weights())[:100]:
                    assert summary.edge_query(*key) == reference.edge_query(*key)


class TestIngestStats:
    def test_items_routed_cover_every_item(self, cluster):
        cluster.update_many([(f"s{i % 11}", f"d{i}", 1.0) for i in range(200)])
        stats = cluster.shard_ingest_stats()
        assert len(stats.items_routed) == 2
        assert stats.total_items == 200
        assert stats.routing_imbalance >= 1.0
        assert stats.queue_depth_high_water >= 1

    def test_empty_cluster_stats_do_not_divide_by_zero(self, cluster):
        stats = cluster.shard_ingest_stats()
        assert stats.items_routed == [0, 0]
        assert stats.routing_imbalance == 1.0
        assert stats.queue_depth_high_water == 0


class TestSerialization:
    def test_to_dict_from_dict_round_trip(self, cluster):
        items = [(f"n{i % 9}", f"n{(i * 5 + 2) % 9}", float(1 + i % 2)) for i in range(80)]
        cluster.update_many(items)
        document = cluster.to_dict()
        assert document["sketch"] == "sharded-gss"
        restored = from_dict(document)  # registry dispatch on the tag
        try:
            assert restored.update_count == cluster.update_count
            assert restored.shard_ingest_stats().items_routed == (
                cluster.shard_ingest_stats().items_routed
            )
            for source, destination, _ in items:
                assert restored.edge_query(source, destination) == cluster.edge_query(
                    source, destination
                )
        finally:
            restored.close()

    def test_from_dict_rejects_foreign_documents(self):
        with pytest.raises(ValueError, match="not a sharded-gss snapshot"):
            ShardedSummary.from_dict({"sketch": "gss"})

    def test_from_dict_rejects_shard_count_mismatch(self, cluster):
        document = cluster.to_dict()
        document["shards"] = document["shards"][:1]
        with pytest.raises(ValueError, match="shard documents"):
            ShardedSummary.from_dict(document)


class TestStreamSessionIntegration:
    def test_session_feeds_cluster_and_surfaces_shard_stats(self, small_stream):
        with build(
            "sharded-gss",
            expected_edges=max(1, small_stream.statistics().distinct_edges),
            params={"workers": 2},
        ) as summary:
            report = StreamSession(summary, batch_size=128).feed(small_stream)
            assert report.items == len(small_stream)
            assert sum(report.shard_items) == len(small_stream)
            assert report.queue_depth_high_water >= 1
            assert report.routing_imbalance >= 1.0
            # The session's trailing flush() barrier means every item has
            # been applied by the time the report exists.
            assert summary.shard_ingest_stats().total_items == len(small_stream)

    def test_session_auto_sizes_cluster_spec_from_stream(self, small_stream):
        session = StreamSession(SketchSpec("sharded-gss", params={"workers": 2}))
        session.feed(small_stream)
        try:
            truth = small_stream.aggregate_weights()
            for key, weight in list(truth.items())[:50]:
                assert session.summary.edge_query(*key) >= weight
        finally:
            session.summary.close()
