"""Update-throughput measurement (Table I).

The paper reports update speed in million insertions per second (Mips) for
GSS, GSS without candidate sampling, TCM and the adjacency list.  Absolute
numbers from a pure-Python implementation are not comparable with the paper's
C++ measurements; what the reproduction preserves is the *relative* ordering
and ratios, which the experiment reports alongside edges-per-second.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence


def _barrier(store: object) -> None:
    """Wait for any pipelined ingestion to complete (inside the timed region).

    Summaries that queue work to background workers (the
    :mod:`repro.cluster` deployment) expose ``flush()``; timing must include
    it or the measurement would cover routing only, not the sketch work.
    No-op for synchronous stores.
    """
    flush = getattr(store, "flush", None)
    if callable(flush):
        flush()


@dataclass(frozen=True)
class Throughput:
    """Result of one throughput measurement."""

    label: str
    items: int
    seconds: float

    @property
    def items_per_second(self) -> float:
        """Raw update rate."""
        if self.seconds <= 0:
            return float("inf")
        return self.items / self.seconds

    @property
    def mips(self) -> float:
        """Million insertions per second (the paper's unit)."""
        return self.items_per_second / 1_000_000.0


def measure_update_throughput(
    make_store: Callable[[], object],
    edges: Sequence,
    label: str = "",
    repeats: int = 1,
    teardown: Optional[Callable[[object], None]] = None,
) -> Throughput:
    """Time how fast a freshly built store ingests ``edges``.

    ``make_store`` builds a new empty store each repeat so that repeated runs
    measure the same cold-start insertion workload the paper uses ("in each
    data set we insert all the edges ... repeat this procedure ... and
    calculate the average speed").  ``teardown`` runs on each store after its
    (fully flushed) measurement — outside the timed region — so stores owning
    external resources (cluster worker processes) release them per repeat.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    total_seconds = 0.0
    for _ in range(repeats):
        store = make_store()
        started = time.perf_counter()
        for edge in edges:
            store.update(edge.source, edge.destination, edge.weight)
        _barrier(store)
        total_seconds += time.perf_counter() - started
        if teardown is not None:
            teardown(store)
    return Throughput(label=label, items=len(edges) * repeats, seconds=total_seconds)


def measure_batch_update_throughput(
    make_store: Callable[[], object],
    edges: Sequence,
    label: str = "",
    repeats: int = 1,
    batch_size: int = 1024,
    teardown: Optional[Callable[[object], None]] = None,
) -> Throughput:
    """Time how fast a store ingests ``edges`` through its ``update_many`` API.

    The edge list is converted to ``(source, destination, weight)`` triples
    outside the timed region (that conversion is stream I/O, not sketch
    work), then fed in ``batch_size`` chunks so the comparison against
    :func:`measure_update_throughput` isolates the batching win.  The timed
    region ends with the store's ``flush()`` barrier (when it has one), so
    pipelined multi-process stores are charged for the sketch work, not just
    the routing; ``teardown`` releases per-repeat resources untimed.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    triples = [(edge.source, edge.destination, edge.weight) for edge in edges]
    total_seconds = 0.0
    for _ in range(repeats):
        store = make_store()
        started = time.perf_counter()
        for start in range(0, len(triples), batch_size):
            store.update_many(triples[start:start + batch_size])
        _barrier(store)
        total_seconds += time.perf_counter() - started
        if teardown is not None:
            teardown(store)
    return Throughput(label=label, items=len(triples) * repeats, seconds=total_seconds)


def relative_speed(reference: Throughput, others: Iterable[Throughput]) -> dict:
    """Speed of each measurement relative to ``reference`` (reference = 1.0)."""
    base = reference.items_per_second
    return {
        other.label: (other.items_per_second / base if base else float("nan"))
        for other in others
    }
