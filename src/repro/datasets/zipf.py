"""Zipfian sampling used to weight edges and to skew node popularity.

The paper adds edge weights drawn from a Zipfian distribution to the SNAP
datasets ("the edge weight represents the appearance times in the stream").
We reproduce that with a small finite-support Zipf sampler built on the
standard library's :mod:`random`, so no numpy dependency is required in the
core package.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import List, Sequence


class ZipfSampler:
    """Draw integers ``1..support`` with probability proportional to ``rank^-s``.

    A cumulative table plus binary search keeps draws O(log support), which is
    plenty fast for the stream sizes used in the experiments.
    """

    def __init__(self, exponent: float = 1.5, support: int = 100, rng: random.Random = None) -> None:
        if exponent <= 0:
            raise ValueError("exponent must be positive")
        if support < 1:
            raise ValueError("support must be at least 1")
        self.exponent = exponent
        self.support = support
        self._rng = rng if rng is not None else random.Random(0)
        masses = [rank ** (-exponent) for rank in range(1, support + 1)]
        total = sum(masses)
        self._cumulative = list(itertools.accumulate(mass / total for mass in masses))

    def sample(self) -> int:
        """Draw one value in ``[1, support]``."""
        u = self._rng.random()
        return bisect.bisect_left(self._cumulative, u) + 1

    def sample_many(self, count: int) -> List[int]:
        """Draw ``count`` independent values."""
        return [self.sample() for _ in range(count)]


def zipf_weights(count: int, exponent: float = 1.5, support: int = 100, seed: int = 0) -> List[float]:
    """Return ``count`` Zipf-distributed edge weights as floats."""
    sampler = ZipfSampler(exponent=exponent, support=support, rng=random.Random(seed))
    return [float(value) for value in sampler.sample_many(count)]


def zipf_ranks(population: Sequence, count: int, exponent: float = 1.2, seed: int = 0) -> List:
    """Pick ``count`` members of ``population`` with Zipfian popularity by rank."""
    sampler = ZipfSampler(exponent=exponent, support=len(population), rng=random.Random(seed))
    return [population[rank - 1] for rank in sampler.sample_many(count)]
