"""Figure 3 — theoretical influence of ``M`` on the primitives' accuracy."""

from __future__ import annotations

from repro.analysis.figure3 import figure3_series
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import ExperimentResult


def run_figure3(config: ExperimentConfig = None) -> ExperimentResult:
    """Recompute the three panels of Figure 3 from the Section VI analysis.

    The rows contain, for every ``M / |V|`` ratio and degree, the theoretical
    correct rate of the edge query and of the 1-hop successor / precursor
    queries.  The qualitative claim the paper draws from the figure — that the
    successor accuracy only exceeds 80% once ``M/|V|`` is in the hundreds — is
    directly visible in the rows and asserted by the benchmark.
    """
    config = config or ExperimentConfig()
    node_count = config.extras.get("figure3_nodes", 100_000)
    average_degree = config.extras.get("figure3_average_degree", 5.0)
    series = figure3_series(node_count=node_count, average_degree=average_degree)

    result = ExperimentResult(
        experiment="fig3",
        description="theoretical correct rate of the query primitives vs M/|V|",
        columns=["panel", "ratio", "degree", "correct_rate"],
    )
    for panel in ("edge_query", "successor_query", "precursor_query"):
        for point in series[panel]:
            result.add(
                panel=panel,
                ratio=point.ratio,
                degree=point.degree,
                correct_rate=point.correct_rate,
            )
    return result
