"""Protocol-conformance suite: every registered sketch, one set of laws.

Each sketch in the :mod:`repro.api` registry is built at the same fixed
memory budget, fed the same deterministic stream through
:class:`StreamSession`, and held to the contract its ``capabilities()``
declares:

* supported queries obey the one-sided error guarantees (estimates never
  below the truth, neighbour sets never missing a true neighbour);
* unsupported queries raise :class:`UnsupportedQueryError` — and the
  corresponding capability flag is ``False``;
* batched ingestion matches scalar ingestion;
* serializable sketches round-trip exactly through ``to_dict``/``from_dict``;
* the deprecated sentinel shims warn.
"""

from __future__ import annotations

import pytest

from repro.api import (
    GraphSummary,
    SketchSpec,
    StreamSession,
    UnsupportedQueryError,
    build,
    from_dict,
    list_sketches,
    sketch_info,
)
from repro.streaming.stream import stream_from_pairs

#: Fixed equal-memory budget every sketch is built at.
BUDGET_BYTES = 32 * 1024

#: Deterministic insert-only stream with duplicate edges and a hub node.
PAIRS = [
    (f"n{i % 7}", f"n{(i * 3 + 1) % 11}") for i in range(300)
] + [("hub", f"n{i % 11}") for i in range(60)]
WEIGHTS = [float(1 + (i % 4)) for i in range(len(PAIRS))]


def make_stream():
    return stream_from_pairs(PAIRS, WEIGHTS, name="conformance")


def _native_ready() -> bool:
    from repro.core._native import native_available

    return native_available()


#: Every law runs once on each leg: the registry's default backend, plus the
#: compiled ``native`` backend when a kernel can actually be built here (the
#: leg disappears — not fails — under REPRO_DISABLE_NATIVE/NUMBA or without
#: a C toolchain, mirroring the CI matrix).
BACKEND_LEGS = ["default"] + (["native"] if _native_ready() else [])


def spec_for(name: str, seed: int = 7, backend: str = "default") -> SketchSpec:
    params = {}
    kwargs = {}
    if name == "windowed-gss":
        # A window far longer than the stream: nothing expires, so the
        # windowed wrapper must agree with the plain aggregation laws.
        params["window_span"] = 1e9
    if backend != "default" and name != "gss-basic":
        # gss-basic is by definition the pure-Python reference structure;
        # every other sketch takes the backend request (counter sketches map
        # native onto their numpy storage via resolve_counter_backend_name).
        kwargs["backend"] = backend
    return SketchSpec(
        name, memory_bytes=BUDGET_BYTES, seed=seed, params=params, **kwargs
    )


def built_and_fed(name: str, seed: int = 7, backend: str = "default"):
    summary = build(spec_for(name, seed=seed, backend=backend))
    StreamSession(summary, batch_size=64).feed(make_stream())
    return summary


@pytest.fixture(scope="module")
def truth():
    stream = make_stream()
    return {
        "weights": stream.aggregate_weights(),
        "successors": stream.successors(),
        "precursors": stream.precursors(),
        "out_weights": stream.node_out_weights(),
        "nodes": stream.nodes(),
    }


@pytest.fixture(scope="module", params=BACKEND_LEGS)
def summaries(request):
    """One fed instance per registered sketch, shared across the suite.

    Parametrized over the backend legs, so every law below also holds with
    the GSS family running on the compiled native kernel.
    """
    backend = request.param
    return {name: built_and_fed(name, backend=backend) for name in list_sketches()}


@pytest.mark.parametrize("name", list_sketches())
class TestConformance:
    def test_satisfies_protocol(self, name, summaries):
        summary = summaries[name]
        assert isinstance(summary, GraphSummary)
        assert summary.capabilities() == sketch_info(name).capabilities

    def test_memory_budget_respected(self, name, summaries):
        # The factory picks the largest shape that fits; allow slack for
        # integer rounding and per-structure buffers, but a budget may never
        # be wildly exceeded and may not collapse to nothing.
        memory = summaries[name].memory_bytes()
        assert 0 < memory <= 2 * BUDGET_BYTES

    def test_edge_queries_one_sided(self, name, summaries, truth):
        summary = summaries[name]
        if not summary.capabilities().edge_queries:
            with pytest.raises(UnsupportedQueryError):
                summary.edge_query("hub", "n1")
            return
        for key, weight in truth["weights"].items():
            estimate = summary.edge_query(*key)
            assert estimate is not None, f"{name} missed true edge {key}"
            assert estimate >= weight - 1e-9
        # An edge over never-seen nodes is None or a float — never a sentinel.
        absent = summary.edge_query("ghost-node", "other-ghost")
        assert absent is None or isinstance(absent, float)

    def test_sentinel_shims_warn(self, name, summaries):
        summary = summaries[name]
        if not summary.capabilities().edge_queries:
            return
        with pytest.warns(DeprecationWarning):
            value = summary.edge_query_sentinel("ghost-node", "other-ghost")
        assert isinstance(value, float)
        with pytest.warns(DeprecationWarning):
            opt = summary.edge_query_opt("hub", "n1")
        assert opt == summary.edge_query("hub", "n1")

    def test_successor_queries(self, name, summaries, truth):
        summary = summaries[name]
        if not summary.capabilities().successor_queries:
            with pytest.raises(UnsupportedQueryError):
                summary.successor_query("hub")
            return
        for node in truth["nodes"]:
            reported = summary.successor_query(node)
            expected = truth["successors"].get(node, set())
            if name == "undirected-gss":
                # The undirected view reports the full neighbourhood.
                expected = expected | truth["precursors"].get(node, set())
            missing = expected - reported
            assert not missing, f"{name} missed successors {missing} of {node!r}"

    def test_precursor_queries(self, name, summaries, truth):
        summary = summaries[name]
        if not summary.capabilities().precursor_queries:
            with pytest.raises(UnsupportedQueryError):
                summary.precursor_query("hub")
            return
        for node in truth["nodes"]:
            reported = summary.precursor_query(node)
            expected = truth["precursors"].get(node, set())
            if name == "undirected-gss":
                expected = expected | truth["successors"].get(node, set())
            missing = expected - reported
            assert not missing, f"{name} missed precursors {missing} of {node!r}"

    def test_node_out_weight(self, name, summaries, truth):
        summary = summaries[name]
        if not summary.capabilities().node_out_weights:
            with pytest.raises(UnsupportedQueryError):
                summary.node_out_weight("hub")
            return
        for node in ("hub", "n0", "n3"):
            estimate = summary.node_out_weight(node)
            assert estimate >= truth["out_weights"].get(node, 0.0) - 1e-9

    def test_node_in_weight_available(self, name, summaries):
        summary = summaries[name]
        if not summary.capabilities().node_in_weights:
            with pytest.raises(UnsupportedQueryError):
                summary.node_in_weight("n1")
            return
        assert summary.node_in_weight("n1") >= 0.0

    def test_update_many_matches_scalar(self, name, truth):
        summary_batched = built_and_fed(name, seed=13)
        summary_scalar = build(spec_for(name, seed=13))
        for edge in make_stream():
            summary_scalar.update(edge.source, edge.destination, edge.weight)
        capabilities = summary_batched.capabilities()
        if capabilities.edge_queries:
            for key in truth["weights"]:
                assert summary_batched.edge_query(*key) == summary_scalar.edge_query(*key)
        if capabilities.triangle_estimates:
            assert summary_batched.triangle_estimate() == pytest.approx(
                summary_scalar.triangle_estimate()
            )

    def test_serialization_capability_matches_behavior(self, name, summaries, truth):
        summary = summaries[name]
        if not summary.capabilities().serializable:
            with pytest.raises(UnsupportedQueryError):
                summary.to_dict()
            return
        document = summary.to_dict()
        assert document.get("sketch") == name or "config" in document
        restored = from_dict(document)
        assert restored.capabilities() == summary.capabilities()
        sample = list(truth["weights"])[:50] + [("ghost-node", "other-ghost")]
        for key in sample:
            assert restored.edge_query(*key) == summary.edge_query(*key)

    def test_deletions_capability(self, name):
        summary = build(spec_for(name, seed=23))
        if not summary.capabilities().deletions:
            return
        summary.update("del-a", "del-b", 5.0)
        before = summary.edge_query("del-a", "del-b")
        assert before is not None and before >= 5.0
        # A partial deletion must keep the edge visible with the surviving
        # weight still over-estimated, not collapse it to "absent".
        summary.update("del-a", "del-b", -3.0)
        partial = summary.edge_query("del-a", "del-b")
        assert partial is not None, f"{name} lost a live edge after a deletion"
        assert 2.0 - 1e-9 <= partial <= before
        # Deleting the rest may report the stored zero or absence, never a
        # weight above the partial estimate.
        summary.update("del-a", "del-b", -2.0)
        emptied = summary.edge_query("del-a", "del-b")
        assert emptied is None or emptied <= partial
