"""Differential property tests: NumPy matrix backend vs pure-Python backend.

The contract of the backend layer is *observational identity*: for any stream
— including deletions, hash collisions (tiny fingerprints), buffer overflow
(tiny matrices) and any mix of scalar and batched updates — a NumPy-backed
sketch answers every query exactly like a Python-backed one, reconstructs the
identical edge list in the identical order, and round-trips through
serialization into either backend.  These tests extend the
``tests/test_indexed_backend.py`` pattern to the cross-backend setting.

Everything here is skipped gracefully when NumPy is not installed (the CI
matrix runs the suite both ways); the fallback behaviour itself is tested at
the bottom without requiring NumPy.
"""

from __future__ import annotations

import warnings
from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.backends import NUMPY_AVAILABLE, resolve_backend_name
from repro.core.config import GSSConfig
from repro.core.ensemble import GSSEnsemble
from repro.core.gss import GSS
from repro.core.merge import merge_into, merge_sketches
from repro.core.partitioned import PartitionedGSS
from repro.core.serialization import sketch_from_dict, sketch_to_dict
from repro.core.undirected import UndirectedGSS
from repro.core.windowed import WindowedGSS

requires_numpy = pytest.mark.skipif(not NUMPY_AVAILABLE, reason="NumPy not installed")


def _native_ready() -> bool:
    from repro.core._native import native_available

    return native_available()


#: The vectorized backends under differential test against the scalar
#: reference.  The native leg skips — not fails — when no kernel can be
#: built (no C toolchain) or the escape hatches are set.
vector_backends = pytest.mark.parametrize(
    "backend",
    [
        "numpy",
        pytest.param(
            "native",
            marks=pytest.mark.skipif(
                not _native_ready(),
                reason="native kernel unavailable or disabled",
            ),
        ),
    ],
)

# Streams over a small node universe with insertions AND deletions (negative
# weights), sized so small matrices overflow into the left-over buffer.
edge_items = st.tuples(
    st.integers(min_value=0, max_value=19),
    st.integers(min_value=0, max_value=19),
    st.sampled_from([1.0, 2.0, 5.0, -1.0, -2.0]),
)
streams = st.lists(edge_items, min_size=1, max_size=80)

configs = st.builds(
    GSSConfig,
    matrix_width=st.integers(min_value=2, max_value=12),
    fingerprint_bits=st.sampled_from([4, 8, 12]),
    rooms=st.integers(min_value=1, max_value=3),
    sequence_length=st.integers(min_value=1, max_value=6),
    candidate_buckets=st.integers(min_value=1, max_value=6),
    square_hashing=st.booleans(),
    sampling=st.booleans(),
)


def named(items):
    return [(f"n{source}", f"n{destination}", weight) for source, destination, weight in items]


def build_python(config: GSSConfig, items) -> GSS:
    sketch = GSS(replace(config, backend="python"))
    for source, destination, weight in named(items):
        sketch.update(source, destination, weight)
    return sketch


def assert_observationally_equal(first: GSS, second: GSS, items) -> None:
    """Every query the sketches can answer must agree exactly."""
    assert first.reconstruct_sketch_edges() == second.reconstruct_sketch_edges()
    assert sorted(first.buffer.edges()) == sorted(second.buffer.edges())
    assert first.matrix_edge_count == second.matrix_edge_count
    assert first.buffer_edge_count == second.buffer_edge_count
    nodes = {f"n{s}" for s, _, _ in items} | {f"n{d}" for _, d, _ in items}
    for node in nodes:
        assert first.successor_hashes(node) == second.successor_hashes(node)
        assert first.precursor_hashes(node) == second.precursor_hashes(node)
        assert first.successor_query(node) == second.successor_query(node)
        assert first.node_out_weight(node) == second.node_out_weight(node)
        for other in nodes:
            assert first.edge_query(node, other) == second.edge_query(node, other)


@requires_numpy
@vector_backends
class TestBackendEquivalence:
    @given(items=streams, config=configs)
    @settings(max_examples=60, deadline=None)
    def test_batched_vector_equals_scalar_python(self, backend, items, config):
        python_sketch = build_python(config, items)
        vector_sketch = GSS(replace(config, backend=backend))
        assert vector_sketch.backend_name == backend
        batch = named(items)
        # Uneven chunks exercise cross-batch cache reuse and the scalar tails.
        third = max(1, len(batch) // 3)
        vector_sketch.update_many(batch[:third])
        vector_sketch.update_many(batch[third:])
        assert vector_sketch.update_count == python_sketch.update_count
        assert_observationally_equal(python_sketch, vector_sketch, items)

    @given(items=streams, config=configs)
    @settings(max_examples=40, deadline=None)
    def test_scalar_vector_equals_scalar_python(self, backend, items, config):
        python_sketch = build_python(config, items)
        vector_sketch = GSS(replace(config, backend=backend))
        for source, destination, weight in named(items):
            vector_sketch.update(source, destination, weight)
        assert_observationally_equal(python_sketch, vector_sketch, items)

    @given(items=streams, config=configs)
    @settings(max_examples=40, deadline=None)
    def test_vector_matches_its_own_unindexed_reference_scans(
        self, backend, items, config
    ):
        vector_sketch = GSS(replace(config, backend=backend))
        vector_sketch.update_many(named(items))
        assert vector_sketch.reconstruct_sketch_edges() == (
            vector_sketch.reconstruct_sketch_edges_unindexed()
        )
        for node in {f"n{s}" for s, _, _ in items}:
            node_hash = vector_sketch.node_hash(node)
            for forward in (True, False):
                assert vector_sketch._neighbor_hashes(node_hash, forward) == (
                    vector_sketch._neighbor_hashes_unindexed(node_hash, forward)
                )

    def test_overflowing_stream_hits_buffer_identically(self, backend):
        config = GSSConfig(matrix_width=2, fingerprint_bits=4, rooms=1,
                           sequence_length=2, candidate_buckets=2)
        items = [(s, d, 1.0) for s in range(12) for d in range(12)]
        python_sketch = build_python(config, items)
        vector_sketch = GSS(replace(config, backend=backend))
        vector_sketch.update_many(named(items))
        assert vector_sketch.buffer_edge_count > 0  # the scenario actually overflows
        assert_observationally_equal(python_sketch, vector_sketch, items)

    def test_update_many_by_hash_replay(self, backend):
        config = GSSConfig(matrix_width=6, fingerprint_bits=8,
                           sequence_length=4, candidate_buckets=4)
        items = [(s % 9, (s * 3 + 1) % 9, float(1 + s % 4)) for s in range(60)]
        source = build_python(config, items)
        replayed_python = GSS(config)
        replayed_python.update_many_by_hash(source.reconstruct_sketch_edges())
        replayed_vector = GSS(replace(config, backend=backend))
        replayed_vector.update_many_by_hash(source.reconstruct_sketch_edges())
        assert replayed_vector.reconstruct_sketch_edges() == (
            replayed_python.reconstruct_sketch_edges()
        )

    def test_wide_hash_range_fallback_path(self, backend):
        # fingerprint_bits=32 pushes H(s)*M+H(d) past uint64: the tuple-key
        # ingest fallback must stay observationally identical.  The native
        # backend requires packed keys, so an explicit request outside that
        # envelope degrades to numpy storage with a warning.
        config = GSSConfig(matrix_width=6, fingerprint_bits=32,
                           sequence_length=3, candidate_buckets=3)
        items = [(s % 7, (s * 2 + 1) % 7, 1.0) for s in range(40)]
        python_sketch = build_python(config, items)
        if backend == "native":
            with pytest.warns(RuntimeWarning, match="native"):
                vector_sketch = GSS(replace(config, backend=backend))
            assert vector_sketch.backend_name == "numpy"
        else:
            vector_sketch = GSS(replace(config, backend=backend))
        assert not vector_sketch._matrix._packed_keys
        vector_sketch.update_many(named(items))
        assert_observationally_equal(python_sketch, vector_sketch, items)


@requires_numpy
class TestCrossBackendRoundTrips:
    def _sample_items(self):
        return [(s % 9, (s * 3 + 1) % 9, float(1 + s % 4)) for s in range(60)]

    @pytest.mark.parametrize("source_backend,target_backend", [
        ("python", "numpy"), ("numpy", "python"),
        ("python", "python"), ("numpy", "numpy"),
    ] + [
        pytest.param(source, target, marks=pytest.mark.skipif(
            not _native_ready(), reason="native kernel unavailable or disabled",
        ))
        for source, target in [
            ("python", "native"), ("native", "python"),
            ("numpy", "native"), ("native", "numpy"), ("native", "native"),
        ]
    ])
    def test_serialization_round_trips_across_backends(self, source_backend, target_backend):
        config = GSSConfig(matrix_width=6, fingerprint_bits=8, sequence_length=4,
                           candidate_buckets=4, backend=source_backend)
        original = GSS(config)
        original.update_many(named(self._sample_items()))
        restored = sketch_from_dict(sketch_to_dict(original), backend=target_backend)
        assert restored.backend_name == target_backend
        assert restored.reconstruct_sketch_edges() == original.reconstruct_sketch_edges()
        assert restored.update_count == original.update_count
        assert restored.matrix_edge_count == original.matrix_edge_count
        for node in original.node_index.known_nodes():
            assert restored.successor_hashes(node) == original.successor_hashes(node)
            assert restored.precursor_hashes(node) == original.precursor_hashes(node)

    def test_snapshot_records_backend_and_defaults_to_it(self):
        config = GSSConfig(matrix_width=6, backend="numpy",
                           sequence_length=2, candidate_buckets=2)
        sketch = GSS(config)
        sketch.update("a", "b", 2.0)
        document = sketch_to_dict(sketch)
        assert document["config"]["backend"] == "numpy"
        assert sketch_from_dict(document).backend_name == "numpy"

    def test_merge_across_backends(self):
        base = GSSConfig(matrix_width=8, fingerprint_bits=8, sequence_length=4,
                         candidate_buckets=4, seed=7)
        first = GSS(replace(base, backend="python"))
        second = GSS(replace(base, backend="numpy"))
        first.update_many([(f"n{i}", f"n{(i + 1) % 10}", 1.0) for i in range(10)])
        second.update_many([(f"n{i}", f"n{(i + 2) % 10}", 2.0) for i in range(10)])
        merged = merge_sketches([first, second])
        reference = merge_sketches([
            first, sketch_from_dict(sketch_to_dict(second), backend="python"),
        ])
        assert merged.reconstruct_sketch_edges() == reference.reconstruct_sketch_edges()
        # And merging INTO a numpy sketch works symmetrically.
        target = GSS(replace(base, backend="numpy"))
        merge_into(target, first)
        merge_into(target, second)
        assert sorted(target.reconstruct_sketch_edges()) == sorted(
            merged.reconstruct_sketch_edges()
        )


@requires_numpy
class TestMixedBackendMergeProperty:
    """``merge_sketches`` over one NumPy-backend and one Python-backend GSS
    must agree with a single reference sketch that saw the whole stream.

    The distributed story of :mod:`repro.core.merge` (and the
    :mod:`repro.cluster` deployment built on the same snapshots) only holds
    if merging is backend-oblivious — including streams with deletions,
    collisions (tiny fingerprints) and buffer overflow (tiny matrices).
    """

    @given(items=streams, split=st.integers(min_value=0, max_value=80), config=configs)
    @settings(max_examples=40, deadline=None)
    def test_mixed_backend_merge_matches_single_sketch(self, items, split, config):
        split = min(split, len(items))
        batch = named(items)
        python_part = GSS(replace(config, backend="python"))
        python_part.update_many(batch[:split])
        numpy_part = GSS(replace(config, backend="numpy"))
        numpy_part.update_many(batch[split:])

        merged = merge_sketches([python_part, numpy_part])

        reference = GSS(replace(config, backend="python"))
        reference.update_many(batch)

        keys = {(source, destination) for source, destination, _ in batch}
        for key in sorted(keys):
            assert merged.edge_query(*key) == reference.edge_query(*key)
        nodes = {source for source, _, _ in batch} | {
            destination for _, destination, _ in batch
        }
        for node in sorted(nodes):
            assert merged.successor_hashes(node) == reference.successor_hashes(node)
            assert merged.precursor_hashes(node) == reference.precursor_hashes(node)
            assert merged.node_out_weight(node) == pytest.approx(
                reference.node_out_weight(node)
            )

    @given(items=streams, config=configs)
    @settings(max_examples=20, deadline=None)
    def test_merge_order_is_immaterial_across_backends(self, items, config):
        batch = named(items)
        half = len(batch) // 2
        python_part = GSS(replace(config, backend="python"))
        python_part.update_many(batch[:half])
        numpy_part = GSS(replace(config, backend="numpy"))
        numpy_part.update_many(batch[half:])
        forward = merge_sketches([python_part, numpy_part])
        backward = merge_sketches([numpy_part, python_part])
        keys = {(source, destination) for source, destination, _ in batch}
        for key in sorted(keys):
            assert forward.edge_query(*key) == backward.edge_query(*key)


@requires_numpy
class TestWrappersOnNumpyBackend:
    def test_windowed_wrapper(self):
        items = [(f"n{i % 7}", f"n{(i * 2) % 7}", 1.0, float(i)) for i in range(50)]
        results = {}
        for backend in ("python", "numpy"):
            config = GSSConfig(matrix_width=8, sequence_length=4,
                               candidate_buckets=4, backend=backend)
            window = WindowedGSS(config, window_span=20.0, slices=4)
            window.update_many(items)
            results[backend] = (
                window.active_slice_count,
                {node: window.successor_query(node) for node, _, _, _ in items},
                {(s, d): window.edge_query(s, d) for s, d, _, _ in items},
            )
        assert results["python"] == results["numpy"]

    def test_partitioned_wrapper(self):
        items = [(f"n{i % 9}", f"n{(i * 4) % 9}", float(1 + i % 3)) for i in range(60)]
        results = {}
        for backend in ("python", "numpy"):
            config = GSSConfig(matrix_width=8, sequence_length=4,
                               candidate_buckets=4, backend=backend)
            sharded = PartitionedGSS(config, partitions=3)
            sharded.update_many(items)
            results[backend] = (
                sharded.shard_loads(),
                {(s, d): sharded.edge_query(s, d) for s, d, _ in items},
            )
        assert results["python"] == results["numpy"]
        config = GSSConfig(matrix_width=8, sequence_length=4,
                           candidate_buckets=4, backend="numpy")
        sharded = PartitionedGSS(config, partitions=3)
        sharded.update_many(items)
        merged = sharded.merge_into_single()
        assert merged.backend_name == "numpy"
        assert merged.matrix_edge_count + merged.buffer_edge_count > 0

    def test_undirected_and_ensemble_wrappers(self):
        items = [(f"n{i % 6}", f"n{(i + 2) % 6}", 1.0) for i in range(30)]
        for backend in ("python", "numpy"):
            config = GSSConfig(matrix_width=8, fingerprint_bits=8, sequence_length=4,
                               candidate_buckets=4, backend=backend)
            undirected = UndirectedGSS(config)
            undirected.update_many(items)
            assert undirected.sketch.backend_name == backend
            assert undirected.edge_query("n0", "n2") == undirected.edge_query("n2", "n0")
            ensemble = GSSEnsemble(config, sketches=2)
            ensemble.update_many(items)
            assert all(member.backend_name == backend for member in ensemble.members)
            assert ensemble.edge_query("n0", "n2") >= 1.0


class TestBackendSelection:
    def test_python_is_the_zero_dependency_default(self):
        assert GSSConfig(matrix_width=4).backend == "python"
        assert GSS(GSSConfig(matrix_width=4)).backend_name == "python"

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            GSSConfig(matrix_width=4, backend="fortran")

    def test_auto_resolves_to_available_backend(self):
        # auto prefers native > numpy > python, whichever is available.
        from repro.core._native import native_available

        if native_available():
            expected = "native"
        elif NUMPY_AVAILABLE:
            expected = "numpy"
        else:
            expected = "python"
        assert resolve_backend_name("auto") == expected
        assert GSS(GSSConfig(matrix_width=4, backend="auto")).backend_name == expected

    def test_auto_skips_native_when_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_NATIVE", "1")
        expected = "numpy" if NUMPY_AVAILABLE else "python"
        assert resolve_backend_name("auto") == expected

    def test_numpy_request_without_numpy_falls_back_with_warning(self, monkeypatch):
        import repro.core.backends as backends_module

        monkeypatch.setattr(backends_module, "NUMPY_AVAILABLE", False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            sketch = GSS(GSSConfig(matrix_width=4, backend="numpy"))
        assert sketch.backend_name == "python"
        assert any("falling back" in str(w.message) for w in caught)
        sketch.update("a", "b", 1.0)
        assert sketch.edge_query("a", "b") == 1.0

    def test_python_backend_structural_views_still_exposed(self):
        sketch = GSS(GSSConfig(matrix_width=4, sequence_length=2, candidate_buckets=2))
        sketch.update("a", "b", 1.0)
        assert sketch._room_map
        assert sketch._row_occupancy
        assert sketch._col_occupancy
