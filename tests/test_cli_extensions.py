"""Tests for the CLI's extension sub-commands."""

from __future__ import annotations

import pytest

from repro.cli import _EXTENSION_RUNNERS, _PAPER_RUNNERS, build_parser, main


class TestExtensionParser:
    def test_extension_choices_registered(self):
        parser = build_parser()
        for name in ("window", "partition", "changers", "algorithms", "memory",
                     "ablation-fingerprint", "ablation-sequence", "ablation-candidates",
                     "ablation-rooms"):
            assert parser.parse_args([name]).experiment == name

    def test_extensions_pseudo_experiment_accepted(self):
        assert build_parser().parse_args(["extensions"]).experiment == "extensions"

    def test_paper_and_extension_registries_disjoint(self):
        assert not set(_PAPER_RUNNERS) & set(_EXTENSION_RUNNERS)

    def test_every_registered_runner_is_callable(self):
        for runner in {**_PAPER_RUNNERS, **_EXTENSION_RUNNERS}.values():
            assert callable(runner)


class TestExtensionExecution:
    def test_memory_subcommand_quick(self, capsys):
        exit_code = main(["memory", "--quick"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "memory footprint" in output
        assert "gss_bytes" in output

    def test_partition_subcommand_quick(self, capsys):
        exit_code = main(["partition", "--quick"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "partition" in output

    def test_all_does_not_include_extensions(self, capsys):
        # 'all' is reserved for the paper artifacts so its runtime stays
        # predictable; extension studies have their own pseudo-experiment.
        parser = build_parser()
        args = parser.parse_args(["all"])
        assert args.experiment == "all"

    def test_unknown_subcommand_still_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])
