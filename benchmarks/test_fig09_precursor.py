"""Benchmark: regenerate Figure 9 (1-hop precursor query precision)."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import run_precursor_experiment


@pytest.mark.paper_artifact("fig9")
def test_fig9_precursor_precision(benchmark, bench_config):
    result = run_once(benchmark, run_precursor_experiment, bench_config)
    print()
    print(result.to_text())

    gss_rows = [row for row in result.rows if row["structure"].startswith("GSS")]
    tcm_rows = [row for row in result.rows if row["structure"].startswith("TCM")]
    assert gss_rows and tcm_rows

    # Paper shape: GSS precision is near 1 and the 16-bit variant stays above
    # TCM despite TCM's memory handicap, for every dataset and width.  The
    # 12-bit variant is allowed a small slack: on the scaled-down analogs the
    # 64x-memory TCM can tie it within a couple of percent.
    assert min(row["precision"] for row in gss_rows) > 0.9
    for gss_row in gss_rows:
        matching_tcm = [
            row
            for row in tcm_rows
            if row["dataset"] == gss_row["dataset"] and row["width"] == gss_row["width"]
        ]
        assert matching_tcm
        slack = 1e-9 if "16" in gss_row["structure"] else 0.02
        assert gss_row["precision"] >= matching_tcm[0]["precision"] - slack
