"""Quickstart: build a GSS over a graph stream and run the query primitives.

Run with::

    python examples/quickstart.py

The script generates a synthetic analog of the paper's email-EuAll dataset,
summarizes it with GSS, and compares the three graph query primitives (edge
query, 1-hop successor query, 1-hop precursor query) plus a compound node
query against the exact ground truth.
"""

from __future__ import annotations

from repro import GSS, GSSConfig, AdjacencyListGraph
from repro.datasets import load_dataset
from repro.metrics import average_precision, average_relative_error
from repro.queries.primitives import EDGE_NOT_FOUND, consume_stream


def main() -> None:
    # 1. A graph stream: a sequence of (source, destination; timestamp; weight) items.
    stream = load_dataset("email-EuAll", scale=0.2)
    statistics = stream.statistics()
    print(f"stream '{stream.name}': {statistics.item_count} items, "
          f"{statistics.distinct_edges} distinct edges, {statistics.node_count} nodes")

    # 2. Size the sketch for the expected number of distinct edges (m ~ sqrt(|E|)).
    config = GSSConfig.for_edge_count(
        statistics.distinct_edges, fingerprint_bits=16, sequence_length=8, candidate_buckets=8
    )
    sketch = GSS(config)
    sketch.ingest(stream)
    print(f"GSS: {config.matrix_width}x{config.matrix_width} matrix, "
          f"{config.rooms} rooms/bucket, {sketch.buffer_edge_count} buffered edges, "
          f"{sketch.memory_bytes() / 1024:.1f} KiB")

    # 3. Exact ground truth for comparison.
    exact = consume_stream(AdjacencyListGraph(), stream)

    # 4. Edge queries: the estimate is never below the true weight.
    truth = stream.aggregate_weights()
    sample = list(truth)[:2000]
    pairs = [(sketch.edge_query(*key), truth[key]) for key in sample]
    print(f"edge query ARE over {len(sample)} edges: {average_relative_error(pairs):.6f}")

    some_edge = sample[0]
    print(f"  example: edge {some_edge} -> GSS {sketch.edge_query(*some_edge)}, "
          f"exact {exact.edge_query(*some_edge)}")
    print(f"  absent edge ('ghost', 'node') -> {sketch.edge_query('ghost', 'node')} "
          f"(-1 means not found, EDGE_NOT_FOUND={EDGE_NOT_FOUND})")

    # 5. 1-hop successor / precursor queries.
    successor_truth = stream.successors()
    nodes = stream.nodes()[:500]
    precision = average_precision(
        [(successor_truth.get(node, set()), sketch.successor_query(node)) for node in nodes]
    )
    print(f"successor query precision over {len(nodes)} nodes: {precision:.4f}")

    busiest = max(successor_truth, key=lambda node: len(successor_truth[node]))
    print(f"  busiest node {busiest!r}: {len(successor_truth[busiest])} true successors, "
          f"GSS reports {len(sketch.successor_query(busiest))}")
    print(f"  precursors of {busiest!r}: exact {len(exact.precursor_query(busiest))}, "
          f"GSS {len(sketch.precursor_query(busiest))}")

    # 6. Compound query built on the primitives: aggregated out-weight of a node.
    print(f"node query (out-weight) of {busiest!r}: GSS {sketch.node_out_weight(busiest):.0f}, "
          f"exact {exact.node_out_weight(busiest):.0f}")


if __name__ == "__main__":
    main()
