"""Sketch registry and factory: name → parameter translation → instance.

Every summary structure in the package is registered here under a short name
(``"gss"``, ``"tcm"``, ``"cm"``, ...).  A :class:`SketchSpec` names the
sketch, its structure-specific parameters, the matrix/counter backend and —
crucially — a *memory budget*: the paper's Section VII compares structures at
equal (or explicitly handicapped) memory, and the byte→shape arithmetic for
every structure lives in this module's builders instead of being re-derived
in each experiment runner.

Sizing rules, in precedence order:

1. an explicit size parameter in ``params`` (``matrix_width``, ``width``,
   ``total_width``, ``reservoir_size`` — whatever the structure calls it);
2. ``memory_bytes`` — the builder inverts the structure's C-layout accounting
   to find the largest shape that fits the budget;
3. ``expected_edges`` — translated to the memory of a default GSS sized for
   that many distinct edges (``m ~ sqrt(|E| / rooms)``), so
   ``build("tcm", expected_edges=E)`` and ``build("gss", expected_edges=E)``
   land on the same budget: the equal-memory comparison invariant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.api.adapters import TriestSummary
from repro.api.protocol import Capabilities, GraphSummary
from repro.cluster.sharded import DEFAULT_ROUTING_SEED, ShardedSummary
from repro.baselines.cm_sketch import CountMinSketch
from repro.baselines.cu_sketch import CountMinCUSketch
from repro.baselines.gmatrix import GMatrix
from repro.baselines.gsketch import GSketch
from repro.baselines.tcm import TCM
from repro.baselines.triest import TriestBase, TriestImproved
from repro.core.basic import GSSBasic
from repro.core.config import GSSConfig
from repro.core.ensemble import GSSEnsemble
from repro.core.gss import GSS
from repro.core.partitioned import PartitionedGSS
from repro.core.undirected import UndirectedGSS
from repro.core.windowed import WindowedGSS

__all__ = [
    "SketchSpec",
    "SketchInfo",
    "SpecSizingError",
    "build",
    "from_dict",
    "list_sketches",
    "register_sketch",
    "sketch_info",
]


class SpecSizingError(ValueError):
    """A spec names no size: no budget, no expected edges, no size parameter.

    Distinct from other ``ValueError``s (unknown parameters, missing required
    parameters) so that callers offering deferred sizing — the
    :class:`~repro.api.session.StreamSession` auto-sizing path — can defer
    exactly this case while still failing fast on genuinely invalid specs.
    """


@dataclass(frozen=True)
class SketchSpec:
    """A declarative request for a summary structure.

    Parameters
    ----------
    sketch:
        Registered sketch name (see :func:`list_sketches`).
    memory_bytes:
        Memory budget under the paper's C layout; the factory picks the
        largest shape that fits.
    expected_edges:
        Alternative sizing: the budget of a default GSS sized for this many
        distinct edges (the equal-memory comparison invariant).
    backend:
        Matrix/counter backend (``python`` / ``numpy`` / ``native`` /
        ``auto``) for the structures that have one; ignored by the
        reservoir estimators.
    seed:
        Base hash seed.
    params:
        Structure-specific parameters (e.g. ``fingerprint_bits`` for GSS,
        ``depth`` for TCM, ``window_span`` for the windowed wrapper).
        Unknown names raise ``ValueError`` listing the accepted ones.
    """

    sketch: str
    memory_bytes: Optional[int] = None
    expected_edges: Optional[int] = None
    backend: str = "python"
    seed: int = 0
    params: Mapping[str, Any] = field(default_factory=dict)

    def with_params(self, **params: Any) -> "SketchSpec":
        """A copy of this spec with extra/overridden structure parameters."""
        merged = dict(self.params)
        merged.update(params)
        return replace(self, params=merged)


@dataclass(frozen=True)
class SketchInfo:
    """Registry entry: how to build one sketch and what it can do."""

    name: str
    description: str
    capabilities: Capabilities
    builder: Callable[[SketchSpec], GraphSummary]
    #: Accepted ``params`` keys, shown in error messages and CLI listings.
    param_names: Tuple[str, ...] = ()
    #: ``from_dict``-style restorer for this sketch's snapshot documents.
    restorer: Optional[Callable[..., GraphSummary]] = None
    #: ``params`` keys that MUST be supplied — the sketch cannot be built
    #: from a bare memory budget (e.g. ``windowed-gss`` needs a window span).
    #: Callers offering budget-only construction (the CLI's ``--sketch``)
    #: exclude these sketches.
    required_params: Tuple[str, ...] = ()


_REGISTRY: Dict[str, SketchInfo] = {}


def register_sketch(info: SketchInfo, replace_existing: bool = False) -> None:
    """Add a sketch to the registry (e.g. a user-defined summary structure)."""
    if info.name in _REGISTRY and not replace_existing:
        raise ValueError(f"sketch {info.name!r} is already registered")
    _REGISTRY[info.name] = info


def list_sketches() -> List[str]:
    """Registered sketch names, in registration (paper) order."""
    return list(_REGISTRY)


def sketch_info(name: str) -> SketchInfo:
    """Registry entry for ``name``; raises ``KeyError`` with the known names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown sketch {name!r}; registered: {', '.join(_REGISTRY)}"
        ) from None


def build(spec, /, **overrides) -> GraphSummary:
    """Build a summary structure from a :class:`SketchSpec` (or a name).

    ``build("tcm", memory_bytes=65536, params={"depth": 4})`` is shorthand
    for ``build(SketchSpec("tcm", memory_bytes=65536, params={"depth": 4}))``.
    """
    if isinstance(spec, str):
        spec = SketchSpec(spec, **overrides)
    elif overrides:
        spec = replace(spec, **overrides)
    info = sketch_info(spec.sketch)
    _check_params(spec, info.param_names)
    return info.builder(spec)


def from_dict(document: Dict, backend: Optional[str] = None) -> GraphSummary:
    """Restore any serializable sketch from its snapshot document.

    Dispatches on the document's ``"sketch"`` tag; documents written before
    the tag existed (GSS snapshots) restore as GSS.  ``backend`` optionally
    re-targets the restored structure onto a different backend.
    """
    tag = document.get("sketch")
    if tag is None and "config" in document:
        tag = "gss"  # pre-tag GSS snapshot
    if tag is None:
        raise ValueError("document has no 'sketch' tag and is not a GSS snapshot")
    info = sketch_info(tag)
    if info.restorer is None:
        raise ValueError(f"sketch {tag!r} does not support serialization")
    return info.restorer(document, backend=backend)


# -- sizing helpers ----------------------------------------------------------


def _check_params(spec: SketchSpec, allowed: Tuple[str, ...]) -> None:
    unknown = sorted(set(spec.params) - set(allowed))
    if unknown:
        raise ValueError(
            f"unknown parameter(s) {', '.join(unknown)} for sketch "
            f"{spec.sketch!r}; accepted: {', '.join(allowed) or '(none)'}"
        )


def reference_budget_bytes(spec: SketchSpec) -> int:
    """The spec's memory budget in bytes.

    ``memory_bytes`` wins; otherwise ``expected_edges`` is converted through
    the budget of a *default* GSS sized for that many edges, which is what
    makes ``expected_edges`` an equal-memory request across sketches.
    """
    if spec.memory_bytes is not None:
        if spec.memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        return int(spec.memory_bytes)
    if spec.expected_edges is not None:
        if spec.expected_edges <= 0:
            raise ValueError("expected_edges must be positive")
        return GSSConfig.for_edge_count(spec.expected_edges).matrix_memory_bytes()
    raise SpecSizingError(
        f"SketchSpec({spec.sketch!r}) needs memory_bytes, expected_edges or an "
        "explicit size parameter in params"
    )


def _gss_width_for_budget(budget_bytes: int, fingerprint_bits: int, rooms: int) -> int:
    """Largest matrix width whose C-layout memory fits the budget."""
    room_bits = 2 * fingerprint_bits + 8 + 32
    slots = budget_bytes * 8 / (rooms * room_bits)
    return max(4, int(math.sqrt(slots)))


def _gss_config(spec: SketchSpec, extra_exclude: Tuple[str, ...] = ()) -> GSSConfig:
    """Translate a spec into a :class:`GSSConfig` (shared by the GSS family)."""
    params = {key: value for key, value in spec.params.items() if key not in extra_exclude}
    fingerprint_bits = params.get("fingerprint_bits", 16)
    rooms = params.get("rooms", 2)
    width = params.pop("matrix_width", None)
    if width is None:
        if spec.memory_bytes is not None:
            width = _gss_width_for_budget(
                reference_budget_bytes(spec), fingerprint_bits, rooms
            )
        elif spec.expected_edges is not None:
            # The paper's sizing guidance directly: about one room per
            # distinct edge (GSSConfig.for_edge_count).
            width = max(4, int((spec.expected_edges / rooms) ** 0.5) + 1)
        else:
            raise SpecSizingError(
                f"SketchSpec({spec.sketch!r}) needs memory_bytes, expected_edges "
                "or params['matrix_width']"
            )
    return GSSConfig(matrix_width=width, seed=spec.seed, backend=spec.backend, **params)


_GSS_PARAMS = (
    "matrix_width",
    "fingerprint_bits",
    "rooms",
    "sequence_length",
    "candidate_buckets",
    "square_hashing",
    "sampling",
    "keep_node_index",
)


# -- builders ----------------------------------------------------------------


def _build_gss(spec: SketchSpec) -> GSS:
    return GSS(_gss_config(spec))


def _build_gss_basic(spec: SketchSpec) -> GSSBasic:
    if spec.backend in ("numpy", "native"):
        # GSSBasic has no vectorized or compiled storage; failing an explicit
        # numpy/native request beats silently building a pure-python sketch
        # into a comparison row labeled with that backend.  "auto" resolves
        # to the only backend the structure has (pure Python) — auto means
        # "best available".
        raise ValueError("gss-basic supports only the python backend")
    fingerprint_bits = spec.params.get("fingerprint_bits", 16)
    width = spec.params.get("matrix_width")
    if width is None:
        room_bits = 2 * fingerprint_bits + 32
        width = max(4, int(math.sqrt(reference_budget_bytes(spec) * 8 / room_bits)))
    return GSSBasic(
        matrix_width=width,
        fingerprint_bits=fingerprint_bits,
        keep_node_index=spec.params.get("keep_node_index", True),
        seed=spec.seed,
    )


def _build_undirected(spec: SketchSpec) -> UndirectedGSS:
    return UndirectedGSS(_gss_config(spec))


def _build_ensemble(spec: SketchSpec) -> GSSEnsemble:
    sketches = spec.params.get("sketches", 2)
    member_spec = spec.with_params()
    if spec.memory_bytes is None and spec.expected_edges is None:
        member_budget_spec = member_spec
    else:
        # Split the budget across the members so the ensemble as a whole
        # honours the requested bytes.
        member_budget_spec = replace(
            member_spec,
            memory_bytes=max(1, reference_budget_bytes(spec) // sketches),
            expected_edges=None,
        )
    config = _gss_config(member_budget_spec, extra_exclude=("sketches",))
    return GSSEnsemble(config, sketches=sketches)


def _build_windowed(spec: SketchSpec) -> WindowedGSS:
    if "window_span" not in spec.params:
        raise ValueError("windowed-gss requires params['window_span']")
    window_span = spec.params["window_span"]
    slices = spec.params.get("slices", 4)
    if spec.memory_bytes is None and spec.expected_edges is None:
        slice_spec = spec
    else:
        # Each live slice holds a fraction of the window, so the budget is
        # split across the slices that can be alive at once.
        slice_spec = replace(
            spec,
            memory_bytes=max(1, reference_budget_bytes(spec) // max(1, slices)),
            expected_edges=None,
        )
    config = _gss_config(slice_spec, extra_exclude=("window_span", "slices"))
    return WindowedGSS(config, window_span=window_span, slices=slices)


def _build_partitioned(spec: SketchSpec) -> PartitionedGSS:
    partitions = spec.params.get("partitions", 4)
    routing_seed = spec.params.get("routing_seed", 97)
    if spec.memory_bytes is None and spec.expected_edges is None:
        shard_spec = spec
    elif spec.memory_bytes is None:
        # Give every shard an equal share of the expected edges, the
        # ``m ~ sqrt(|E| / partitions)`` guidance for distributed deployments.
        shard_spec = replace(
            spec, expected_edges=max(1, spec.expected_edges // max(1, partitions))
        )
    else:
        shard_spec = replace(
            spec,
            memory_bytes=max(1, reference_budget_bytes(spec) // max(1, partitions)),
            expected_edges=None,
        )
    config = _gss_config(shard_spec, extra_exclude=("partitions", "routing_seed"))
    return PartitionedGSS(config, partitions=partitions, routing_seed=routing_seed)


#: Cluster-level parameters of ``sharded-gss``; everything else in the spec's
#: ``params`` is passed through to the inner per-shard GSS.
_CLUSTER_PARAMS = ("workers", "routing_seed", "batch_size", "transport")


def _build_sharded(spec: SketchSpec) -> ShardedSummary:
    """Build a multi-process GSS cluster (see :mod:`repro.cluster`).

    The memory budget (or expected edge count) is split evenly across the
    worker processes, the same arithmetic as ``partitioned-gss``, so a
    cluster and a monolithic sketch built at the same budget are an
    equal-memory comparison.
    """
    workers = spec.params.get("workers", 2)
    if workers < 1:
        raise ValueError("workers must be at least 1")
    inner_params = {
        key: value for key, value in spec.params.items() if key not in _CLUSTER_PARAMS
    }
    inner = SketchSpec(
        "gss", backend=spec.backend, seed=spec.seed, params=inner_params
    )
    if "matrix_width" in inner_params:
        pass  # explicitly sized shards
    elif spec.memory_bytes is not None:
        inner = replace(
            inner, memory_bytes=max(1, reference_budget_bytes(spec) // workers)
        )
    elif spec.expected_edges is not None:
        inner = replace(
            inner, expected_edges=max(1, spec.expected_edges // workers)
        )
    else:
        raise SpecSizingError(
            "SketchSpec('sharded-gss') needs memory_bytes, expected_edges or "
            "params['matrix_width']"
        )
    return ShardedSummary(
        inner,
        workers=workers,
        routing_seed=spec.params.get("routing_seed", DEFAULT_ROUTING_SEED),
        batch_size=spec.params.get("batch_size", 1024),
        transport=spec.params.get("transport", "auto"),
    )


def _build_tcm(spec: SketchSpec) -> TCM:
    depth = spec.params.get("depth", 4)
    width = spec.params.get("width")
    if width is None:
        per_sketch_counters = max(1.0, reference_budget_bytes(spec) / (4 * depth))
        width = max(2, int(math.sqrt(per_sketch_counters)))
    return TCM(width=width, depth=depth, seed=spec.seed, backend=spec.backend)


def _build_gmatrix(spec: SketchSpec) -> GMatrix:
    width = spec.params.get("width")
    if width is None:
        width = max(2, int(math.sqrt(reference_budget_bytes(spec) / 4)))
    return GMatrix(
        width=width,
        universe_size=spec.params.get("universe_size", 1 << 20),
        seed=spec.seed,
        backend=spec.backend,
    )


def _build_cm(cls, spec: SketchSpec):
    depth = spec.params.get("depth", 4)
    width = spec.params.get("width")
    if width is None:
        width = max(1, reference_budget_bytes(spec) // (4 * depth))
    return cls(width=width, depth=depth, seed=spec.seed, backend=spec.backend)


def _build_gsketch(spec: SketchSpec) -> GSketch:
    depth = spec.params.get("depth", 4)
    partitions = spec.params.get("partitions", 8)
    total_width = spec.params.get("total_width")
    if total_width is None:
        total_width = max(partitions, reference_budget_bytes(spec) // (4 * depth))
    return GSketch(
        total_width=total_width,
        partitions=partitions,
        depth=depth,
        seed=spec.seed,
        backend=spec.backend,
    )


def _build_triest(cls, spec: SketchSpec) -> TriestSummary:
    reservoir_size = spec.params.get("reservoir_size")
    if reservoir_size is None:
        # One reservoir slot costs 16 bytes (two 8-byte node ids).
        reservoir_size = max(6, reference_budget_bytes(spec) // 16)
    return TriestSummary(cls(reservoir_size=reservoir_size, seed=spec.seed))


def _register_defaults() -> None:
    entries = [
        SketchInfo(
            name="gss",
            description="Graph Stream Sketch (square hashing, sampling, rooms)",
            capabilities=GSS.capabilities(),
            builder=_build_gss,
            param_names=_GSS_PARAMS,
            restorer=GSS.from_dict,
        ),
        SketchInfo(
            name="gss-basic",
            description="basic GSS of Section IV (one bucket per edge; python backend only)",
            capabilities=GSSBasic.capabilities(),
            builder=_build_gss_basic,
            param_names=("matrix_width", "fingerprint_bits", "keep_node_index"),
        ),
        SketchInfo(
            name="undirected-gss",
            description="GSS storing undirected edges under a canonical orientation",
            capabilities=UndirectedGSS.capabilities(),
            builder=_build_undirected,
            param_names=_GSS_PARAMS,
        ),
        SketchInfo(
            name="gss-ensemble",
            description="independent GSS sketches answering with min/intersection",
            capabilities=GSSEnsemble.capabilities(),
            builder=_build_ensemble,
            param_names=_GSS_PARAMS + ("sketches",),
        ),
        SketchInfo(
            name="windowed-gss",
            description="sliding-window GSS built from per-slice sketches",
            capabilities=WindowedGSS.capabilities(),
            builder=_build_windowed,
            param_names=_GSS_PARAMS + ("window_span", "slices"),
            required_params=("window_span",),
        ),
        SketchInfo(
            name="partitioned-gss",
            description="source-partitioned GSS shards (distributed deployment)",
            capabilities=PartitionedGSS.capabilities(),
            builder=_build_partitioned,
            param_names=_GSS_PARAMS + ("partitions", "routing_seed"),
        ),
        SketchInfo(
            name="sharded-gss",
            description="multi-process source-sharded GSS cluster (repro.cluster)",
            # The inner GSS's capabilities minus single-sketch-only features
            # (hash-level paths, in-place merging); must equal what
            # ShardedSummary.capabilities() reports for a gss inner spec.
            capabilities=Capabilities(serializable=True),
            builder=_build_sharded,
            param_names=_GSS_PARAMS + _CLUSTER_PARAMS,
            restorer=ShardedSummary.from_dict,
        ),
        SketchInfo(
            name="tcm",
            description="TCM baseline: hashed adjacency matrices of counters",
            capabilities=TCM.capabilities(),
            builder=_build_tcm,
            param_names=("width", "depth"),
            restorer=TCM.from_dict,
        ),
        SketchInfo(
            name="gmatrix",
            description="gMatrix baseline: TCM with reversible hash functions",
            capabilities=GMatrix.capabilities(),
            builder=_build_gmatrix,
            param_names=("width", "universe_size"),
            restorer=GMatrix.from_dict,
        ),
        SketchInfo(
            name="cm",
            description="Count-Min sketch over edge keys (edge weights only)",
            capabilities=CountMinSketch.capabilities(),
            builder=lambda spec: _build_cm(CountMinSketch, spec),
            param_names=("width", "depth"),
            restorer=CountMinSketch.from_dict,
        ),
        SketchInfo(
            name="cu",
            description="Count-Min sketch with conservative update",
            capabilities=CountMinCUSketch.capabilities(),
            builder=lambda spec: _build_cm(CountMinCUSketch, spec),
            param_names=("width", "depth"),
            restorer=CountMinCUSketch.from_dict,
        ),
        SketchInfo(
            name="gsketch",
            description="gSketch baseline: CM sketches partitioned by source node",
            capabilities=GSketch.capabilities(),
            builder=_build_gsketch,
            param_names=("total_width", "partitions", "depth"),
        ),
        SketchInfo(
            name="triest-base",
            description="TRIEST-BASE reservoir triangle counting (adapter)",
            capabilities=TriestSummary.capabilities(),
            builder=lambda spec: _build_triest(TriestBase, spec),
            param_names=("reservoir_size",),
        ),
        SketchInfo(
            name="triest-impr",
            description="TRIEST-IMPR reservoir triangle counting (adapter)",
            capabilities=TriestSummary.capabilities(),
            builder=lambda spec: _build_triest(TriestImproved, spec),
            param_names=("reservoir_size",),
        ),
    ]
    for entry in entries:
        register_sketch(entry)


_register_defaults()
