"""Node (aggregate weight) queries composed from the primitives.

A node query for ``v`` returns the sum of the weights of all edges with source
node ``v`` (Section VII-E).  Sketches that expose a native implementation
(``node_out_weight``) are used directly; otherwise the query is composed from
a successor query followed by edge queries, which is how the paper describes
building compound queries from the primitives.
"""

from __future__ import annotations

from typing import Hashable

from repro.queries.primitives import GraphQueryInterface


def node_out_weight(store: GraphQueryInterface, node: Hashable) -> float:
    """Aggregated weight of all out-going edges of ``node``."""
    native = getattr(store, "node_out_weight", None)
    if callable(native):
        return native(node)
    total = 0.0
    for successor in store.successor_query(node):
        weight = store.edge_query(node, successor)
        if weight is not None:
            total += weight
    return total


def node_in_weight(store: GraphQueryInterface, node: Hashable) -> float:
    """Aggregated weight of all in-coming edges of ``node``."""
    native = getattr(store, "node_in_weight", None)
    if callable(native):
        return native(node)
    total = 0.0
    for precursor in store.precursor_query(node):
        weight = store.edge_query(precursor, node)
        if weight is not None:
            total += weight
    return total
