"""Windowing utilities over graph streams.

The subgraph-matching experiment (Figure 15) evaluates queries inside fixed
size windows of the stream; troubleshooting use cases similarly analyse the
most recent communication records.  These helpers slice a stream into count
based windows without copying items more than once.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.streaming.edge import StreamEdge
from repro.streaming.stream import GraphStream


class SlidingWindow:
    """A count-based sliding window over a graph stream.

    ``size`` is the number of most-recent items kept; ``push`` returns the item
    that fell out of the window (if any), which callers use to issue deletion
    updates against a sketch.
    """

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError("window size must be positive")
        self.size = size
        self._items: List[StreamEdge] = []

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[StreamEdge]:
        return iter(self._items)

    @property
    def is_full(self) -> bool:
        """True once the window holds ``size`` items."""
        return len(self._items) >= self.size

    def push(self, edge: StreamEdge):
        """Add an item; return the evicted item or ``None``."""
        self._items.append(edge)
        if len(self._items) > self.size:
            return self._items.pop(0)
        return None

    def to_stream(self, name: str = "") -> GraphStream:
        """Materialize the current window contents as a :class:`GraphStream`."""
        return GraphStream(list(self._items), name=name)


def tumbling_windows(stream: GraphStream, size: int) -> Iterator[GraphStream]:
    """Yield consecutive non-overlapping windows of ``size`` items."""
    if size <= 0:
        raise ValueError("window size must be positive")
    for start in range(0, len(stream), size):
        yield stream.window(start, size)
