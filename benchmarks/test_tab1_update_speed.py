"""Benchmark: regenerate Table I (update speed of the four structures).

The paper measures million insertions per second of a C++ implementation; a
pure-Python reproduction cannot match the absolute numbers (see EXPERIMENTS.md
for the discussion), so the assertions below check the relationships that
survive the language change: GSS and TCM update within a small constant factor
of each other, and candidate-bucket sampling does not slow updates down
meaningfully.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import run_update_speed_experiment
from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="module")
def speed_config() -> ExperimentConfig:
    return ExperimentConfig(
        datasets=("email-EuAll", "cit-HepPh", "web-NotreDame"),
        dataset_scale=0.25,
        fingerprint_bits=(16,),
        sequence_length=8,
        candidate_buckets=8,
        extras={"speed_repeats": 2},
    )


@pytest.mark.paper_artifact("tab1")
def test_tab1_update_speed(benchmark, speed_config):
    result = run_once(benchmark, run_update_speed_experiment, speed_config)
    print()
    print(result.to_text())

    structures = {row["structure"] for row in result.rows}
    assert structures == {
        "GSS",
        "GSS(update_many)",
        "GSS(no sampling)",
        "TCM",
        "Adjacency Lists",
    }
    assert all(row["edges_per_second"] > 0 for row in result.rows)

    # The batched ingestion path must not be meaningfully slower than scalar
    # updates.  The generous factor absorbs shared-runner timing noise, like
    # the wide relative_to_tcm band below; typical observed speedup is 1.4-2x.
    for dataset in {row["dataset"] for row in result.rows}:
        rates = {
            row["structure"]: row["edges_per_second"]
            for row in result.rows
            if row["dataset"] == dataset
        }
        assert rates["GSS(update_many)"] >= rates["GSS"] * 0.5

    # GSS update speed is within a small factor of TCM's on every dataset
    # (the paper reports them as similar).
    for dataset in {row["dataset"] for row in result.rows}:
        gss = next(
            row for row in result.rows if row["dataset"] == dataset and row["structure"] == "GSS"
        )
        assert 0.2 <= gss["relative_to_tcm"] <= 10.0
