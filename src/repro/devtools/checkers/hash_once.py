"""hash-once: node/route hashing happens once, at the system edge.

PR 6's hash-once pipeline computes every node hash and routing hash
exactly once when a :class:`~repro.streaming.batch.HashedBatch` is built,
and the columns flow untouched through every ingest layer.  The invariant
used to be enforced by grep ("no scalar ``hash_key`` left in any routing
loop"); this rule makes it permanent: inside any loop (``for``/``while``
or a comprehension) in the ingest/routing layers, calling the scalar hash
family re-hashes per item and silently multiplies the hashing cost the
whole pipeline was built to pay once.

Flagged inside loops:

* the scalar hash family from :mod:`repro.hashing.hash_functions`
  (``hash_key``/``hash_string``/``hash_bytes``);
* per-item route computation via ``.shard_of(...)`` — routing a batch
  item-by-item instead of through ``HashedBatch.split_by_route``.

The designated hash-once sites (``streaming/batch.py`` builds the columns;
scalar single-item ``update()`` entry points hash their one item) carry
inline ``allow`` justifications — the point is that every exception is
written down next to the code.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.framework import Checker, PyFile, Violation, iter_parents

__all__ = ["HashOnceChecker"]

#: The scalar hash family (see repro/hashing/hash_functions.py).
_SCALAR_HASHES = frozenset({"hash_key", "hash_string", "hash_bytes"})
_ROUTE_HELPERS = frozenset({"shard_of"})
_LOOPS = (ast.For, ast.AsyncFor, ast.While, ast.comprehension)


def _called_name(call: ast.Call) -> str:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return ""


def _enclosing_loop(pyfile: PyFile, node: ast.AST) -> bool:
    for ancestor in iter_parents(pyfile, node):
        if isinstance(ancestor, _LOOPS + (ast.GeneratorExp, ast.ListComp, ast.SetComp, ast.DictComp)):
            return True
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A hash call in a nested helper is that helper's business;
            # stop at the function boundary so only *this* body's loops
            # count.
            return False
    return False


class HashOnceChecker(Checker):
    rule = "hash-once"
    description = (
        "no scalar hash_key/re-hashing calls inside routing or ingest loops"
    )
    scope = ("streaming", "cluster", "serve", "core")

    def check_file(self, pyfile: PyFile) -> Iterator[Violation]:
        # The hashing package itself defines and may loop over the family.
        if "hashing" in pyfile.components:
            return
        for node in pyfile.walk():
            if not isinstance(node, ast.Call):
                continue
            name = _called_name(node)
            if name in _SCALAR_HASHES and _enclosing_loop(pyfile, node):
                yield self.violation(
                    pyfile,
                    node,
                    f"scalar {name}() inside a loop re-hashes per item — "
                    "hash once at the edge (HashedBatch) and carry the "
                    "columns through",
                )
            elif name in _ROUTE_HELPERS and _enclosing_loop(pyfile, node):
                yield self.violation(
                    pyfile,
                    node,
                    f"per-item {name}() inside a loop re-routes by scalar "
                    "hash — use HashedBatch.split_by_route for batches",
                )
