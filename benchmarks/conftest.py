"""Shared configuration for the benchmark suite.

Each benchmark module regenerates one table or figure of the paper through the
same runners the CLI uses.  The configurations below keep the default run in
the minutes range on a laptop (pure Python); pass ``--benchmark-only`` to
pytest to run them, and see EXPERIMENTS.md for recorded outputs.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig


def pytest_configure(config):
    config.addinivalue_line("markers", "paper_artifact(name): which table/figure a bench regenerates")


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """Default benchmark configuration: three datasets at reduced scale."""
    return ExperimentConfig(
        datasets=("email-EuAll", "cit-HepPh", "web-NotreDame"),
        dataset_scale=0.2,
        width_factors=(0.8, 1.0, 1.2),
        fingerprint_bits=(12, 16),
        sequence_length=8,
        candidate_buckets=8,
        query_sample=250,
        reachability_pairs=40,
    )


@pytest.fixture(scope="session")
def small_bench_config() -> ExperimentConfig:
    """Smaller configuration for the heavier compound-query benches."""
    return ExperimentConfig(
        datasets=("email-EuAll",),
        dataset_scale=0.15,
        width_factors=(1.0,),
        fingerprint_bits=(12, 16),
        sequence_length=8,
        candidate_buckets=8,
        query_sample=200,
        reachability_pairs=30,
    )


def run_once(benchmark, runner, config):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(runner, args=(config,), rounds=1, iterations=1, warmup_rounds=0)
