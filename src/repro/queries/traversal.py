"""Graph traversals implemented on the three query primitives.

The paper argues (Section III) that once the three primitives are available,
"all kinds of queries and algorithms can be supported" by following the
specific algorithm and calling the primitives for the information needed.
This module supplies the traversal building blocks most of those algorithms
start from — breadth-first and depth-first orders, level structures, strongly
connected components and topological ordering — written purely against the
:class:`~repro.queries.primitives.GraphQueryInterface` protocol, so they run
identically on exact stores and on sketches.

On a sketch the successor sets may contain false positives; every function
therefore accepts an optional ``node_limit`` guard so a query on a wildly
over-approximated graph cannot run away.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.queries.primitives import GraphQueryInterface


def bfs_order(
    store: GraphQueryInterface,
    start: Hashable,
    node_limit: Optional[int] = None,
) -> List[Hashable]:
    """Breadth-first visit order of the nodes reachable from ``start``.

    ``start`` itself is the first element.  ``node_limit`` caps the number of
    visited nodes (useful on sketches whose successor sets over-approximate).
    """
    visited: Set[Hashable] = {start}
    order: List[Hashable] = [start]
    queue: deque = deque([start])
    while queue:
        if node_limit is not None and len(order) >= node_limit:
            break
        current = queue.popleft()
        for neighbor in sorted(store.successor_query(current), key=repr):
            if neighbor in visited:
                continue
            visited.add(neighbor)
            order.append(neighbor)
            queue.append(neighbor)
            if node_limit is not None and len(order) >= node_limit:
                break
    return order


def bfs_levels(
    store: GraphQueryInterface,
    start: Hashable,
    max_depth: Optional[int] = None,
    node_limit: Optional[int] = None,
) -> Dict[Hashable, int]:
    """Hop distance from ``start`` for every reachable node.

    ``start`` maps to 0.  ``max_depth`` stops the expansion after that many
    hops; ``node_limit`` caps the number of visited nodes.
    """
    levels: Dict[Hashable, int] = {start: 0}
    queue: deque = deque([start])
    while queue:
        current = queue.popleft()
        depth = levels[current]
        if max_depth is not None and depth >= max_depth:
            continue
        for neighbor in store.successor_query(current):
            if neighbor in levels:
                continue
            if node_limit is not None and len(levels) >= node_limit:
                return levels
            levels[neighbor] = depth + 1
            queue.append(neighbor)
    return levels


def dfs_order(
    store: GraphQueryInterface,
    start: Hashable,
    node_limit: Optional[int] = None,
) -> List[Hashable]:
    """Depth-first pre-order of the nodes reachable from ``start``.

    Uses an explicit stack so deep graphs do not hit the recursion limit.
    Neighbors are expanded in a deterministic (sorted-by-repr) order so the
    result is reproducible across runs.
    """
    visited: Set[Hashable] = set()
    order: List[Hashable] = []
    stack: List[Hashable] = [start]
    while stack:
        if node_limit is not None and len(order) >= node_limit:
            break
        current = stack.pop()
        if current in visited:
            continue
        visited.add(current)
        order.append(current)
        neighbors = sorted(store.successor_query(current), key=repr, reverse=True)
        for neighbor in neighbors:
            if neighbor not in visited:
                stack.append(neighbor)
    return order


def descendants(
    store: GraphQueryInterface,
    start: Hashable,
    node_limit: Optional[int] = None,
) -> Set[Hashable]:
    """Every node reachable from ``start`` (excluding ``start`` itself)."""
    reached = set(bfs_order(store, start, node_limit=node_limit))
    reached.discard(start)
    return reached


def ancestors(
    store: GraphQueryInterface,
    target: Hashable,
    node_limit: Optional[int] = None,
) -> Set[Hashable]:
    """Every node from which ``target`` is reachable (excluding itself).

    Runs a breadth-first search over *precursor* queries, i.e. the reverse
    graph.
    """
    visited: Set[Hashable] = {target}
    queue: deque = deque([target])
    while queue:
        if node_limit is not None and len(visited) > node_limit:
            break
        current = queue.popleft()
        for neighbor in store.precursor_query(current):
            if neighbor not in visited:
                visited.add(neighbor)
                queue.append(neighbor)
    visited.discard(target)
    return visited


def strongly_connected_components(
    store: GraphQueryInterface,
    nodes: Iterable[Hashable],
    node_limit: Optional[int] = None,
) -> List[Set[Hashable]]:
    """Strongly connected components restricted to ``nodes``.

    Uses the classic Kosaraju two-pass algorithm: a first depth-first pass in
    finish-time order over the forward graph, then component extraction on the
    reverse graph (served by precursor queries).  Only the supplied ``nodes``
    are considered members of components, which keeps the answer well defined
    on sketches whose neighbor sets may include hash artifacts.
    """
    node_list = list(nodes)
    node_set: Set[Hashable] = set(node_list)

    finish_order: List[Hashable] = []
    visited: Set[Hashable] = set()
    for root in node_list:
        if root in visited:
            continue
        # Iterative post-order DFS over the forward graph.
        stack: List[Tuple[Hashable, bool]] = [(root, False)]
        while stack:
            current, expanded = stack.pop()
            if expanded:
                finish_order.append(current)
                continue
            if current in visited:
                continue
            visited.add(current)
            stack.append((current, True))
            for neighbor in sorted(store.successor_query(current), key=repr):
                if neighbor in node_set and neighbor not in visited:
                    stack.append((neighbor, False))
            if node_limit is not None and len(visited) >= node_limit:
                break

    components: List[Set[Hashable]] = []
    assigned: Set[Hashable] = set()
    for root in reversed(finish_order):
        if root in assigned:
            continue
        component: Set[Hashable] = set()
        stack = [root]
        while stack:
            current = stack.pop()
            if current in assigned:
                continue
            assigned.add(current)
            component.add(current)
            for neighbor in store.precursor_query(current):
                if neighbor in node_set and neighbor not in assigned:
                    stack.append(neighbor)
        components.append(component)
    return components


def topological_order(
    store: GraphQueryInterface,
    nodes: Iterable[Hashable],
) -> Optional[List[Hashable]]:
    """Topological order of ``nodes``, or ``None`` when the subgraph has a cycle.

    Kahn's algorithm over the subgraph induced by ``nodes``: in-degrees are
    computed from precursor queries restricted to the node set, then nodes are
    peeled off in zero-in-degree order.
    """
    node_list = list(nodes)
    node_set: Set[Hashable] = set(node_list)
    in_degree: Dict[Hashable, int] = {}
    for node in node_list:
        predecessors = {p for p in store.precursor_query(node) if p in node_set and p != node}
        in_degree[node] = len(predecessors)

    ready = deque(sorted((n for n in node_list if in_degree[n] == 0), key=repr))
    order: List[Hashable] = []
    while ready:
        current = ready.popleft()
        order.append(current)
        for neighbor in sorted(store.successor_query(current), key=repr):
            if neighbor not in node_set or neighbor == current:
                continue
            in_degree[neighbor] -= 1
            if in_degree[neighbor] == 0:
                ready.append(neighbor)
    if len(order) != len(node_list):
        return None
    return order


def has_cycle(store: GraphQueryInterface, nodes: Iterable[Hashable]) -> bool:
    """True when the subgraph induced by ``nodes`` contains a directed cycle."""
    return topological_order(store, nodes) is None
