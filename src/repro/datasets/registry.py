"""Named dataset analogs keyed by the paper's dataset names.

The paper evaluates on five graphs.  We register a scaled-down synthetic
analog for each, chosen so experiments finish quickly in pure Python while
preserving the node/edge ratio and skew of the original:

================  ===========================  ======================  =====================
paper dataset      original size                analog (default scale)  generator family
================  ===========================  ======================  =====================
email-EuAll        265 214 nodes / 420 045 e    4 000 / 12 000          communication
cit-HepPh          34 546 nodes / 421 578 e     3 000 / 15 000          citation
web-NotreDame      325 729 nodes / 1 497 134 e  5 000 / 20 000          web
lkml-reply         63 399 nodes / 1 096 440 e   2 500 / 14 000          communication
caida-networkflow  2.6 M nodes / 445 M items    6 000 / 24 000          communication (heavy duplication)
================  ===========================  ======================  =====================

``load_dataset(name, scale=...)`` multiplies those counts so the benches can
be run at larger sizes when more time is available.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.datasets.synthetic import (
    citation_stream,
    communication_stream,
    web_stream,
)
from repro.streaming.stream import GraphStream


@dataclass(frozen=True)
class DatasetSpec:
    """One registered analog: base sizes plus the generator that builds it."""

    name: str
    paper_nodes: int
    paper_edges: int
    analog_nodes: int
    analog_edges: int
    family: str
    duplication: float = 0.5
    seed: int = 101

    def describe(self) -> str:
        """Human-readable one-line description for reports."""
        return (
            f"{self.name}: analog of the paper dataset with "
            f"{self.paper_nodes} nodes / {self.paper_edges} edges, "
            f"generated at {self.analog_nodes} nodes / {self.analog_edges} edges "
            f"({self.family} family)"
        )


DATASET_SPECS: Dict[str, DatasetSpec] = {
    "email-EuAll": DatasetSpec(
        name="email-EuAll",
        paper_nodes=265214,
        paper_edges=420045,
        analog_nodes=4000,
        analog_edges=12000,
        family="communication",
        duplication=1.0,
        seed=101,
    ),
    "cit-HepPh": DatasetSpec(
        name="cit-HepPh",
        paper_nodes=34546,
        paper_edges=421578,
        analog_nodes=3000,
        analog_edges=15000,
        family="citation",
        duplication=0.0,
        seed=103,
    ),
    "web-NotreDame": DatasetSpec(
        name="web-NotreDame",
        paper_nodes=325729,
        paper_edges=1497134,
        analog_nodes=5000,
        analog_edges=20000,
        family="web",
        duplication=0.2,
        seed=107,
    ),
    "lkml-reply": DatasetSpec(
        name="lkml-reply",
        paper_nodes=63399,
        paper_edges=1096440,
        analog_nodes=2500,
        analog_edges=14000,
        family="communication",
        duplication=2.0,
        seed=109,
    ),
    "caida-networkflow": DatasetSpec(
        name="caida-networkflow",
        paper_nodes=2601005,
        paper_edges=445440480,
        analog_nodes=6000,
        analog_edges=24000,
        family="communication",
        duplication=3.0,
        seed=113,
    ),
}


def list_datasets() -> List[str]:
    """Return the registered dataset names in the paper's order."""
    return list(DATASET_SPECS)


def load_dataset(name: str, scale: float = 1.0, seed: int = None) -> GraphStream:
    """Generate the synthetic analog of a paper dataset.

    Parameters
    ----------
    name:
        One of :func:`list_datasets`.
    scale:
        Multiplier applied to the analog node and edge counts (1.0 keeps the
        quick defaults; larger values approach the original sizes).
    seed:
        Overrides the registered seed, allowing repeated independent draws.
    """
    if name not in DATASET_SPECS:
        raise KeyError(f"unknown dataset {name!r}; known: {', '.join(DATASET_SPECS)}")
    if scale <= 0:
        raise ValueError("scale must be positive")
    spec = DATASET_SPECS[name]
    nodes = max(10, int(spec.analog_nodes * scale))
    edges = max(20, int(spec.analog_edges * scale))
    use_seed = spec.seed if seed is None else seed

    generators: Dict[str, Callable[..., GraphStream]] = {
        "communication": lambda: communication_stream(
            nodes, edges, name=name, seed=use_seed, duplication=spec.duplication
        ),
        "citation": lambda: citation_stream(nodes, edges, name=name, seed=use_seed),
        "web": lambda: web_stream(nodes, edges, name=name, seed=use_seed),
    }
    return generators[spec.family]()
