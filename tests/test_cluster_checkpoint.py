"""Tests for whole-cluster checkpoint/recovery (:mod:`repro.cluster.checkpoint`).

The production law: checkpoint → kill every worker → restore → resume the
stream, and the final answers match an uninterrupted run exactly.
"""

from __future__ import annotations

import json

import pytest

from repro.api import SketchSpec
from repro.cluster import (
    CheckpointError,
    ShardedSummary,
    load_checkpoint,
    read_manifest,
    save_checkpoint,
)
from repro.cluster.checkpoint import MANIFEST_NAME
from repro.cluster.transport import shm_available

SHARD_PARAMS = dict(matrix_width=20, sequence_length=4, candidate_buckets=4)


def make_cluster(workers: int = 2, transport: str = "auto") -> ShardedSummary:
    return ShardedSummary(
        SketchSpec("gss", params=SHARD_PARAMS), workers=workers, transport=transport
    )


def stream_items(count: int = 160):
    return [
        (f"n{i % 13}", f"n{(i * 7 + 3) % 17}", float(1 + i % 4)) for i in range(count)
    ]


class TestCheckpointLayout:
    def test_manifest_and_one_file_per_shard(self, tmp_path):
        with make_cluster(workers=3) as cluster:
            cluster.update_many(stream_items())
            manifest_path = save_checkpoint(cluster, tmp_path / "ckpt")
        manifest = read_manifest(tmp_path / "ckpt")
        assert manifest_path.name == MANIFEST_NAME
        assert manifest["workers"] == 3
        assert len(manifest["shards"]) == 3
        for entry in manifest["shards"]:
            assert (tmp_path / "ckpt" / entry["file"]).exists()
        # No stray temp files from the atomic-write protocol.
        assert not list((tmp_path / "ckpt").glob("*.tmp"))

    def test_manifest_records_routing_and_counts(self, tmp_path):
        with make_cluster() as cluster:
            cluster.update_many(stream_items(100))
            save_checkpoint(cluster, tmp_path)
            stats = cluster.shard_ingest_stats()
        manifest = read_manifest(tmp_path)
        assert manifest["update_count"] == 100
        assert [entry["items_routed"] for entry in manifest["shards"]] == (
            stats.items_routed
        )

    def test_shard_files_restore_standalone(self, tmp_path):
        from repro.api import from_dict

        with make_cluster() as cluster:
            cluster.update_many(stream_items(60))
            save_checkpoint(cluster, tmp_path)
        document = json.loads((tmp_path / "shard-0.json").read_text())
        shard = from_dict(document)  # an ordinary GSS snapshot
        assert shard.update_count >= 0


class TestRecovery:
    def test_kill_mid_stream_then_restore_matches_uninterrupted(self, tmp_path):
        items = stream_items(300)
        half = len(items) // 2

        with make_cluster() as uninterrupted:
            uninterrupted.update_many(items)
            expected = {
                (source, destination): uninterrupted.edge_query(source, destination)
                for source, destination, _ in items
            }

        interrupted = make_cluster()
        interrupted.update_many(items[:half])
        save_checkpoint(interrupted, tmp_path)
        interrupted.kill()  # crash: no graceful shutdown, no extra flush

        restored = load_checkpoint(tmp_path)
        try:
            assert restored.update_count == half
            restored.update_many(items[half:])
            assert restored.update_count == len(items)
            for key, weight in expected.items():
                assert restored.edge_query(*key) == weight
        finally:
            restored.close()

    @pytest.mark.skipif(not shm_available(), reason="needs the shm transport")
    def test_kill_mid_stream_on_shm_transport_restores_equivalently(self, tmp_path):
        # Same crash drill on the shared-memory data plane: in-flight ring
        # segments die with the workers, the checkpoint (a flush barrier)
        # defines the resume point, and the restored cluster — whatever
        # transport it picks — answers like an uninterrupted shm run.
        items = stream_items(300)
        half = len(items) // 2

        with make_cluster(transport="shm") as uninterrupted:
            uninterrupted.update_many(items)
            expected = {
                (source, destination): uninterrupted.edge_query(source, destination)
                for source, destination, _ in items
            }

        interrupted = make_cluster(transport="shm")
        assert interrupted.transport == "shm"
        interrupted.update_many(items[:half])
        save_checkpoint(interrupted, tmp_path)
        interrupted.kill()  # crash: ring segments released, workers gone

        restored = load_checkpoint(tmp_path)
        try:
            assert restored.update_count == half
            restored.update_many(items[half:])
            for key, weight in expected.items():
                assert restored.edge_query(*key) == weight
        finally:
            restored.close()

    def test_restore_preserves_topology_answers(self, tmp_path):
        items = stream_items(120)
        with make_cluster() as cluster:
            cluster.update_many(items)
            nodes = sorted({source for source, _, _ in items})
            expected = {node: cluster.successor_query(node) for node in nodes}
            precursors = {node: cluster.precursor_query(node) for node in nodes}
            save_checkpoint(cluster, tmp_path)
        restored = load_checkpoint(tmp_path)
        try:
            for node in nodes:
                assert restored.successor_query(node) == expected[node]
                assert restored.precursor_query(node) == precursors[node]
        finally:
            restored.close()

    def test_checkpoint_is_resumable_multiple_times(self, tmp_path):
        # The same checkpoint can seed several recoveries (e.g. replayed on
        # different machines); each restore is independent.
        with make_cluster() as cluster:
            cluster.update_many(stream_items(80))
            save_checkpoint(cluster, tmp_path)
            reference = cluster.edge_query("n1", "n10")
        for _ in range(2):
            restored = load_checkpoint(tmp_path)
            try:
                assert restored.edge_query("n1", "n10") == reference
            finally:
                restored.close()


class TestManifestValidation:
    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no manifest"):
            read_manifest(tmp_path / "nope")

    def test_invalid_json_raises(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(CheckpointError, match="not valid JSON"):
            read_manifest(tmp_path)

    def test_foreign_format_raises(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(json.dumps({"format": "other"}))
        with pytest.raises(CheckpointError, match="format"):
            read_manifest(tmp_path)

    def test_shard_count_mismatch_raises(self, tmp_path):
        with make_cluster() as cluster:
            cluster.update("a", "b")
            save_checkpoint(cluster, tmp_path)
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        manifest["shards"] = manifest["shards"][:1]
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="shard files"):
            read_manifest(tmp_path)

    def test_missing_shard_file_raises(self, tmp_path):
        with make_cluster() as cluster:
            cluster.update("a", "b")
            save_checkpoint(cluster, tmp_path)
        (tmp_path / "shard-1.json").unlink()
        with pytest.raises(CheckpointError, match="missing shard snapshot"):
            load_checkpoint(tmp_path)
