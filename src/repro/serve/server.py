"""The asyncio TCP front end over one summary — :class:`SummaryServer`.

Architecture
------------

One acceptor serves three kinds of traffic on a single port:

* **protocol connections** — length-prefixed frames (see
  :mod:`repro.serve.protocol`).  Each connection gets a reader coroutine and
  a writer coroutine joined by a FIFO reply queue, so replies always leave
  in request order even though ingest batches are applied asynchronously;
* **HTTP probes** — a request starting with ``GET``/``HEAD`` is answered as
  plain HTTP (``/metrics``, ``/healthz``) and closed, so ``curl`` and
  scrapers need no custom client;
* **signals** — SIGINT/SIGTERM trigger the graceful drain: stop accepting,
  let connections finish, flush the summary, checkpoint when a directory is
  configured, close the cluster (releasing the shm rings).

The summary itself (typically a :class:`~repro.cluster.ShardedSummary`) is
**not** asyncio-aware — its worker pipes block, and they are single-consumer.
All summary work therefore funnels through a one-thread executor: the event
loop stays free to accept frames and answer ``/metrics`` while batches grind
through the cluster, and summary operations retain a global total order —
which is exactly what makes reads snapshot-consistent during a checkpoint
(the checkpoint holds the cluster lock across every shard; queries serialize
before or after it, never between two shards' snapshots).

Backpressure
------------

Admission control bounds server memory instead of letting slow workers grow
an unbounded backlog:

* per connection, at most ``credits`` ingest frames may be admitted-but-
  unapplied (the credit window, advertised in the hello frame);
* globally, at most ``max_inflight`` batches may sit in the executor queue.

An ingest frame over either bound receives an explicit ``busy`` reply with a
``retry_after`` hint — and the connection enters *busy mode*: every further
ingest frame is also rejected until the client sends a ``resume`` op.  The
sticky rejection is what preserves stream order: a rejected batch can never
be overtaken by a later batch that happened to arrive when a slot was free.
The bundled client turns this into drain → pause → resume → resend, so a
well-behaved feed loses nothing and stays ordered (the load generator and
the serve tests assert byte-identical answers under sustained busy
pressure).
"""

from __future__ import annotations

import asyncio
import signal as signal_module
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Set, Union

from repro.obs.export import render_prometheus
from repro.serve import protocol
from repro.serve.metrics import (
    ServerMetrics,
    collect_obs_snapshot,
    http_response,
    http_text_response,
    render_metrics,
)

__all__ = ["ServeConfig", "ServerHandle", "SummaryServer", "serve_in_thread"]

_CLOSE = object()  # writer-queue sentinel

#: Query methods a client may invoke; everything else is rejected so the
#: wire protocol can never reach lifecycle methods like ``close``/``kill``.
ALLOWED_CALLS = frozenset(
    {
        "edge_query",
        "successor_query",
        "precursor_query",
        "node_in_weight",
        "node_out_weight",
        "memory_bytes",
    }
)


@dataclass
class ServeConfig:
    """Tunables of one :class:`SummaryServer`."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port off server.port
    #: Per-connection ingest credit window (admitted-but-unapplied frames).
    credits: int = 8
    #: Global bound on batches sitting in the summary executor queue.
    max_inflight: int = 64
    #: Retry hint (seconds) carried by ``busy`` replies.
    retry_after: float = 0.05
    #: Checkpoint target for the ``checkpoint`` op and the graceful drain.
    checkpoint_dir: Optional[Union[str, Path]] = None
    #: How long the graceful drain waits for open connections.
    drain_timeout: float = 10.0
    #: Whether shutdown also closes the summary (the CLI wants this; tests
    #: that keep querying the summary after stopping the server do not).
    close_summary: bool = True
    #: Whether to enable cluster telemetry on the served summary and expose
    #: the merged instrument snapshot (JSON ``obs`` key, Prometheus text).
    #: The server's own request counters/histograms record either way (they
    #: live in a private registry and cost a few attribute bumps per frame).
    obs: bool = True


class _Connection:
    """Per-connection state: the FIFO reply queue and the credit window."""

    __slots__ = ("writer", "queue", "admitted", "busy_mode", "closing")

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.queue: asyncio.Queue = asyncio.Queue()
        self.admitted = 0  # ingest frames admitted but not yet replied to
        self.busy_mode = False
        self.closing = False


class SummaryServer:
    """Serve one summary to many concurrent network clients.

    Parameters
    ----------
    summary:
        Any :class:`~repro.api.GraphSummary`.  A summary speaking the hashed
        ingest protocol (``update_many_hashed`` + ``hash_spec``) gets its
        hash spec advertised to clients, which then ship pre-hashed columns;
        anything else is fed through plain ``update_many``.
    config:
        A :class:`ServeConfig` (defaults are loopback + ephemeral port).
    """

    def __init__(self, summary, config: Optional[ServeConfig] = None) -> None:
        self.summary = summary
        self.config = config or ServeConfig()
        if self.config.credits < 1:
            raise ValueError("credits must be at least 1")
        if self.config.max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        self.metrics = ServerMetrics()
        if self.config.obs:
            # Turn on the served summary's own telemetry (cluster routing
            # instruments, worker spans) so /metrics shows the whole stack.
            enable_obs = getattr(summary, "enable_obs", None)
            if callable(enable_obs):
                enable_obs()
        spec_of = getattr(summary, "hash_spec", None)
        hashed_ingest = getattr(summary, "update_many_hashed", None)
        self._hash_spec = (
            spec_of() if callable(spec_of) and callable(hashed_ingest) else None
        )
        self._binary_ingest = (
            protocol.binary_ingest_supported() and self._hash_spec is not None
        )
        # One thread: the cluster pipes are single-consumer and the global
        # total order over summary operations is the consistency argument.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-summary"
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._connections: Set[_Connection] = set()
        self._closing = False
        self._stopped: Optional[asyncio.Event] = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting (returns once the socket is listening)."""
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host, port=self.config.port
        )

    @property
    def port(self) -> int:
        """The actually-bound port (useful with the ephemeral default)."""
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def host(self) -> str:
        return self.config.host

    def install_signal_handlers(self) -> None:
        """Route SIGINT/SIGTERM to the graceful drain (main thread only)."""
        assert self._loop is not None, "start() first"
        for signum in (signal_module.SIGINT, signal_module.SIGTERM):
            self._loop.add_signal_handler(
                signum, lambda: asyncio.ensure_future(self.shutdown())
            )

    async def wait_stopped(self) -> None:
        """Block until a shutdown (signal- or call-initiated) completes."""
        assert self._stopped is not None, "start() first"
        await self._stopped.wait()

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, drain connections, flush, close.

        Safe to call more than once; later calls wait for the first.
        """
        if self._closing:
            await self.wait_stopped()
            return
        self._closing = True
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()
        # Let open connections finish their business for a bounded time.
        deadline = self._loop.time() + self.config.drain_timeout
        while self._connections and self._loop.time() < deadline:
            await asyncio.sleep(0.02)
        for connection in list(self._connections):
            connection.closing = True
            connection.queue.put_nowait(_CLOSE)
        # In-flight executor work drains here: flush is queued behind it.
        try:
            if self.config.close_summary:
                shutdown = getattr(self.summary, "shutdown", None)
                if callable(shutdown):
                    await self._run(shutdown, self.config.checkpoint_dir)
                else:
                    await self._run(self._flush_and_checkpoint)
                    close = getattr(self.summary, "close", None)
                    if callable(close):
                        await self._run(close)
            else:
                await self._run(self._flush_and_checkpoint)
        finally:
            # shutdown(wait=True) joins the summary worker thread; parking
            # the join on the default executor keeps the loop free to
            # finish draining connection writers during teardown.
            await self._loop.run_in_executor(None, self._executor.shutdown)
            self._stopped.set()

    def _flush_and_checkpoint(self) -> None:
        flush = getattr(self.summary, "flush", None)
        if callable(flush):
            flush()
        if self.config.checkpoint_dir is not None:
            self._checkpoint()

    def _checkpoint(self) -> str:
        from repro.cluster.checkpoint import save_checkpoint

        path = save_checkpoint(self.summary, self.config.checkpoint_dir)
        self.metrics.checkpoints.inc()
        return str(path)

    def _run(self, fn, *args):
        """Queue one summary operation on the single executor thread."""
        return self._loop.run_in_executor(self._executor, fn, *args)

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.connections_total.inc()
        self.metrics.connections_open.inc()
        connection = _Connection(writer)
        self._connections.add(connection)
        writer_task = asyncio.ensure_future(self._write_replies(connection))
        try:
            header = await reader.readexactly(protocol.HEADER_SIZE)
            if header[:4] in (b"GET ", b"HEAD"):
                await self._serve_http(reader, writer, header)
                return
            while True:
                kind, length = protocol.unpack_header(header)
                if length > protocol.MAX_FRAME_BYTES:
                    raise protocol.ProtocolError(
                        f"frame of {length} bytes exceeds the protocol limit"
                    )
                payload = await reader.readexactly(length) if length else b""
                self.metrics.frames_received.inc()
                self._dispatch_frame(connection, kind, payload)
                if connection.closing:
                    break
                header = await reader.readexactly(protocol.HEADER_SIZE)
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            BrokenPipeError,
        ):
            pass  # client went away; nothing to answer
        except protocol.ProtocolError as error:
            self.metrics.errors.inc()
            connection.queue.put_nowait(
                protocol.pack_json({"op": "error", "error": str(error)})
            )
        finally:
            connection.queue.put_nowait(_CLOSE)
            try:
                await writer_task
            except Exception:  # pragma: no cover - writer already logged
                pass
            self._connections.discard(connection)
            self.metrics.connections_open.dec()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass

    async def _write_replies(self, connection: _Connection) -> None:
        """Drain the FIFO reply queue onto the socket, strictly in order."""
        while True:
            item = await connection.queue.get()
            if item is _CLOSE:
                return
            payload = item if isinstance(item, (bytes, bytearray)) else await item
            try:
                connection.writer.write(payload)
                await connection.writer.drain()
            except (ConnectionError, BrokenPipeError):
                # Keep consuming so pending reply tasks still settle their
                # metrics; nothing can be delivered any more.
                continue

    # -- frame dispatch ------------------------------------------------------

    def _dispatch_frame(
        self, connection: _Connection, kind: int, payload: bytes
    ) -> None:
        # One timestamp at frame decode: every reply path below observes
        # reply-ready minus this, the server-side per-op latency the load
        # generator diffs against its client-side percentiles.
        started = time.perf_counter()
        if kind == protocol.FRAME_HBATCH:
            self.metrics.binary_ingest_frames.inc()
            self._ingest(connection, payload, binary=True, started=started)
        elif kind == protocol.FRAME_JSON:
            document = protocol.decode_json_payload(payload)
            self._dispatch_op(connection, document, started)
        else:
            raise protocol.ProtocolError(f"unknown frame kind {kind}")

    def _dispatch_op(
        self, connection: _Connection, document: dict, started: float
    ) -> None:
        operation = document.get("op")
        if operation == "ingest":
            self._ingest(connection, document, binary=False, started=started)
        elif operation == "call":
            self._call(connection, document, started)
        elif operation == "hello":
            connection.queue.put_nowait(protocol.pack_json(self._hello()))
        elif operation == "resume":
            connection.busy_mode = False
            connection.queue.put_nowait(protocol.pack_json({"op": "ok"}))
        elif operation == "flush":
            self.metrics.flushes.inc()
            self._enqueue_result(
                connection, self._flush_op, op="flush", started=started
            )
        elif operation == "checkpoint":
            if self.config.checkpoint_dir is None:
                self.metrics.errors.inc()
                connection.queue.put_nowait(
                    protocol.pack_json(
                        {"op": "error", "error": "server has no --checkpoint-dir"}
                    )
                )
            else:
                self._enqueue_result(
                    connection, self._checkpoint, op="checkpoint", started=started
                )
        elif operation == "metrics":
            connection.queue.put_nowait(
                protocol.pack_json({"op": "ok", "metrics": self._metrics_document()})
            )
        elif operation == "close":
            connection.closing = True
            connection.queue.put_nowait(protocol.pack_json({"op": "bye"}))
        else:
            self.metrics.errors.inc()
            connection.queue.put_nowait(
                protocol.pack_json(
                    {"op": "error", "error": f"unknown op {operation!r}"}
                )
            )

    def _hello(self) -> dict:
        return {
            "op": "hello",
            "protocol": protocol.PROTOCOL_VERSION,
            "server": "repro-serve",
            "hash_spec": protocol.spec_to_wire(self._hash_spec),
            "binary_ingest": self._binary_ingest,
            "credits": self.config.credits,
            "retry_after": self.config.retry_after,
            "workers": getattr(self.summary, "workers", None),
            "transport": getattr(self.summary, "transport", None),
        }

    def _flush_op(self) -> None:
        flush = getattr(self.summary, "flush", None)
        if callable(flush):
            flush()

    def _metrics_document(self) -> dict:
        document = render_metrics(
            self.metrics,
            self.summary,
            credits=self.config.credits,
            max_inflight=self.config.max_inflight,
            transport=getattr(self.summary, "transport", None),
        )
        if self.config.obs:
            # Additive: every pre-existing key above is untouched; the full
            # instrument snapshot rides along for repro's own tooling
            # (`python -m repro obs`) and the Prometheus renderer.
            document["obs"] = self._obs_document()
        return document

    def _obs_document(self) -> dict:
        return collect_obs_snapshot(self.metrics, self.summary)

    # -- ingest path ---------------------------------------------------------

    def _ingest(
        self, connection: _Connection, payload, *, binary: bool, started: float
    ) -> None:
        self.metrics.ingest_frames.inc()
        if (
            connection.busy_mode
            or self.metrics.inflight.value >= self.config.max_inflight
            or connection.admitted >= self.config.credits
        ):
            # Sticky rejection: once one frame bounces, every later ingest
            # frame bounces too (until `resume`), so a retried batch can
            # never be applied out of order.
            connection.busy_mode = True
            self.metrics.busy_replies.inc()
            connection.queue.put_nowait(
                protocol.pack_json(
                    {"op": "busy", "retry_after": self.config.retry_after}
                )
            )
            return
        self.metrics.admit()
        connection.admitted += 1
        future = self._run(
            self._apply_binary if binary else self._apply_items, payload
        )

        async def settle() -> bytes:
            try:
                applied = await future
            except Exception as error:  # noqa: BLE001 - reported to the client
                self.metrics.errors.inc()
                return protocol.pack_json(
                    {"op": "error", "error": f"{type(error).__name__}: {error}"}
                )
            else:
                self.metrics.ingest_items.inc(applied)
                return protocol.pack_json({"op": "ok", "applied": applied})
            finally:
                self.metrics.settle()
                connection.admitted -= 1
                # Single-threaded event loop: the observe cannot race the
                # /metrics renderer or another settle coroutine.
                self.metrics.observe_request(
                    "ingest", time.perf_counter() - started
                )

        connection.queue.put_nowait(asyncio.ensure_future(settle()))

    def _apply_binary(self, payload: bytes) -> int:
        """Executor-side: decode a binary frame and feed the hashed path."""
        batch = protocol.decode_ingest_payload(payload, self._hash_spec)
        return self.summary.update_many_hashed(batch)

    def _apply_items(self, document: dict) -> int:
        """Executor-side: feed a JSON ingest frame through ``update_many``."""
        items = [tuple(item) for item in document["items"]]
        return self.summary.update_many(items)

    # -- query path ----------------------------------------------------------

    def _call(
        self, connection: _Connection, document: dict, started: float
    ) -> None:
        method = document.get("method")
        if method not in ALLOWED_CALLS:
            self.metrics.errors.inc()
            connection.queue.put_nowait(
                protocol.pack_json(
                    {"op": "error", "error": f"method {method!r} is not servable"}
                )
            )
            return
        self.metrics.queries.inc()
        args = [protocol.decode_value(value) for value in document.get("args", [])]
        bound = getattr(self.summary, method)
        self._enqueue_result(connection, bound, *args, op=method, started=started)

    def _enqueue_result(
        self,
        connection: _Connection,
        fn,
        *args,
        op: Optional[str] = None,
        started: Optional[float] = None,
    ) -> None:
        """Run ``fn`` on the executor; reply ``ok``/``error`` in FIFO order.

        With ``op``/``started`` the reply is also timed into the per-op
        latency histogram (frame decode → reply ready, queue wait included —
        that is the latency a client actually experiences server-side).
        """
        future = self._run(fn, *args)

        async def settle() -> bytes:
            try:
                value = await future
            except Exception as error:  # noqa: BLE001 - reported to the client
                self.metrics.errors.inc()
                return protocol.pack_json(
                    {"op": "error", "error": f"{type(error).__name__}: {error}"}
                )
            finally:
                if op is not None:
                    self.metrics.observe_request(
                        op, time.perf_counter() - started
                    )
            return protocol.pack_json(
                {"op": "ok", "value": protocol.encode_value(value)}
            )

        connection.queue.put_nowait(asyncio.ensure_future(settle()))

    # -- HTTP sidecar --------------------------------------------------------

    async def _serve_http(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        prefix: bytes,
    ) -> None:
        """Answer one plain HTTP request (``/metrics``, ``/healthz``).

        ``/metrics`` content-negotiates: the JSON document by default, the
        Prometheus text exposition (format 0.0.4) when the request carries
        ``Accept: text/plain`` — so ``curl`` keeps its JSON and a Prometheus
        scraper gets what it expects from the same endpoint.
        """
        try:
            line = prefix + await asyncio.wait_for(reader.readline(), timeout=5.0)
            accept = ""
            while True:  # drain headers so Accept can be honoured
                header = await asyncio.wait_for(reader.readline(), timeout=5.0)
                if header in (b"", b"\r\n", b"\n"):
                    break
                name, _, value = header.decode("latin-1", "replace").partition(":")
                if name.strip().lower() == "accept":
                    accept = value.strip().lower()
        except asyncio.TimeoutError:
            return
        parts = line.decode("latin-1", "replace").split()
        path = parts[1] if len(parts) >= 2 else "/"
        if path.startswith("/metrics"):
            if "text/plain" in accept:
                response = http_text_response(
                    render_prometheus(self._obs_document())
                )
            else:
                response = http_response(self._metrics_document())
        elif path.startswith("/healthz"):
            response = http_response({"status": "ok"})
        else:
            response = http_response(
                {"error": f"unknown path {path!r}"}, status="404 Not Found"
            )
        try:
            writer.write(response)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):  # pragma: no cover
            pass


# -- background-thread embedding ---------------------------------------------


class ServerHandle:
    """A :class:`SummaryServer` running on a dedicated event-loop thread.

    Returned by :func:`serve_in_thread`; used by the load generator's
    self-host mode, the serve tests and ``record_bench.py --serve``.
    """

    def __init__(self, server: SummaryServer, loop, thread: threading.Thread) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def metrics_document(self) -> dict:
        return self.server._metrics_document()

    def stop(self, timeout: float = 30.0) -> None:
        """Run the graceful drain and join the loop thread."""
        if self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.server.shutdown(), self._loop
            )
            future.result(timeout=timeout)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_in_thread(
    summary, config: Optional[ServeConfig] = None
) -> ServerHandle:
    """Start a :class:`SummaryServer` on a fresh daemon thread.

    Blocks until the socket is listening, so ``handle.port`` is valid
    immediately.  Signal handlers are *not* installed (not the main thread);
    stop through :meth:`ServerHandle.stop` or as a context manager.
    """
    started = threading.Event()
    failure: list = []
    holder: dict = {}

    async def _main() -> None:
        server = SummaryServer(summary, config)
        try:
            await server.start()
        except Exception as error:  # pragma: no cover - bind failures
            failure.append(error)
            started.set()
            return
        holder["server"] = server
        holder["loop"] = asyncio.get_running_loop()
        started.set()
        await server.wait_stopped()

    thread = threading.Thread(
        target=lambda: asyncio.run(_main()), name="repro-serve", daemon=True
    )
    thread.start()
    started.wait()
    if failure:
        raise failure[0]
    return ServerHandle(holder["server"], holder["loop"], thread)
