"""The instruments behind the server's ``/metrics`` endpoint.

:class:`ServerMetrics` owns a private :class:`~repro.obs.MetricsRegistry`
(never the process-global trace registry — embedding a server in a test or a
notebook must not leak series into unrelated telemetry) and exposes its
counters/gauges as attributes with the same names the old ad-hoc integer
fields had, so the server's call sites read naturally (``metrics.queries
.inc()``) and :func:`render_metrics` keeps every historical JSON key.

On top of the counters the registry buys the server true latency
distributions: :meth:`ServerMetrics.observe_request` records each served
operation into ``repro_serve_request_seconds{op=...}``, the histogram the
load generator diffs before/after a run to report *server-side* p50/p99 next
to its client-side percentiles.

Collection deliberately touches only client-side bookkeeping (never the
worker pipes): :func:`collect_obs_snapshot` merges the server's private
registry with the summary's cached cluster view
(:meth:`~repro.cluster.ShardedSummary.obs_snapshot`), so ``/metrics``
answers promptly even while the summary executor is saturated with ingest
work — exactly when an operator most wants to look at it.
"""

from __future__ import annotations

import json
import time
from typing import Dict, Optional

from repro.obs.registry import Histogram, MetricsRegistry, merge_snapshots

__all__ = [
    "REQUEST_LATENCY_FAMILY",
    "ServerMetrics",
    "collect_obs_snapshot",
    "http_response",
    "http_text_response",
    "render_metrics",
]

#: Per-operation served-request latency (labels: ``op`` = ``ingest``,
#: ``edge_query``, ``flush``, ...), measured frame-decode → reply-ready on
#: the server side.
REQUEST_LATENCY_FAMILY = "repro_serve_request_seconds"
_REQUEST_HELP = "Server-side latency of served operations (label: op)."


class ServerMetrics:
    """Registry-backed instrument block owned by one :class:`SummaryServer`.

    Every attribute is a live instrument (``.inc()`` / ``.value``), all
    recorded into ``self.registry`` — a private registry so two servers (or
    a server and the ambient trace registry) never share series.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.started = time.monotonic()
        r = self.registry
        self.connections_total = r.counter(
            "repro_serve_connections_total", "TCP connections accepted."
        )
        self.connections_open = r.gauge(
            "repro_serve_connections_open", "TCP connections currently open."
        )
        self.frames_received = r.counter(
            "repro_serve_frames_received_total", "Protocol frames received."
        )
        self.ingest_frames = r.counter(
            "repro_serve_ingest_frames_total", "Ingest frames received."
        )
        self.ingest_items = r.counter(
            "repro_serve_ingest_items_total", "Stream items applied for clients."
        )
        self.binary_ingest_frames = r.counter(
            "repro_serve_binary_ingest_frames_total",
            "Ingest frames that arrived on the binary hashed-batch path.",
        )
        self.busy_replies = r.counter(
            "repro_serve_busy_replies_total",
            "Ingest frames rejected by admission control (credit/inflight).",
        )
        self.queries = r.counter(
            "repro_serve_queries_total", "Query calls served."
        )
        self.flushes = r.counter(
            "repro_serve_flushes_total", "Explicit flush barriers served."
        )
        self.checkpoints = r.counter(
            "repro_serve_checkpoints_total", "Checkpoints written."
        )
        self.errors = r.counter(
            "repro_serve_errors_total", "Errors replied to clients."
        )
        #: Batches admitted but not yet applied by the summary executor.
        self.inflight = r.gauge(
            "repro_serve_inflight_batches",
            "Batches admitted but not yet applied by the summary executor.",
        )
        #: Largest ``inflight`` observed (admission-queue high water).
        self.inflight_high_water = r.gauge(
            "repro_serve_inflight_high_water",
            "High-water mark of admitted-but-unapplied batches.",
        )
        # Per-op latency histograms, cached so the reply path never
        # re-resolves family + label set per request.
        self._op_latency: Dict[str, Histogram] = {}

    def admit(self) -> None:
        self.inflight.inc()
        self.inflight_high_water.set_max(self.inflight.value)

    def settle(self) -> None:
        self.inflight.dec()

    def observe_request(self, op: str, seconds: float) -> None:
        """Record one served operation into the per-op latency histogram."""
        histogram = self._op_latency.get(op)
        if histogram is None:
            histogram = self.registry.histogram(
                REQUEST_LATENCY_FAMILY, _REQUEST_HELP, op=op
            )
            self._op_latency[op] = histogram
        histogram.observe(seconds)


def collect_obs_snapshot(metrics: ServerMetrics, summary) -> Dict:
    """Merged telemetry: the server's registry ⊕ the summary's cluster view.

    The summary contribution (parent routing instruments plus cached worker
    snapshots) appears only when the summary exposes ``obs_snapshot()`` and
    has telemetry enabled; a plain in-process sketch contributes nothing and
    the result is just the server's own instruments.
    """
    parts = [metrics.registry.snapshot()]
    obs_snapshot = getattr(summary, "obs_snapshot", None)
    if callable(obs_snapshot):
        parts.append(obs_snapshot())
    return merge_snapshots(*parts)


def render_metrics(
    metrics: ServerMetrics,
    summary,
    *,
    credits: int,
    max_inflight: int,
    transport: Optional[str] = None,
) -> Dict:
    """One JSON-safe snapshot of the server and its summary.

    ``summary`` may be any :class:`~repro.api.GraphSummary`; the shard
    section appears only when it exposes ``shard_ingest_stats()`` (the
    sharded deployments).  ``update_count`` counts items *routed*, which can
    momentarily exceed items applied — the difference is what ``inflight``
    measures.  Every key predates the registry port and keeps its name and
    type; the full instrument detail lives under the ``obs`` key the server
    adds next to this document.
    """
    document: Dict = {
        "server": "repro-serve",
        "uptime_seconds": time.monotonic() - metrics.started,
        "connections_open": int(metrics.connections_open.value),
        "connections_total": int(metrics.connections_total.value),
        "frames_received": int(metrics.frames_received.value),
        "ingest_frames": int(metrics.ingest_frames.value),
        "ingest_items": int(metrics.ingest_items.value),
        "binary_ingest_frames": int(metrics.binary_ingest_frames.value),
        "busy_replies": int(metrics.busy_replies.value),
        "queries": int(metrics.queries.value),
        "flushes": int(metrics.flushes.value),
        "checkpoints": int(metrics.checkpoints.value),
        "errors": int(metrics.errors.value),
        "inflight_batches": int(metrics.inflight.value),
        "inflight_high_water": int(metrics.inflight_high_water.value),
        "credits_per_connection": credits,
        "max_inflight_batches": max_inflight,
    }
    if transport is not None:
        document["transport"] = transport
    update_count = getattr(summary, "update_count", None)
    if update_count is not None:
        document["update_count"] = update_count
    shard_stats = getattr(summary, "shard_ingest_stats", None)
    if callable(shard_stats):
        stats = shard_stats()
        document["shards"] = {
            "items_routed": list(stats.items_routed),
            "queue_depth_high_water": stats.queue_depth_high_water,
            "routing_imbalance": stats.routing_imbalance,
        }
    return document


def http_response(document: Dict, status: str = "200 OK") -> bytes:
    """A minimal ``HTTP/1.0`` response carrying ``document`` as JSON."""
    body = json.dumps(document, indent=2).encode("utf-8") + b"\n"
    return _http_head(status, "application/json", len(body)) + body


def http_text_response(
    text: str,
    status: str = "200 OK",
    content_type: str = "text/plain; version=0.0.4; charset=utf-8",
) -> bytes:
    """A minimal ``HTTP/1.0`` response carrying plain text.

    The default content type is the Prometheus exposition format 0.0.4 —
    what a scraper expects back from ``GET /metrics`` with
    ``Accept: text/plain``.
    """
    body = text.encode("utf-8")
    return _http_head(status, content_type, len(body)) + body


def _http_head(status: str, content_type: str, length: int) -> bytes:
    return (
        f"HTTP/1.0 {status}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {length}\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("ascii")
