"""Vectorized batch hashing over NumPy arrays.

Every function here is the array counterpart of a scalar primitive in
:mod:`repro.hashing.hash_functions` or :mod:`repro.hashing.linear_congruence`
and is **bit-for-bit identical** to it: the NumPy matrix backend relies on
that equality so a sketch built through the vectorized pipeline answers every
query exactly like one built through the scalar path (the differential tests
in ``tests/test_vectorized_hashing.py`` assert it input-by-input).

The FNV-1a loop runs over an ``(n, max_len)`` byte matrix built with
``np.frombuffer`` — one masked vector operation per byte *position* instead of
one Python operation per byte — and the splitmix64 finalizer, hash splitting,
square-hashing address sequences and candidate-pair sampling are plain uint64 /
int64 array arithmetic (unsigned overflow wraps modulo 2^64, exactly like the
``& _MASK64`` in the scalar code).

NumPy is an optional dependency: importing this module never fails AND never
imports NumPy — availability is detected with ``importlib.util.find_spec`` so
pure-Python users (the zero-dependency default) do not pay NumPy's import
cost just because it happens to be installed.  The actual ``import numpy``
runs lazily on first vectorized use.  :data:`NUMPY_AVAILABLE` tells callers
whether the vectorized path is usable; setting the environment variable
``REPRO_DISABLE_NUMPY`` forces it off (handy for exercising the no-NumPy
code paths on a machine that has NumPy installed).
"""

from __future__ import annotations

import os
from importlib.util import find_spec
from typing import List, Sequence, Tuple

from repro.hashing.hash_functions import (
    _FNV_OFFSET,
    _FNV_PRIME,
    _MASK64,
    _count_hashes,
    _splitmix64,
    hash_key,
)
from repro.hashing.linear_congruence import LinearCongruentialSequence

NUMPY_AVAILABLE = (
    not os.environ.get("REPRO_DISABLE_NUMPY") and find_spec("numpy") is not None
)

#: Lazily populated module handle; ``None`` until the first vectorized call.
np = None


def load_numpy():
    """Import NumPy on first use and cache the module handle."""
    global np
    if np is None:
        require_numpy()
        import numpy

        np = numpy
    return np


def require_numpy() -> None:
    """Raise a helpful error when the vectorized path is used without NumPy."""
    if not NUMPY_AVAILABLE:
        raise RuntimeError(
            "NumPy is required for the vectorized hashing pipeline; "
            "install it with `pip install repro-gss[numpy]` or use the "
            "pure-Python backend"
        )


# -- 64-bit mixing ---------------------------------------------------------


def splitmix64_array(values: "np.ndarray") -> "np.ndarray":
    """Vectorized :func:`~repro.hashing.hash_functions._splitmix64`."""
    load_numpy()
    values = values.astype(np.uint64, copy=True)
    values += np.uint64(0x9E3779B97F4A7C15)
    values = (values ^ (values >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    values = (values ^ (values >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return values ^ (values >> np.uint64(31))


def hash_bytes_array(keys: Sequence[bytes], seed: int = 0) -> "np.ndarray":
    """Vectorized FNV-1a + splitmix64 over a batch of byte strings.

    Equals ``[hash_bytes(k, seed) for k in keys]`` element-wise.  Keys are
    grouped by byte length so each group packs into a dense ``(n, length)``
    uint8 matrix and the FNV loop runs one unmasked vector operation per byte
    *column* — no per-byte Python work, no boolean-index overhead.
    """
    load_numpy()
    count = len(keys)
    _count_hashes(count)
    initial = (_FNV_OFFSET ^ _splitmix64(seed)) & _MASK64
    state = np.full(count, initial, dtype=np.uint64)
    if count == 0:
        return state
    prime = np.uint64(_FNV_PRIME)
    if count <= 512:
        # Small batches: group by length with a dict — cheaper than the
        # sort-based grouping below, whose fixed costs dominate tiny inputs.
        groups: dict = {}
        for index, key in enumerate(keys):
            groups.setdefault(len(key), []).append(index)
        for length, members in groups.items():
            if length == 0:
                continue
            block = np.frombuffer(
                b"".join([keys[index] for index in members]), dtype=np.uint8
            ).reshape(len(members), length)
            group_state = np.full(len(members), initial, dtype=np.uint64)
            for column in range(length):
                group_state = (group_state ^ block[:, column].astype(np.uint64)) * prime
            state[members] = group_state
        return splitmix64_array(state)
    lengths = np.fromiter(map(len, keys), dtype=np.int64, count=count)
    order = np.argsort(lengths, kind="stable")
    ordered_lengths = lengths[order]
    boundaries = np.nonzero(np.diff(ordered_lengths))[0] + 1
    group_starts = [0, *boundaries.tolist(), count]
    order_list = order.tolist()
    for begin, end in zip(group_starts, group_starts[1:]):
        members = order_list[begin:end]
        length = int(ordered_lengths[begin])
        if length == 0:
            continue
        block = np.frombuffer(
            b"".join([keys[index] for index in members]), dtype=np.uint8
        ).reshape(len(members), length)
        group_state = np.full(len(members), initial, dtype=np.uint64)
        for column in range(length):
            group_state = (group_state ^ block[:, column].astype(np.uint64)) * prime
        state[members] = group_state
    return splitmix64_array(state)


def hash_strings_array(keys: Sequence[str], seed: int = 0) -> "np.ndarray":
    """Vectorized :func:`~repro.hashing.hash_functions.hash_string`."""
    return hash_bytes_array([key.encode("utf-8") for key in keys], seed)


def hash_ints_array(keys: Sequence[int], seed: int = 0) -> "np.ndarray":
    """Vectorized integer-key path of :func:`~repro.hashing.hash_functions.hash_key`."""
    load_numpy()
    count = len(keys)
    _count_hashes(count)
    masked = np.fromiter((key & _MASK64 for key in keys), dtype=np.uint64, count=count)
    return splitmix64_array(masked ^ np.uint64(_splitmix64(seed ^ 0xA5A5A5A5)))


def hash_keys_array(keys: Sequence, seed: int = 0) -> "np.ndarray":
    """Vectorized :func:`~repro.hashing.hash_functions.hash_key` over a batch.

    Dispatches on the (homogeneous) key type: all-``str`` and all-``bytes``
    batches go through the byte-matrix FNV, all-``int`` batches through the
    splitmix64 path, and anything mixed or exotic falls back to the scalar
    ``hash_key`` per item (still returning one uint64 array).
    """
    load_numpy()
    if not isinstance(keys, (list, tuple)):
        keys = list(keys)
    if all(isinstance(key, str) for key in keys):
        return hash_strings_array(keys, seed)
    if all(isinstance(key, bytes) for key in keys):
        return hash_bytes_array(keys, seed)
    if all(isinstance(key, int) for key in keys):
        return hash_ints_array(keys, seed)
    return np.fromiter(
        (hash_key(key, seed) for key in keys), dtype=np.uint64, count=len(keys)
    )


def node_hashes_array(keys: Sequence, value_range: int, seed: int = 0) -> "np.ndarray":
    """Vectorized :class:`~repro.hashing.hash_functions.NodeHasher` batch call.

    Returns ``H(key) % value_range`` for every key, as uint64.
    """
    if value_range <= 0:
        raise ValueError("value_range must be positive")
    return hash_keys_array(keys, seed) % np.uint64(value_range)


def split_hashes(values: "np.ndarray", fingerprint_range: int) -> Tuple["np.ndarray", "np.ndarray"]:
    """Vectorized hash split ``H(v) -> (h(v), f(v))`` (Definition 5)."""
    load_numpy()
    if fingerprint_range <= 0:
        raise ValueError("fingerprint_range must be positive")
    values = values.astype(np.int64, copy=False)
    return values // fingerprint_range, values % fingerprint_range


# -- square-hashing sequences ----------------------------------------------


def address_sequences(
    base_addresses: "np.ndarray",
    fingerprints: "np.ndarray",
    length: int,
    matrix_width: int,
    lcg: LinearCongruentialSequence = LinearCongruentialSequence(),
) -> "np.ndarray":
    """Vectorized :func:`~repro.hashing.linear_congruence.address_sequence`.

    Returns an ``(n, length)`` int64 matrix whose row ``v`` is the address
    sequence ``{h_i(v)}`` of node ``v``.
    """
    load_numpy()
    if matrix_width <= 0:
        raise ValueError("matrix_width must be positive")
    if length < 0:
        raise ValueError("length must be non-negative")
    count = len(fingerprints)
    current = fingerprints.astype(np.int64, copy=True) % lcg.modulus
    base = base_addresses.astype(np.int64, copy=False)
    addresses = np.empty((count, length), dtype=np.int64)
    for step in range(length):
        current = (lcg.multiplier * current + lcg.increment) % lcg.modulus
        addresses[:, step] = (base + current) % matrix_width
    return addresses


def lcg_values_at(
    seeds: "np.ndarray",
    indices: "np.ndarray",
    lcg: LinearCongruentialSequence = LinearCongruentialSequence(),
) -> "np.ndarray":
    """Vectorized :meth:`~repro.hashing.linear_congruence.LinearCongruentialSequence.value_at`.

    ``indices`` are 1-based, exactly like the scalar method.
    """
    load_numpy()
    if len(indices) and int(indices.min()) < 1:
        raise ValueError("index is 1-based and must be >= 1")
    current = seeds.astype(np.int64, copy=True) % lcg.modulus
    result = np.zeros(len(seeds), dtype=np.int64)
    max_index = int(indices.max()) if len(indices) else 0
    for step in range(1, max_index + 1):
        current = (lcg.multiplier * current + lcg.increment) % lcg.modulus
        at_step = indices == step
        if at_step.any():
            result[at_step] = current[at_step]
    return result


def recover_addresses(
    observed: "np.ndarray",
    fingerprints: "np.ndarray",
    indices: "np.ndarray",
    matrix_width: int,
    lcg: LinearCongruentialSequence = LinearCongruentialSequence(),
) -> "np.ndarray":
    """Vectorized :func:`~repro.hashing.linear_congruence.recover_address`."""
    offsets = lcg_values_at(fingerprints, indices, lcg)
    return (observed.astype(np.int64, copy=False) - offsets) % matrix_width


def candidate_pair_arrays(
    source_fingerprints: "np.ndarray",
    destination_fingerprints: "np.ndarray",
    sample_size: int,
    sequence_length: int,
    lcg: LinearCongruentialSequence = LinearCongruentialSequence(),
) -> Tuple["np.ndarray", "np.ndarray"]:
    """Vectorized :func:`~repro.hashing.linear_congruence.candidate_sequence`.

    Returns two ``(n, sample_size)`` int64 matrices holding the row-index and
    column-index halves of every edge's candidate pairs, in probe order.
    Unlike the scalar helper the pairs are *not* deduplicated: a duplicate
    candidate re-probes a bucket whose state cannot have changed, so skipping
    the dedup preserves placement semantics while keeping the arrays
    rectangular.
    """
    load_numpy()
    if sequence_length <= 0:
        raise ValueError("sequence_length must be positive")
    if sample_size < 0:
        raise ValueError("sample_size must be non-negative")
    count = len(source_fingerprints)
    seeds = (
        source_fingerprints.astype(np.int64, copy=False)
        + destination_fingerprints.astype(np.int64, copy=False)
    )
    current = seeds % lcg.modulus
    span = sequence_length * sequence_length
    rows = np.empty((count, sample_size), dtype=np.int64)
    columns = np.empty((count, sample_size), dtype=np.int64)
    for draw in range(sample_size):
        current = (lcg.multiplier * current + lcg.increment) % lcg.modulus
        rows[:, draw], columns[:, draw] = np.divmod(
            current % span, sequence_length
        )
    return rows, columns


def as_int_list(values: "np.ndarray") -> List[int]:
    """Convert an array to a list of Python ints (dict keys, set members)."""
    return values.tolist()
