"""Figures 9 and 10 — average precision of 1-hop precursor / successor queries.

The query set contains every node (or a deterministic sample), the true
neighbour sets come from the exact aggregation of the stream, and precision is
``|SS| / |SS_hat|`` because GSS and TCM only produce false positives.  TCM is
granted the paper's large memory handicap (256x by default at paper scale).
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Set

from repro.experiments.config import ExperimentConfig, load_streams
from repro.experiments.report import ExperimentResult
from repro.metrics.accuracy import average_precision


def _precision_of(
    query: Callable[[Hashable], Set[Hashable]],
    truth: Dict[Hashable, Set[Hashable]],
    nodes,
) -> float:
    pairs = []
    for node in nodes:
        pairs.append((truth.get(node, set()), query(node)))
    return average_precision(pairs)


def _run_direction(config: ExperimentConfig, forward: bool) -> ExperimentResult:
    direction = "successor" if forward else "precursor"
    figure = "fig10" if forward else "fig9"
    result = ExperimentResult(
        experiment=figure,
        description=f"average precision of 1-hop {direction} queries vs matrix width",
        columns=["dataset", "width", "structure", "precision"],
    )
    for name, stream in load_streams(config):
        statistics = stream.statistics()
        truth = stream.successors() if forward else stream.precursors()
        nodes = config.sample_items(stream.nodes())
        for width in config.widths_for(statistics):
            reference = None
            for bits in config.fingerprint_bits:
                sketch = config.feed(config.build_gss(width, bits), stream)
                if bits == max(config.fingerprint_bits):
                    reference = sketch
                query = sketch.successor_query if forward else sketch.precursor_query
                result.add(
                    dataset=name,
                    width=width,
                    structure=f"GSS(fsize={bits})",
                    precision=_precision_of(query, truth, nodes),
                )
            tcm = config.feed(
                config.build_tcm(reference, config.tcm_topology_memory_ratio), stream
            )
            tcm_query = tcm.successor_query if forward else tcm.precursor_query
            result.add(
                dataset=name,
                width=width,
                structure=f"TCM({int(config.tcm_topology_memory_ratio)}x memory)",
                precision=_precision_of(tcm_query, truth, nodes),
            )
            capability = "successor_queries" if forward else "precursor_queries"
            for extra_name in config.extra_sketches_with(capability):
                extra = config.feed(
                    config.build_sketch(
                        extra_name, reference.config.matrix_memory_bytes()
                    ),
                    stream,
                )
                extra_query = extra.successor_query if forward else extra.precursor_query
                result.add(
                    dataset=name,
                    width=width,
                    structure=f"{extra_name}(equal memory)",
                    precision=_precision_of(extra_query, truth, nodes),
                )
    return result


def run_successor_experiment(config: ExperimentConfig = None) -> ExperimentResult:
    """Reproduce Figure 10 (1-hop successor precision)."""
    return _run_direction(config or ExperimentConfig(), forward=True)


def run_precursor_experiment(config: ExperimentConfig = None) -> ExperimentResult:
    """Reproduce Figure 9 (1-hop precursor precision)."""
    return _run_direction(config or ExperimentConfig(), forward=False)
