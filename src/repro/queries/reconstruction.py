"""Whole-graph reconstruction from the query primitives.

Section III of the paper argues that the three primitives suffice to
re-construct the entire graph: enumerate the known node IDs (from the reverse
hash table), run a successor query per node to find the edges and an edge
query per edge to find the weights.  This module implements that procedure for
any store exposing the primitives, which is also how the correctness of GSS's
reversibility is exercised in tests.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Tuple

from repro.queries.primitives import GraphQueryInterface


def reconstruct_graph(
    store: GraphQueryInterface, nodes: Iterable[Hashable]
) -> Dict[Tuple[Hashable, Hashable], float]:
    """Rebuild the (approximate) streaming graph restricted to ``nodes``.

    Returns a mapping from (source, destination) to estimated weight.  For
    exact stores this reproduces the graph exactly; for sketches the result
    may contain extra edges (false positives) but never misses a real one.
    """
    node_set = set(nodes)
    edges: Dict[Tuple[Hashable, Hashable], float] = {}
    for source in node_set:
        for destination in store.successor_query(source):
            if destination not in node_set:
                continue
            weight = store.edge_query(source, destination)
            if weight is not None:
                edges[(source, destination)] = weight
    return edges
