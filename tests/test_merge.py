"""Tests for merging independently built GSS sketches."""

from __future__ import annotations

import pytest

from repro.core.config import GSSConfig
from repro.core.gss import GSS
from repro.core.merge import compatible_for_merge, merge_into, merge_sketches
from repro.queries.primitives import EDGE_NOT_FOUND


def make_config(**overrides) -> GSSConfig:
    defaults = dict(matrix_width=32, sequence_length=4, candidate_buckets=4, seed=7)
    defaults.update(overrides)
    return GSSConfig(**defaults)


class TestCompatibility:
    def test_same_config_is_compatible(self):
        assert compatible_for_merge(make_config(), make_config())

    def test_different_seed_incompatible(self):
        assert not compatible_for_merge(make_config(), make_config(seed=8))

    def test_different_width_incompatible(self):
        assert not compatible_for_merge(make_config(), make_config(matrix_width=64))

    def test_different_fingerprint_bits_incompatible(self):
        assert not compatible_for_merge(make_config(), make_config(fingerprint_bits=12))

    def test_square_hashing_parameters_may_differ(self):
        first = make_config(sequence_length=4, rooms=1)
        second = make_config(sequence_length=8, rooms=2)
        assert compatible_for_merge(first, second)


class TestMergeInto:
    def test_disjoint_edges_are_united(self):
        first = GSS(make_config())
        second = GSS(make_config())
        first.update("a", "b", 2.0)
        second.update("c", "d", 3.0)
        merge_into(first, second)
        assert first.edge_query("a", "b") == pytest.approx(2.0)
        assert first.edge_query("c", "d") == pytest.approx(3.0)

    def test_shared_edges_sum_weights(self):
        first = GSS(make_config())
        second = GSS(make_config())
        first.update("a", "b", 2.0)
        second.update("a", "b", 5.0)
        merge_into(first, second)
        assert first.edge_query("a", "b") == pytest.approx(7.0)

    def test_node_index_is_merged(self):
        first = GSS(make_config())
        second = GSS(make_config())
        second.update("x", "y", 1.0)
        merge_into(first, second)
        assert first.successor_query("x") == {"y"}

    def test_incompatible_merge_raises(self):
        first = GSS(make_config())
        second = GSS(make_config(seed=99))
        second.update("a", "b")
        with pytest.raises(ValueError):
            merge_into(first, second)

    def test_merge_returns_target(self):
        first = GSS(make_config())
        second = GSS(make_config())
        assert merge_into(first, second) is first

    def test_merge_equivalent_to_concatenated_stream(self, small_stream):
        config = make_config(matrix_width=48)
        half = len(small_stream) // 2
        first = GSS(config).ingest(small_stream[:half])
        second = GSS(config).ingest(small_stream[half:])
        merged = merge_into(GSS(config), first)
        merge_into(merged, second)

        whole = GSS(config).ingest(small_stream)
        truth = small_stream.aggregate_weights()
        for key in list(truth)[:80]:
            merged_weight = merged.edge_query(*key)
            whole_weight = whole.edge_query(*key)
            assert merged_weight != EDGE_NOT_FOUND
            assert merged_weight >= truth[key]
            # Both views saw exactly the same sketch edges, so estimates agree.
            assert merged_weight == pytest.approx(whole_weight)


class TestMergeSketches:
    def test_empty_input_raises(self):
        with pytest.raises(ValueError):
            merge_sketches([])

    def test_merges_many(self):
        config = make_config()
        sketches = []
        for index in range(3):
            sketch = GSS(config)
            sketch.update(f"s{index}", f"d{index}", float(index + 1))
            sketches.append(sketch)
        merged = merge_sketches(sketches)
        for index in range(3):
            assert merged.edge_query(f"s{index}", f"d{index}") == pytest.approx(index + 1)

    def test_merge_uses_first_config_by_default(self):
        config = make_config()
        merged = merge_sketches([GSS(config)])
        assert merged.config == config
