"""Load-generation harness behind ``scripts/load_gen.py`` and the served
throughput section of ``scripts/record_bench.py``.

Drives one :class:`~repro.serve.SummaryServer` with many concurrent
:class:`~repro.serve.ServeClient` connections — a configurable split of
ingest feeds and query clients — and reports aggregate ingest throughput,
query latency percentiles, busy/retry pressure, and RSS, as one JSON-safe
dict.

Two measurement modes:

* **throughput** (default) — the synthetic stream is split into contiguous
  per-client slices; with ``duration`` set, each ingest client cycles its
  slice until the deadline.  Measures speed only.
* **verify** (``verify=True``) — the stream is pre-partitioned *by shard*
  (the routing hash from the server's advertised
  :class:`~repro.streaming.batch.HashSpec`, reduced modulo the worker
  count), with exactly one ingest client per shard.  Each worker then sees
  its items in the same relative order as a single-writer reference fed the
  whole stream, so after a final flush every served answer must be
  **bit-identical** to an in-process :class:`~repro.cluster.ShardedSummary`
  built from the same spec — which the harness checks with a post-run sweep.
  (Concurrent writers to the *same* shard would interleave
  nondeterministically and legitimately change GSS bucket placement; the
  per-shard partition is what makes equality a valid assertion.)

Query clients run throughout either mode, measuring wall-clock round-trip
latency; they are excluded from the verification sweep (during-run answers
race ingest by design).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.hashing.hash_functions import hash_key
from repro.obs.registry import histogram_quantile, subtract_snapshots
from repro.serve.client import ServeClient
from repro.serve.metrics import REQUEST_LATENCY_FAMILY

__all__ = [
    "LoadGenConfig",
    "partition_by_shard",
    "rss_bytes",
    "run_load_test",
    "synthetic_stream",
]

Edge = Tuple[Hashable, Hashable, float]


def synthetic_stream(total: int, nodes: int, seed: int = 7) -> List[Edge]:
    """A deterministic synthetic edge stream (power-law-ish source reuse)."""
    rng = random.Random(seed)
    edges: List[Edge] = []
    for index in range(total):
        # Square the draw so low node ids repeat often: repeated edges and
        # hot successor sets, the regime GSS is built for.
        source = f"n{int(rng.random() ** 2 * nodes)}"
        destination = f"n{rng.randrange(nodes)}"
        edges.append((source, destination, float(rng.randint(1, 5))))
    return edges


def partition_by_shard(
    stream: Sequence[Edge], routing_seed: int, workers: int
) -> List[List[Edge]]:
    """Split a stream into per-shard sub-streams, preserving per-shard order."""
    parts: List[List[Edge]] = [[] for _ in range(workers)]
    for item in stream:
        # repro: allow(hash-once): verify-mode pre-partition, runs once at
        # benchmark setup before the clock starts — not an ingest path.
        parts[hash_key(item[0], seed=routing_seed) % workers].append(item)
    return parts


def rss_bytes() -> Optional[int]:
    """This process's resident set size, or ``None`` off Linux."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return None


def _percentile(samples: List[float], quantile: float) -> float:
    ordered = sorted(samples)
    position = quantile * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    return ordered[low] + (ordered[high] - ordered[low]) * (position - low)


def _server_op_latency(
    after_obs: Optional[Dict], before_obs: Optional[Dict]
) -> Optional[Dict]:
    """Per-op server-side latency attributable to this run.

    Diffs the server's ``repro_serve_request_seconds`` histograms scraped
    before and after the run (:func:`subtract_snapshots`), so a long-lived
    server's prior traffic never pollutes the numbers, and estimates
    p50/p99 from the bucket counts.  ``None`` when the server exposes no
    obs snapshot (running with ``obs=False``).
    """
    if not after_obs:
        return None
    delta = subtract_snapshots(after_obs, before_obs)
    family = delta["families"].get(REQUEST_LATENCY_FAMILY)
    if family is None:
        return None
    bounds = family.get("buckets") or []
    ops: Dict = {}
    for series in family["series"].values():
        count = series.get("count", 0)
        if not count:
            continue
        p50 = histogram_quantile(bounds, series["counts"], 0.50)
        p99 = histogram_quantile(bounds, series["counts"], 0.99)
        ops[series["labels"].get("op", "")] = {
            "count": count,
            "p50_ms": p50 * 1e3 if p50 is not None else None,
            "p99_ms": p99 * 1e3 if p99 is not None else None,
            "mean_ms": series["sum"] / count * 1e3,
        }
    return ops or None


@dataclass
class LoadGenConfig:
    """Everything :func:`run_load_test` needs to drive one run."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Ingest connections.  In verify mode this is forced to the server's
    #: worker count (one single-writer feed per shard).
    ingest_clients: int = 2
    #: Query connections (run concurrently with ingest, measure latency).
    query_clients: int = 6
    #: Items in the synthetic stream (the fixed work unit).
    total_items: int = 50_000
    #: Distinct node universe of the synthetic stream.
    nodes: int = 2_000
    #: With a duration, ingest clients cycle their slice until the deadline
    #: (throughput mode only — verify needs the fixed work unit).
    duration: Optional[float] = None
    batch_size: int = 512
    seed: int = 7
    #: Queries each query client issues per loop iteration settle pause.
    query_pause: float = 0.0
    verify: bool = False
    #: Edges / nodes sampled by the verification sweep.
    verify_sample: int = 400
    max_busy_retries: int = 500
    client_timeout: float = 60.0


def _ingest_worker(
    config: LoadGenConfig,
    slice_items: List[Edge],
    deadline: Optional[float],
    counters: Dict,
    errors: List[str],
) -> None:
    try:
        with ServeClient(
            config.host,
            config.port,
            batch_size=config.batch_size,
            max_busy_retries=config.max_busy_retries,
            timeout=config.client_timeout,
        ) as client:
            client.ingest(slice_items)
            while deadline is not None and time.monotonic() < deadline:
                client.ingest(slice_items)
            client.drain()
            with counters["lock"]:
                counters["items"] += client.items_sent
                counters["frames"] += client.frames_sent
                counters["busy_retries"] += client.busy_retries
    except Exception as error:  # noqa: BLE001 - reported, run fails loudly
        errors.append(f"ingest client: {error!r}")


def _query_worker(
    config: LoadGenConfig,
    worker_seed: int,
    done: threading.Event,
    latencies: List[float],
    counters: Dict,
    errors: List[str],
) -> None:
    rng = random.Random(worker_seed)
    samples: List[float] = []
    queries = 0
    try:
        with ServeClient(
            config.host, config.port, timeout=config.client_timeout
        ) as client:
            while True:
                source = f"n{rng.randrange(config.nodes)}"
                destination = f"n{rng.randrange(config.nodes)}"
                kind = queries % 3
                begin = time.perf_counter()
                if kind == 0:
                    client.edge_query(source, destination)
                elif kind == 1:
                    client.successor_query(source)
                else:
                    client.node_out_weight(source)
                samples.append(time.perf_counter() - begin)
                queries += 1
                if done.is_set() and queries >= 3:
                    break
                if config.query_pause:
                    time.sleep(config.query_pause)
    except Exception as error:  # noqa: BLE001
        errors.append(f"query client: {error!r}")
    with counters["lock"]:
        latencies.extend(samples)
        counters["queries"] += queries


def _verification_sweep(
    config: LoadGenConfig,
    stream: List[Edge],
    reference,
) -> Dict:
    """Compare served answers against an in-process reference, bit for bit."""
    rng = random.Random(config.seed + 1)
    edges = [stream[rng.randrange(len(stream))] for _ in range(config.verify_sample)]
    nodes = sorted({edge[0] for edge in edges})[: config.verify_sample // 4]
    checked = 0
    mismatches: List[str] = []
    with ServeClient(config.host, config.port, timeout=config.client_timeout) as client:
        client.flush()
        for source, destination, _ in edges:
            served = client.edge_query(source, destination)
            direct = reference.edge_query(source, destination)
            checked += 1
            if served != direct:
                mismatches.append(f"edge {source}->{destination}: {served!r} != {direct!r}")
        for node in nodes:
            pairs = (
                (client.successor_query(node), reference.successor_query(node)),
                (client.precursor_query(node), reference.precursor_query(node)),
                (client.node_out_weight(node), reference.node_out_weight(node)),
                (client.node_in_weight(node), reference.node_in_weight(node)),
            )
            for served, direct in pairs:
                checked += 1
                if served != direct:
                    mismatches.append(f"node {node}: {served!r} != {direct!r}")
    return {
        "checked": checked,
        "mismatches": len(mismatches),
        "mismatch_examples": mismatches[:5],
        "ok": not mismatches,
    }


def run_load_test(
    config: LoadGenConfig,
    *,
    reference=None,
    stream: Optional[List[Edge]] = None,
) -> Dict:
    """Run one load test against a live server and return the report dict.

    ``reference`` (verify mode) is an in-process summary — typically a
    :class:`~repro.cluster.ShardedSummary` built from the same spec as the
    server's — that the harness feeds the whole stream in order and then
    sweeps against the served answers.  ``stream`` overrides the synthetic
    stream (e.g. to replay a dataset).
    """
    if stream is None:
        stream = synthetic_stream(config.total_items, config.nodes, config.seed)
    if config.verify and config.duration is not None:
        raise ValueError("verify mode needs the fixed work unit; drop duration")
    if config.verify and reference is None:
        raise ValueError("verify mode needs a reference summary")

    # Probe the server once for its hash spec and worker count — and scrape
    # its instrument snapshot so the post-run scrape can be diffed down to
    # this run's contribution.
    with ServeClient(config.host, config.port, timeout=config.client_timeout) as probe:
        workers = probe.workers
        spec = probe.hash_spec
        server_info = dict(probe.server_info)
        before_obs = probe.metrics().get("obs")

    routing_seed = spec.routing_seed if spec is not None else None
    if config.verify:
        if not workers or routing_seed is None:
            raise ValueError(
                "verify mode needs a sharded server advertising its routing seed"
            )
        slices = partition_by_shard(stream, routing_seed, workers)
        ingest_clients = workers
    else:
        ingest_clients = max(1, config.ingest_clients)
        step = max(1, (len(stream) + ingest_clients - 1) // ingest_clients)
        slices = [stream[i : i + step] for i in range(0, len(stream), step)]

    counters: Dict = {
        "lock": threading.Lock(),
        "items": 0,
        "frames": 0,
        "busy_retries": 0,
        "queries": 0,
    }
    errors: List[str] = []
    latencies: List[float] = []
    done = threading.Event()
    deadline = (
        time.monotonic() + config.duration if config.duration is not None else None
    )

    rss_before = rss_bytes()
    query_threads = [
        threading.Thread(
            target=_query_worker,
            args=(config, config.seed + 100 + index, done, latencies, counters, errors),
            name=f"loadgen-query-{index}",
            daemon=True,
        )
        for index in range(config.query_clients)
    ]
    ingest_threads = [
        threading.Thread(
            target=_ingest_worker,
            args=(config, slice_items, deadline, counters, errors),
            name=f"loadgen-ingest-{index}",
            daemon=True,
        )
        for index, slice_items in enumerate(slices)
        if slice_items
    ]

    begin = time.perf_counter()
    for thread in query_threads + ingest_threads:
        thread.start()
    for thread in ingest_threads:
        thread.join()
    ingest_elapsed = time.perf_counter() - begin
    done.set()
    for thread in query_threads:
        thread.join()
    rss_after = rss_bytes()

    if errors:
        raise RuntimeError("load generation failed: " + "; ".join(errors))

    verify_report: Optional[Dict] = None
    server_metrics: Dict = {}
    with ServeClient(config.host, config.port, timeout=config.client_timeout) as tail:
        tail.flush()
        server_metrics = tail.metrics()
    if config.verify:
        reference.update_many(stream)
        reference.flush()
        verify_report = _verification_sweep(config, stream, reference)

    report: Dict = {
        "clients": {
            "ingest": len(ingest_threads),
            "query": len(query_threads),
            "total": len(ingest_threads) + len(query_threads),
        },
        "mode": "verify" if config.verify else "throughput",
        "elapsed_seconds": ingest_elapsed,
        "items_sent": counters["items"],
        "frames_sent": counters["frames"],
        "edges_per_second": counters["items"] / ingest_elapsed if ingest_elapsed else 0.0,
        "busy_retries": counters["busy_retries"],
        "errored_frames": 0,
        "query": {
            "count": counters["queries"],
            "p50_ms": _percentile(latencies, 0.50) * 1e3 if latencies else None,
            "p99_ms": _percentile(latencies, 0.99) * 1e3 if latencies else None,
            "mean_ms": (sum(latencies) / len(latencies)) * 1e3 if latencies else None,
        },
        "rss": {"before_bytes": rss_before, "after_bytes": rss_after},
        "server": {
            "binary_ingest": bool(server_info.get("binary_ingest")),
            "transport": server_info.get("transport"),
            "workers": workers,
            "busy_replies": server_metrics.get("busy_replies"),
            "ingest_items": server_metrics.get("ingest_items"),
            "inflight_high_water": server_metrics.get("inflight_high_water"),
            #: True server-side per-op latency (frame decode → reply ready)
            #: from the server's own histograms, diffed across the run —
            #: read next to the client-side ``query`` percentiles above.
            "op_latency_ms": _server_op_latency(
                server_metrics.get("obs"), before_obs
            ),
        },
    }
    if verify_report is not None:
        report["verify"] = verify_report
    return report
