"""Baselines the paper compares against (all implemented from scratch).

* :class:`~repro.baselines.tcm.TCM` — the state-of-the-art graph-stream
  summary prior to GSS: one or more hashed adjacency matrices of counters.
* :class:`~repro.baselines.gmatrix.GMatrix` — the TCM variant with reversible
  hash functions.
* :class:`~repro.baselines.cm_sketch.CountMinSketch` /
  :class:`~repro.baselines.cu_sketch.CountMinCUSketch` — counter-array
  sketches that support edge-weight queries only (no topology).
* :class:`~repro.baselines.gsketch.GSketch` — CM sketches partitioned by
  source node.
* :class:`~repro.baselines.triest.TriestBase` /
  :class:`~repro.baselines.triest.TriestImproved` — reservoir-based streaming
  triangle counting (Figure 14 comparison).
* :class:`~repro.baselines.exact_matcher.WindowedExactMatcher` — exact
  windowed subgraph matching, standing in for SJ-tree (Figure 15 comparison).
"""

from repro.baselines.tcm import TCM
from repro.baselines.gmatrix import GMatrix
from repro.baselines.cm_sketch import CountMinSketch
from repro.baselines.cu_sketch import CountMinCUSketch
from repro.baselines.gsketch import GSketch
from repro.baselines.triest import TriestBase, TriestImproved
from repro.baselines.exact_matcher import WindowedExactMatcher

__all__ = [
    "TCM",
    "GMatrix",
    "CountMinSketch",
    "CountMinCUSketch",
    "GSketch",
    "TriestBase",
    "TriestImproved",
    "WindowedExactMatcher",
]
