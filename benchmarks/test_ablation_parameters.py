"""Ablation benchmarks for the GSS design choices called out in DESIGN.md.

These go beyond the paper's own ablations (Figure 13 and the Table I
"no sampling" row): fingerprint length, address-sequence length ``r``,
candidate-bucket count ``k`` and rooms per bucket ``l`` are swept one at a
time with everything else held fixed.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.ablation import (
    run_candidate_ablation,
    run_fingerprint_ablation,
    run_rooms_ablation,
    run_sequence_length_ablation,
)
from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="module")
def ablation_config() -> ExperimentConfig:
    return ExperimentConfig(
        datasets=("email-EuAll",),
        dataset_scale=0.2,
        fingerprint_bits=(16,),
        sequence_length=8,
        candidate_buckets=8,
        query_sample=250,
    )


@pytest.mark.paper_artifact("ablation")
def test_fingerprint_length_ablation(benchmark, ablation_config):
    result = run_once(benchmark, run_fingerprint_ablation, ablation_config)
    print()
    print(result.to_text())
    rows = sorted(result.rows, key=lambda row: row["fingerprint_bits"])
    # Longer fingerprints (larger M) never reduce successor precision.
    assert rows[-1]["successor_precision"] >= rows[0]["successor_precision"] - 1e-9
    # Edge ARE shrinks (or stays equal) as fingerprints grow.
    assert rows[-1]["edge_are"] <= rows[0]["edge_are"] + 1e-9


@pytest.mark.paper_artifact("ablation")
def test_sequence_length_ablation(benchmark, ablation_config):
    result = run_once(benchmark, run_sequence_length_ablation, ablation_config)
    print()
    print(result.to_text())
    rows = sorted(result.rows, key=lambda row: row["sequence_length"])
    # Square hashing with longer sequences strictly helps buffer occupancy.
    assert rows[-1]["buffer_pct"] <= rows[0]["buffer_pct"] + 1e-9


@pytest.mark.paper_artifact("ablation")
def test_candidate_bucket_ablation(benchmark, ablation_config):
    result = run_once(benchmark, run_candidate_ablation, ablation_config)
    print()
    print(result.to_text())
    rows = sorted(result.rows, key=lambda row: row["candidate_buckets"])
    assert rows[-1]["buffer_pct"] <= rows[0]["buffer_pct"] + 1e-9
    # Accuracy of edge queries is unaffected by k (placement only).
    assert abs(rows[-1]["edge_are"] - rows[0]["edge_are"]) < 0.05


@pytest.mark.paper_artifact("ablation")
def test_rooms_ablation(benchmark, ablation_config):
    result = run_once(benchmark, run_rooms_ablation, ablation_config)
    print()
    print(result.to_text())
    assert {row["rooms"] for row in result.rows} == {1, 2, 3, 4}
    # At constant memory every variant keeps the buffer small near the
    # recommended sizing.
    assert all(row["buffer_pct"] < 0.35 for row in result.rows)
