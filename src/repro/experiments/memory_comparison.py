"""Extension experiment — memory footprint across structures (Section VI-A).

The paper's space argument is analytical: GSS keeps O(|E|) bytes while the
dense adjacency matrix needs O(|V|^2) and the exact adjacency list pays per
stored edge plus a node map.  This experiment evaluates the byte accounting of
:mod:`repro.analysis.memory` at the *original* sizes of the five paper
datasets (not the scaled analogs), so the table can be compared directly with
the paper's narrative, and additionally reports the measured footprint of the
sketches built on the analogs.
"""

from __future__ import annotations

from repro.analysis.memory import compare_structures
from repro.datasets.registry import DATASET_SPECS
from repro.experiments.config import ExperimentConfig, load_streams
from repro.experiments.report import ExperimentResult


def run_memory_experiment(config: ExperimentConfig = None) -> ExperimentResult:
    """Analytical memory comparison at paper-dataset sizes plus measured analogs."""
    config = config or ExperimentConfig()
    fingerprint_bits = max(config.fingerprint_bits)
    result = ExperimentResult(
        experiment="memory",
        description="memory footprint: GSS vs TCM vs adjacency list vs adjacency matrix",
        columns=[
            "dataset",
            "scope",
            "edges",
            "nodes",
            "gss_bytes",
            "tcm_bytes",
            "adjacency_list_bytes",
            "adjacency_matrix_bytes",
        ],
    )
    # Analytical rows at the original paper sizes.
    for name in config.datasets:
        spec = DATASET_SPECS.get(name)
        if spec is None:
            continue
        comparison = compare_structures(
            spec.paper_edges, spec.paper_nodes, fingerprint_bits=fingerprint_bits
        )
        result.add(
            dataset=name,
            scope="paper size (analytical)",
            edges=spec.paper_edges,
            nodes=spec.paper_nodes,
            gss_bytes=comparison.gss_bytes,
            tcm_bytes=comparison.tcm_equal_width_bytes,
            adjacency_list_bytes=comparison.adjacency_list_bytes,
            adjacency_matrix_bytes=comparison.adjacency_matrix_bytes,
        )
    # Measured rows on the generated analogs (buffer included).
    for name, stream in load_streams(config):
        statistics = stream.statistics()
        sketch = config.feed(
            config.build_gss(config.recommended_width(statistics), fingerprint_bits),
            stream,
        )
        comparison = compare_structures(
            max(1, statistics.distinct_edges),
            max(1, statistics.node_count),
            fingerprint_bits=fingerprint_bits,
        )
        result.add(
            dataset=name,
            scope="analog (measured sketch)",
            edges=statistics.distinct_edges,
            nodes=statistics.node_count,
            gss_bytes=sketch.memory_bytes(include_node_index=True),
            tcm_bytes=comparison.tcm_equal_width_bytes,
            adjacency_list_bytes=comparison.adjacency_list_bytes,
            adjacency_matrix_bytes=comparison.adjacency_matrix_bytes,
        )
    return result
