"""Memory accounting and capacity planning across the compared structures.

Section VI-A of the paper argues GSS keeps O(|E|) memory; the experiments then
hold memory ratios fixed when comparing against TCM (8x / 256x) and against
the exact adjacency list.  This module centralises the byte accounting used in
those comparisons (under the paper's C layout, not Python object overhead) and
adds the planning helpers an operator would need:

* bytes of a GSS, a TCM stack, an adjacency list and an adjacency matrix for a
  given graph size;
* the matrix width a GSS can afford under a byte budget;
* the memory crossover between an exact adjacency list and GSS.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.core.config import GSSConfig

#: Bytes of one counter cell in a TCM / gMatrix adjacency matrix.
TCM_COUNTER_BYTES = 4

#: Bytes of one adjacency-list cell: two node IDs, a weight and a next pointer.
ADJACENCY_LIST_CELL_BYTES = 16

#: Bytes of one hash-table entry of the reverse node index (ID pointer + hash).
NODE_INDEX_ENTRY_BYTES = 16


def gss_memory_bytes(config: GSSConfig, buffered_edges: int = 0, indexed_nodes: int = 0) -> int:
    """Total GSS memory: matrix plus buffer plus (optional) reverse node index."""
    if buffered_edges < 0 or indexed_nodes < 0:
        raise ValueError("buffered_edges and indexed_nodes must be non-negative")
    total = config.matrix_memory_bytes()
    total += buffered_edges * ADJACENCY_LIST_CELL_BYTES
    total += indexed_nodes * NODE_INDEX_ENTRY_BYTES
    return total


def tcm_memory_bytes(width: int, depth: int = 1) -> int:
    """Memory of a TCM stack: ``depth`` adjacency matrices of ``width ** 2`` counters."""
    if width <= 0 or depth <= 0:
        raise ValueError("width and depth must be positive")
    return width * width * depth * TCM_COUNTER_BYTES


def adjacency_list_memory_bytes(edge_count: int, node_count: int) -> int:
    """Memory of an exact adjacency list with a per-node index map."""
    if edge_count < 0 or node_count < 0:
        raise ValueError("edge_count and node_count must be non-negative")
    return edge_count * ADJACENCY_LIST_CELL_BYTES + node_count * NODE_INDEX_ENTRY_BYTES


def adjacency_matrix_memory_bytes(node_count: int) -> int:
    """Memory of a dense ``|V| x |V|`` adjacency matrix of 4-byte counters."""
    if node_count < 0:
        raise ValueError("node_count must be non-negative")
    return node_count * node_count * TCM_COUNTER_BYTES


def tcm_width_for_memory(memory_bytes: int, depth: int = 1) -> int:
    """The largest TCM matrix width whose stack fits in ``memory_bytes``."""
    if memory_bytes <= 0 or depth <= 0:
        raise ValueError("memory_bytes and depth must be positive")
    return max(1, int(math.sqrt(memory_bytes / (depth * TCM_COUNTER_BYTES))))


def gss_width_for_memory(
    memory_bytes: int, fingerprint_bits: int = 16, rooms: int = 2
) -> int:
    """The largest GSS matrix width whose matrix fits in ``memory_bytes``."""
    if memory_bytes <= 0:
        raise ValueError("memory_bytes must be positive")
    room_bits = 2 * fingerprint_bits + 8 + 32
    room_bytes = room_bits / 8.0
    return max(1, int(math.sqrt(memory_bytes / (rooms * room_bytes))))


@dataclass(frozen=True)
class MemoryComparison:
    """Byte footprint of every structure for one graph size."""

    edge_count: int
    node_count: int
    gss_bytes: int
    tcm_equal_width_bytes: int
    adjacency_list_bytes: int
    adjacency_matrix_bytes: int

    def as_row(self) -> Dict[str, float]:
        """Row for experiment reports (ratios are relative to GSS)."""
        return {
            "edges": self.edge_count,
            "nodes": self.node_count,
            "gss_bytes": self.gss_bytes,
            "tcm_bytes": self.tcm_equal_width_bytes,
            "adjacency_list_bytes": self.adjacency_list_bytes,
            "adjacency_matrix_bytes": self.adjacency_matrix_bytes,
            "list_to_gss_ratio": (
                self.adjacency_list_bytes / self.gss_bytes if self.gss_bytes else float("inf")
            ),
        }


def compare_structures(
    edge_count: int,
    node_count: int,
    fingerprint_bits: int = 16,
    rooms: int = 2,
) -> MemoryComparison:
    """Memory footprint of GSS, TCM, adjacency list and adjacency matrix.

    The GSS is sized with the paper's ``m ~ sqrt(|E| / rooms)`` rule and TCM is
    given the same matrix width, which is the comparison the paper's Section
    IV builds its argument on (same matrix, much larger hash range).
    """
    if edge_count <= 0 or node_count <= 0:
        raise ValueError("edge_count and node_count must be positive")
    config = GSSConfig.for_edge_count(
        edge_count, fingerprint_bits=fingerprint_bits, rooms=rooms
    )
    return MemoryComparison(
        edge_count=edge_count,
        node_count=node_count,
        gss_bytes=gss_memory_bytes(config, indexed_nodes=node_count),
        tcm_equal_width_bytes=tcm_memory_bytes(config.matrix_width),
        adjacency_list_bytes=adjacency_list_memory_bytes(edge_count, node_count),
        adjacency_matrix_bytes=adjacency_matrix_memory_bytes(node_count),
    )


def memory_sweep(
    edge_counts: List[int], average_degree: float = 5.0, fingerprint_bits: int = 16
) -> List[MemoryComparison]:
    """Memory comparison across graph sizes with a fixed average degree."""
    if average_degree <= 0:
        raise ValueError("average_degree must be positive")
    return [
        compare_structures(
            edge_count,
            max(1, int(edge_count / average_degree)),
            fingerprint_bits=fingerprint_bits,
        )
        for edge_count in edge_counts
    ]
