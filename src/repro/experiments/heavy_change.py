"""Extension experiment — heavy-changer detection across epochs.

gMatrix motivates graph sketches with heavy-hitter / heavy-changer detection;
GSS supports the same analysis through the edge-query primitive.  The
experiment splits each stream into two epochs, injects a synthetic burst on a
handful of edges in the second epoch (the "attack"), builds one GSS per epoch
and asks for the top-``k`` changers.  It reports:

* recall of the injected burst edges among the sketch's top-``k``;
* precision of the sketch's top-``k`` against the exact top-``k``;
* the same two numbers for a pair of exact adjacency lists, as the reference.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.exact.adjacency_list import AdjacencyListGraph
from repro.experiments.config import ExperimentConfig, load_streams
from repro.experiments.report import ExperimentResult
from repro.queries.heavy_changers import top_k_changers


def _inject_burst(epoch_edges, burst_keys, repetitions: int, weight: float):
    """Extra items replaying each burst edge ``repetitions`` times."""
    from repro.streaming.edge import StreamEdge

    extra = []
    base = len(epoch_edges)
    for position, (source, destination) in enumerate(burst_keys):
        for repeat in range(repetitions):
            extra.append(
                StreamEdge(
                    source=source,
                    destination=destination,
                    weight=weight,
                    timestamp=float(base + position * repetitions + repeat),
                )
            )
    return extra


def run_heavy_changer_experiment(config: ExperimentConfig = None) -> ExperimentResult:
    """Heavy-changer detection: GSS epochs vs exact epochs."""
    config = config or ExperimentConfig()
    fingerprint_bits = max(config.fingerprint_bits)
    top_k = config.extras.get("changer_top_k", 10)
    burst_count = config.extras.get("burst_edges", 5)
    repetitions = config.extras.get("burst_repetitions", 30)
    result = ExperimentResult(
        experiment="changers",
        description="top-k heavy-changer detection across two epochs",
        columns=["dataset", "structure", "top_k", "burst_recall", "exact_top_k_precision"],
    )
    for name, stream in load_streams(config):
        statistics = stream.statistics()
        half = len(stream) // 2
        first_epoch = list(stream[:half])
        second_epoch = list(stream[half:])
        rng = random.Random(config.seed)
        keys = stream.distinct_edge_keys()
        burst_keys: List[Tuple] = rng.sample(keys, min(burst_count, len(keys)))
        second_epoch = second_epoch + _inject_burst(second_epoch, burst_keys, repetitions, 5.0)

        candidates = config.sample_items(keys, limit=max(400, len(burst_keys) * 20))
        for key in burst_keys:
            if key not in candidates:
                candidates.append(key)

        exact_before = config.feed(AdjacencyListGraph(), first_epoch)
        exact_after = config.feed(AdjacencyListGraph(), second_epoch)
        exact_top = top_k_changers(exact_before, exact_after, candidates, top_k)
        exact_top_keys = {edge for edge, _ in exact_top}

        structures = {
            "Exact adjacency lists": (exact_before, exact_after),
        }
        gss_before = config.feed(
            config.build_gss(config.recommended_width(statistics), fingerprint_bits),
            first_epoch,
        )
        gss_after = config.feed(
            config.build_gss(config.recommended_width(statistics), fingerprint_bits),
            second_epoch,
        )
        structures[f"GSS(fsize={fingerprint_bits})"] = (gss_before, gss_after)

        for label, (before, after) in structures.items():
            top = top_k_changers(before, after, candidates, top_k)
            top_keys = {edge for edge, _ in top}
            burst_recall = (
                len(top_keys & set(burst_keys)) / len(burst_keys) if burst_keys else 1.0
            )
            precision = (
                len(top_keys & exact_top_keys) / len(top_keys) if top_keys else 1.0
            )
            result.add(
                dataset=name,
                structure=label,
                top_k=top_k,
                burst_recall=burst_recall,
                exact_top_k_precision=precision,
            )
    return result
