"""Graceful-shutdown plumbing for bare :class:`ShardedSummary` users.

A cluster owns real child processes and (on the ``shm`` transport)
shared-memory segments, so dying on an unhandled ``KeyboardInterrupt``
historically meant three things: items still sitting in client-side outboxes
were lost, no checkpoint was written, and the resource tracker complained
about leaked shared-memory segments at interpreter exit.
:func:`install_signal_handlers` fixes all three for script-style users::

    cluster = build(SketchSpec("sharded-gss", expected_edges=100_000))
    restore = install_signal_handlers(cluster, checkpoint_dir="ckpt/")
    try:
        ...  # long-running ingest
    finally:
        restore()
        cluster.shutdown(checkpoint_dir="ckpt/")

On SIGINT or SIGTERM the handler drains in-flight batches, checkpoints when a
directory was given, closes every worker (unlinking the shm rings), restores
the previously-installed handlers and re-raises the signal so the process
still terminates with the conventional status.  The asyncio front end
(:mod:`repro.serve`) uses ``loop.add_signal_handler`` instead — this module
is for plain synchronous scripts.
"""

from __future__ import annotations

import signal
from pathlib import Path
from typing import Callable, Dict, Iterable, Optional, Union

__all__ = ["DEFAULT_SHUTDOWN_SIGNALS", "install_signal_handlers"]

#: The signals a graceful cluster teardown intercepts by default.
DEFAULT_SHUTDOWN_SIGNALS = (signal.SIGINT, signal.SIGTERM)


def install_signal_handlers(
    cluster,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    *,
    signals: Iterable[signal.Signals] = DEFAULT_SHUTDOWN_SIGNALS,
) -> Callable[[], None]:
    """Drain/checkpoint/close ``cluster`` on the given signals.

    Returns a zero-argument ``restore()`` callable that puts the previous
    handlers back; call it when the cluster is shut down by other means (it
    is idempotent, and the handler restores the originals itself before
    re-raising).  Only the main thread of the main interpreter may install
    signal handlers — callers on other threads should drive
    :meth:`ShardedSummary.shutdown` directly.
    """
    signals = tuple(signals)
    originals: Dict[int, object] = {}

    def restore() -> None:
        while originals:
            number, previous = originals.popitem()
            signal.signal(number, previous)

    def handler(signum, frame) -> None:
        # Restore first: a second signal during the drain kills the process
        # the ordinary way instead of re-entering the teardown.
        restore()
        cluster.shutdown(checkpoint_dir=checkpoint_dir)
        # Re-raise so the process exits with the conventional signal status
        # (and KeyboardInterrupt still reaches the main thread for SIGINT).
        signal.raise_signal(signum)

    try:
        for number in signals:
            originals[int(number)] = signal.signal(number, handler)
    except ValueError:  # not the main thread
        restore()
        raise
    return restore
