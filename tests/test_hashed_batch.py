"""Tests for the hash-once ingest pipeline (:mod:`repro.streaming.batch`).

The load-bearing invariant: every distinct key of a batch is hashed exactly
once, at the edge of the system, and the resulting columns flow through
routing (``PartitionedGSS``, ``ShardedSummary``) into the matrix backends
without any layer re-hashing.  The :func:`repro.hashing.count_key_hashes`
instrumentation hook counts actual mixing passes (scalar and vectorized
leaves alike), which is what lets these tests *prove* the invariant instead
of asserting it structurally.
"""

from __future__ import annotations

import pytest

from repro.core.config import GSSConfig
from repro.core.gss import GSS
from repro.core.partitioned import PartitionedGSS
from repro.hashing import count_key_hashes, hash_key
from repro.hashing.vectorized import NUMPY_AVAILABLE
from repro.streaming.batch import HashedBatch, HashSpec


SPEC = HashSpec(seed=7, hash_range=1 << 20)
ROUTED = SPEC.with_routing(97)


def items_fixture(count: int = 120):
    return [
        (f"s{i % 9}", f"d{(i * 5 + 1) % 13}", float(1 + i % 4)) for i in range(count)
    ]


class Edge:
    def __init__(self, source, destination, weight, timestamp=None):
        self.source = source
        self.destination = destination
        self.weight = weight
        if timestamp is not None:
            self.timestamp = timestamp


class TestHashSpec:
    def test_matches_ignores_routing_seed(self):
        assert SPEC.matches(ROUTED)
        assert ROUTED.matches(SPEC)
        assert not SPEC.matches(HashSpec(seed=8, hash_range=SPEC.hash_range))
        assert not SPEC.matches(HashSpec(seed=SPEC.seed, hash_range=64))

    def test_with_routing_keeps_node_hash_family(self):
        derived = SPEC.with_routing(5)
        assert derived.seed == SPEC.seed
        assert derived.hash_range == SPEC.hash_range
        assert derived.routing_seed == 5


class TestNormalizeOnlyMode:
    def test_bare_tuples_pass_through_untouched(self):
        raw = [("a", "b", 1.0), ("c", "d", 2.0, 17)]
        batch = HashedBatch.from_items(raw)
        assert batch.items() == raw
        assert not batch.hashed
        assert len(batch) == 2

    def test_edge_like_items_become_triples(self):
        batch = HashedBatch.from_items([Edge("a", "b", 3.0, timestamp=5)])
        assert batch.items() == [("a", "b", 3.0)]

    def test_keep_timestamps_yields_four_tuples(self):
        batch = HashedBatch.from_items(
            [Edge("a", "b", 3.0, timestamp=5), Edge("c", "d", 1.0)],
            keep_timestamps=True,
        )
        assert batch.items() == [("a", "b", 3.0, 5), ("c", "d", 1.0, None)]


class TestHashedMode:
    def test_columns_match_scalar_hashing(self):
        items = items_fixture()
        batch = HashedBatch.from_items(items, SPEC)
        assert batch.hashed
        for (source, destination, weight), sh, dh, w in zip(
            items,
            batch.source_hash_list(),
            batch.destination_hash_list(),
            batch.weight_list(),
        ):
            assert sh == hash_key(source, SPEC.seed) % SPEC.hash_range
            assert dh == hash_key(destination, SPEC.seed) % SPEC.hash_range
            assert w == weight

    def test_route_hashes_are_full_width_and_independent(self):
        batch = HashedBatch.from_items(items_fixture(), ROUTED)
        for source, route in zip(batch.sources, batch.route_hashes):
            assert int(route) == hash_key(source, 97)

    def test_hash_column_values_are_python_ints(self):
        batch = HashedBatch.from_items(items_fixture(), SPEC)
        for key, value in batch.node_hash_items():
            assert type(value) is int

    def test_edge_like_inputs_hash_identically_to_tuples(self):
        triples = items_fixture(40)
        edges = [Edge(*triple) for triple in triples]
        from_tuples = HashedBatch.from_items(triples, SPEC)
        from_edges = HashedBatch.from_items(edges, SPEC)
        assert from_tuples.source_hash_list() == from_edges.source_hash_list()
        assert from_tuples.destination_hash_list() == (
            from_edges.destination_hash_list()
        )

    def test_items_reconstitutes_triples(self):
        items = items_fixture(30)
        batch = HashedBatch.from_items(items, SPEC)
        assert batch.items() == items

    def test_address_fingerprint_columns_match_divmod(self):
        fingerprint_range = 1 << 12
        batch = HashedBatch.from_items(items_fixture(), SPEC)
        sa, sf, da, df = batch.address_fingerprint_columns(fingerprint_range)
        for sh, address, fingerprint in zip(batch.source_hash_list(), sa, sf):
            assert (int(address), int(fingerprint)) == divmod(sh, fingerprint_range)
        for dh, address, fingerprint in zip(batch.destination_hash_list(), da, df):
            assert (int(address), int(fingerprint)) == divmod(dh, fingerprint_range)

    def test_tiny_batches_use_the_scalar_path_identically(self):
        # Below the vectorization threshold the columns are plain lists but
        # carry bit-identical hashes.
        batch = HashedBatch.from_items(items_fixture(3), ROUTED)
        assert len(batch) == 3
        assert batch.source_hash_list() == [
            hash_key(source, SPEC.seed) % SPEC.hash_range for source in batch.sources
        ]


class TestSplitByRoute:
    def test_partition_covers_batch_in_ascending_shard_order(self):
        batch = HashedBatch.from_items(items_fixture(), ROUTED)
        parts = batch.split_by_route(4)
        assert [shard for shard, _ in parts] == sorted({s for s, _ in parts})
        assert sum(len(sub) for _, sub in parts) == len(batch)

    def test_split_is_stable_within_shard(self):
        items = items_fixture(200)
        batch = HashedBatch.from_items(items, ROUTED)
        positions = {
            (source, destination, weight): index
            for index, (source, destination, weight) in enumerate(items)
        }
        for _, sub in batch.split_by_route(3):
            indexes = [positions[item] for item in sub.items()]
            assert indexes == sorted(indexes)

    def test_sub_batches_route_consistently_with_scalar_rule(self):
        batch = HashedBatch.from_items(items_fixture(), ROUTED)
        for shard, sub in batch.split_by_route(5):
            for source in sub.sources:
                assert hash_key(source, 97) % 5 == shard

    def test_split_requires_routing_hashes(self):
        batch = HashedBatch.from_items(items_fixture(), SPEC)
        with pytest.raises(ValueError, match="routing seed"):
            batch.split_by_route(2)

    def test_empty_batch_splits_to_nothing(self):
        assert HashedBatch.from_items([], ROUTED).split_by_route(3) == []


class TestMemoization:
    def test_memo_skips_keys_seen_in_earlier_batches(self):
        memo = {}
        first = items_fixture(60)
        with count_key_hashes() as counter:
            HashedBatch.from_items(first, SPEC, node_memo=memo)
        distinct = {key for s, d, _ in first for key in (s, d)}
        assert counter.count == len(distinct)
        with count_key_hashes() as counter:
            HashedBatch.from_items(first, SPEC, node_memo=memo)
        assert counter.count == 0

    def test_duplicate_keys_within_a_batch_hash_once(self):
        items = [("hot", f"d{i}", 1.0) for i in range(50)]
        with count_key_hashes() as counter:
            HashedBatch.from_items(items, ROUTED)
        # 51 node hashes ("hot" + 50 destinations) + 1 routing hash.
        assert counter.count == 52


class TestHashOnceThroughTheStack:
    """End-to-end: one hash pass per distinct key per routed batch."""

    def expected_hashes(self, items):
        nodes = {key for source, destination, _ in items for key in (source, destination)}
        sources = {source for source, _, _ in items}
        return len(nodes) + len(sources)

    def test_partitioned_update_many_hashes_once(self):
        deployment = PartitionedGSS(
            GSSConfig(matrix_width=16, sequence_length=4, candidate_buckets=4),
            partitions=3,
        )
        items = items_fixture(200)
        with count_key_hashes() as counter:
            deployment.update_many(items)
        assert counter.count == self.expected_hashes(items)
        # Every key is memoized now: re-feeding the same stream chunk does
        # zero additional hash work anywhere in the stack.
        with count_key_hashes() as counter:
            deployment.update_many(items)
        assert counter.count == 0
        for source, destination, _ in items[:20]:
            assert deployment.edge_query(source, destination) is not None

    def test_gss_ingests_prehashed_batch_without_rehashing(self):
        config = GSSConfig(matrix_width=16, sequence_length=4, candidate_buckets=4)
        sketch = GSS(config)
        items = items_fixture(80)
        batch = HashedBatch.from_items(items, sketch.hash_spec())
        with count_key_hashes() as counter:
            sketch.update_many_hashed(batch)
        assert counter.count == 0

    def test_mismatched_spec_falls_back_to_one_rehash(self):
        config = GSSConfig(matrix_width=16, sequence_length=4, candidate_buckets=4)
        sketch = GSS(config)
        items = items_fixture(80)
        foreign = HashedBatch.from_items(items, HashSpec(seed=999, hash_range=64))
        sketch.update_many_hashed(foreign)
        reference = GSS(config)
        reference.update_many(items)
        for source, destination, _ in items:
            assert sketch.edge_query(source, destination) == reference.edge_query(
                source, destination
            )


@pytest.mark.skipif(not NUMPY_AVAILABLE, reason="needs the vectorized path")
class TestVectorizedParity:
    def test_array_and_list_splits_agree(self):
        # The same logical batch, built above and below the vectorization
        # threshold, must split identically.
        items = items_fixture(100)
        large = HashedBatch.from_items(items, ROUTED)
        split_large = {
            shard: sub.items() for shard, sub in large.split_by_route(4)
        }
        merged: dict = {}
        for index in range(0, len(items), 4):  # chunks below _VECTOR_MIN
            small = HashedBatch.from_items(items[index : index + 4], ROUTED)
            for shard, sub in small.split_by_route(4):
                merged.setdefault(shard, []).extend(sub.items())
        assert split_large == merged
