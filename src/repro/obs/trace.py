"""Span tracing and the process-global telemetry switch.

Follows the :class:`~repro.metrics.ingest_profile.IngestProfile` discipline
exactly: a module-level ``Optional[MetricsRegistry]`` is the whole on/off
mechanism, so the disabled common case costs one ``is None`` check — and
:func:`span` returns one shared :data:`_NULL_SPAN` singleton when telemetry
is off, so the hot path allocates **nothing** (the disabled-mode overhead
guard in the test suite pins this).

Enabled spans record wall-clock durations into the shared
``repro_span_seconds`` histogram family, labelled by span name plus any
caller labels::

    from repro.obs import trace

    registry = trace.enable()
    with trace.span("ingest.placement", shard=2):
        ...                       # duration lands in repro_span_seconds
                                  #   {span="ingest.placement", shard="2"}

Components with their own registry (the cluster parent, the serve metrics
block) pass ``registry=`` explicitly instead of going through the global.

The span's ``self._started = perf_counter()`` store is the sanctioned
timing-sink pattern the determinism checker whitelists for ``obs/`` files:
the measurement flows only into ``Histogram.observe`` and can never steer
placement.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Iterator, Optional

from repro.obs.registry import Histogram, MetricsRegistry

__all__ = [
    "SPAN_FAMILY",
    "Span",
    "active",
    "disable",
    "enable",
    "scoped",
    "span",
]

#: Every span records into this histogram family, labelled ``span=<name>``.
SPAN_FAMILY = "repro_span_seconds"
_SPAN_HELP = "Duration of traced code spans (label: span name)."

#: The active registry, or ``None`` (the common case: zero-cost fast path).
_active: Optional[MetricsRegistry] = None


def active() -> Optional[MetricsRegistry]:
    """The installed registry, consulted by instrumented hot paths."""
    return _active


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install (or reuse) the process-global registry and return it.

    With no argument, an already-enabled registry is kept (so components
    that each call ``enable()`` share one registry); passing a registry
    replaces the active one — worker processes use this to install a
    *fresh* registry after fork, because the inherited parent counts would
    otherwise be double-counted on merge.
    """
    global _active
    if registry is not None:
        _active = registry
    elif _active is None:
        _active = MetricsRegistry()
    return _active


def disable() -> None:
    """Remove the global registry (spans become no-ops again)."""
    global _active
    _active = None


@contextmanager
def scoped(
    registry: Optional[MetricsRegistry] = None, *, off: bool = False
) -> Iterator[Optional[MetricsRegistry]]:
    """Install a registry (default: a fresh one) for the block, then restore.

    ``off=True`` force-disables telemetry inside the block instead — the
    disabled-mode tests use it to stay order-independent under a test
    runner that may have enabled the global earlier.
    """
    global _active
    previous = _active
    _active = None if off else (registry if registry is not None else MetricsRegistry())
    try:
        yield _active
    finally:
        _active = previous


class _NullSpan:
    """Shared do-nothing span returned whenever telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Span:
    """Times one ``with`` block into a histogram child."""

    __slots__ = ("_histogram", "_started")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._started = 0.0

    def __enter__(self) -> "Span":
        self._started = perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        self._histogram.observe(perf_counter() - self._started)
        return False


def span(
    name: str, registry: Optional[MetricsRegistry] = None, **labels: object
):
    """A context manager timing the block into ``repro_span_seconds``.

    Records into ``registry`` when given, else the global registry, else —
    telemetry off — returns the shared no-op singleton without allocating.
    """
    target = registry if registry is not None else _active
    if target is None:
        return _NULL_SPAN
    return Span(target.histogram(SPAN_FAMILY, _SPAN_HELP, span=name, **labels))
