"""Tests for the :class:`repro.api.StreamSession` ingestion facade."""

from __future__ import annotations

import pytest

from repro.api import SketchSpec, StreamSession, build
from repro.exact.adjacency_list import AdjacencyListGraph
from repro.streaming.edge import StreamEdge
from repro.streaming.stream import GraphStream, stream_from_pairs


def small_stream() -> GraphStream:
    pairs = [(f"s{i % 5}", f"d{i % 7}") for i in range(100)]
    return stream_from_pairs(pairs, [1.0] * len(pairs), name="session-test")


class TestFeeding:
    def test_feed_matches_manual_updates(self):
        session = StreamSession(build("gss", memory_bytes=8192, seed=5), batch_size=16)
        report = session.feed(small_stream())
        assert report.items == 100
        assert report.batches == 7  # ceil(100 / 16)
        assert report.seconds >= 0

        manual = build("gss", memory_bytes=8192, seed=5)
        for edge in small_stream():
            manual.update(edge.source, edge.destination, edge.weight)
        assert (
            session.summary.reconstruct_sketch_edges()
            == manual.reconstruct_sketch_edges()
        )

    def test_feed_bare_triples(self):
        session = StreamSession(build("gss", memory_bytes=8192))
        session.feed([("a", "b", 2.0), ("a", "c", 1.0)])
        assert session.summary.edge_query("a", "b") == 2.0

    def test_feed_dataset_by_name(self):
        session = StreamSession(SketchSpec("gss"))
        report = session.feed_dataset("email-EuAll", scale=0.05)
        assert report.items > 0
        assert session.summary.update_count == report.items

    def test_scalar_fallback_without_update_many(self):
        class ScalarOnly:
            def __init__(self):
                self.seen = []

            def update(self, source, destination, weight=1.0):
                self.seen.append((source, destination, weight))

        store = ScalarOnly()
        StreamSession(store, batch_size=8).feed(small_stream())
        assert len(store.seen) == 100

    def test_exact_store_feeds_like_consume_stream(self):
        exact = AdjacencyListGraph()
        StreamSession(exact).feed(small_stream())
        assert exact.edge_query("s0", "d0") == small_stream().aggregate_weights()[("s0", "d0")]


class TestAutoSizing:
    def test_spec_without_sizing_built_from_stream(self):
        session = StreamSession(SketchSpec("gss"))
        with pytest.raises(RuntimeError, match="not been built"):
            session.summary
        session.feed(small_stream())
        summary = session.summary
        distinct = small_stream().statistics().distinct_edges
        assert summary.config.matrix_width == int((distinct / 2) ** 0.5) + 1

    def test_sketch_name_shorthand(self):
        session = StreamSession("tcm")
        session.feed(small_stream())
        assert session.summary.width >= 2

    def test_unsized_spec_rejects_raw_iterables(self):
        session = StreamSession(SketchSpec("gss"))
        with pytest.raises(RuntimeError, match="auto-sized"):
            session.feed([("a", "b", 1.0)])


class TestWindowedRouting:
    def test_timestamps_reach_windowed_summaries(self):
        window = build(
            "windowed-gss",
            memory_bytes=8192,
            params={"window_span": 10.0, "slices": 2},
        )
        edges = [
            StreamEdge(source="old", destination="x", weight=1.0, timestamp=0.0),
            StreamEdge(source="new", destination="y", weight=1.0, timestamp=100.0),
        ]
        StreamSession(window).feed(edges)
        assert window.edge_query("old", "x") is None  # expired with its slice
        assert window.edge_query("new", "y") == 1.0


class TestMetricsAndProgress:
    def test_progress_hook_called_per_batch(self):
        calls = []
        session = StreamSession(
            build("gss", memory_bytes=8192),
            batch_size=25,
            on_progress=calls.append,
        )
        session.feed(small_stream())
        # One call per chunk plus the completion call.
        assert len(calls) == 5
        assert calls[-1].items == 100

    def test_cumulative_stats_across_feeds(self):
        session = StreamSession(build("gss", memory_bytes=8192), batch_size=50)
        session.feed(small_stream())
        session.feed(small_stream())
        assert session.stats.items == 200
        assert session.stats.batches == 4

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            StreamSession(build("gss", memory_bytes=1024), batch_size=0)


class TestShardStats:
    def test_unsharded_summaries_report_no_shard_stats(self):
        session = StreamSession(build("gss", memory_bytes=8192))
        report = session.feed(small_stream())
        assert report.shard_items is None
        assert report.queue_depth_high_water is None
        assert report.routing_imbalance is None
        assert session.stats.shard_items is None

    def test_partitioned_feed_surfaces_items_per_shard(self):
        summary = build(
            "partitioned-gss", memory_bytes=16384, params={"partitions": 4}
        )
        session = StreamSession(summary, batch_size=32)
        report = session.feed(small_stream())
        assert len(report.shard_items) == 4
        assert sum(report.shard_items) == 100
        assert report.queue_depth_high_water == 0  # synchronous sharding
        assert report.routing_imbalance >= 1.0

    def test_shard_items_are_per_feed_deltas_and_totals_accumulate(self):
        summary = build(
            "partitioned-gss", memory_bytes=16384, params={"partitions": 2}
        )
        session = StreamSession(summary, batch_size=50)
        first = session.feed(small_stream())
        second = session.feed(small_stream())
        # Identical streams route identically, so each feed reports its own
        # 100 items while the session totals both.
        assert sum(first.shard_items) == sum(second.shard_items) == 100
        assert first.shard_items == second.shard_items
        assert session.stats.shard_items == [
            a + b for a, b in zip(first.shard_items, second.shard_items)
        ]

    def test_empty_feed_reports_zero_routing_without_dividing(self):
        summary = build(
            "partitioned-gss", memory_bytes=16384, params={"partitions": 3}
        )
        report = StreamSession(summary).feed([])
        assert report.shard_items == [0, 0, 0]
        assert report.routing_imbalance == 1.0


class TestFailFastSpecs:
    def test_invalid_param_fails_at_construction(self):
        with pytest.raises(ValueError, match="accepted:"):
            StreamSession(SketchSpec("gss", params={"matrix_widht": 64}))

    def test_missing_required_param_fails_at_construction(self):
        with pytest.raises(ValueError, match="window_span"):
            StreamSession(SketchSpec("windowed-gss"))

    def test_param_sized_spec_builds_immediately(self):
        session = StreamSession(SketchSpec("gss", params={"matrix_width": 16}))
        session.feed([("a", "b", 1.0)])
        assert session.summary.edge_query("a", "b") == 1.0
