"""Update-throughput measurement (Table I).

The paper reports update speed in million insertions per second (Mips) for
GSS, GSS without candidate sampling, TCM and the adjacency list.  Absolute
numbers from a pure-Python implementation are not comparable with the paper's
C++ measurements; what the reproduction preserves is the *relative* ordering
and ratios, which the experiment reports alongside edges-per-second.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence


@dataclass(frozen=True)
class Throughput:
    """Result of one throughput measurement."""

    label: str
    items: int
    seconds: float

    @property
    def items_per_second(self) -> float:
        """Raw update rate."""
        if self.seconds <= 0:
            return float("inf")
        return self.items / self.seconds

    @property
    def mips(self) -> float:
        """Million insertions per second (the paper's unit)."""
        return self.items_per_second / 1_000_000.0


def measure_update_throughput(
    make_store: Callable[[], object],
    edges: Sequence,
    label: str = "",
    repeats: int = 1,
) -> Throughput:
    """Time how fast a freshly built store ingests ``edges``.

    ``make_store`` builds a new empty store each repeat so that repeated runs
    measure the same cold-start insertion workload the paper uses ("in each
    data set we insert all the edges ... repeat this procedure ... and
    calculate the average speed").
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    total_seconds = 0.0
    for _ in range(repeats):
        store = make_store()
        started = time.perf_counter()
        for edge in edges:
            store.update(edge.source, edge.destination, edge.weight)
        total_seconds += time.perf_counter() - started
    return Throughput(label=label, items=len(edges) * repeats, seconds=total_seconds)


def measure_batch_update_throughput(
    make_store: Callable[[], object],
    edges: Sequence,
    label: str = "",
    repeats: int = 1,
    batch_size: int = 1024,
) -> Throughput:
    """Time how fast a store ingests ``edges`` through its ``update_many`` API.

    The edge list is converted to ``(source, destination, weight)`` triples
    outside the timed region (that conversion is stream I/O, not sketch
    work), then fed in ``batch_size`` chunks so the comparison against
    :func:`measure_update_throughput` isolates the batching win.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    triples = [(edge.source, edge.destination, edge.weight) for edge in edges]
    total_seconds = 0.0
    for _ in range(repeats):
        store = make_store()
        started = time.perf_counter()
        for start in range(0, len(triples), batch_size):
            store.update_many(triples[start:start + batch_size])
        total_seconds += time.perf_counter() - started
    return Throughput(label=label, items=len(triples) * repeats, seconds=total_seconds)


def relative_speed(reference: Throughput, others: Iterable[Throughput]) -> dict:
    """Speed of each measurement relative to ``reference`` (reference = 1.0)."""
    base = reference.items_per_second
    return {
        other.label: (other.items_per_second / base if base else float("nan"))
        for other in others
    }
