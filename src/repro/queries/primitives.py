"""The graph query primitives every store and sketch implements.

The paper's Definition 4 fixes the contract:

* **edge query** — given an edge ``(s, d)`` return its weight, or report the
  edge as absent;
* **1-hop successor query** — given a node ``v`` return the set of nodes that
  are 1-hop reachable from ``v`` (empty result is reported as ``{-1}`` in the
  paper; we return an empty set and expose the sentinel for callers that want
  the paper's exact convention);
* **1-hop precursor query** — symmetric, nodes that reach ``v`` in one hop.

Exact stores answer them exactly; sketches answer them approximately.  The
compound queries in this package only rely on this protocol, so they run
unchanged on top of either.

Since the ``repro.api`` redesign the canonical ``edge_query`` returns
``Optional[float]`` — ``None`` when the edge is absent — because the paper's
``-1.0`` sentinel collides with a real edge whose deletions sum to exactly
``-1.0``.  The sentinel form survives as the deprecated
``edge_query_sentinel`` shim (see :class:`SummaryShims`).

This module also hosts :class:`Capabilities`, the feature descriptor every
summary structure reports through its ``capabilities()`` classmethod, and
:class:`UnsupportedQueryError`, raised by structures asked for a query they
cannot answer.  They live here — not in :mod:`repro.api` — so the core and
baseline packages can import them without a circular dependency; the public
API re-exports them.
"""

from __future__ import annotations

import warnings
from dataclasses import asdict, dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Protocol, Set, Tuple, runtime_checkable

#: Sentinel returned by the deprecated sentinel edge queries when the edge is
#: not present (the paper's convention).
# repro: allow(api-surface): deprecated compatibility shim — the one
# place the paper's sentinel is still spelled out, kept so old callers
# get a DeprecationWarning instead of a breakage.
EDGE_NOT_FOUND: float = -1.0

#: Sentinel set returned by the paper for empty successor/precursor results.
NO_NEIGHBORS: Set[int] = frozenset({-1})


class UnsupportedQueryError(NotImplementedError):
    """A summary was asked for a query its structure cannot answer.

    Raised (instead of returning a wrong answer) when e.g. a Count-Min sketch
    — which stores no topology — receives a successor query.  The
    corresponding :class:`Capabilities` flag is ``False`` whenever a structure
    raises this, which the conformance suite asserts.
    """


@dataclass(frozen=True)
class Capabilities:
    """Which optional features of the :class:`GraphQueryInterface` protocol a
    summary structure actually supports.

    Every registered sketch reports one of these from its ``capabilities()``
    classmethod; ``repro.api`` exposes them through ``sketch_info`` so callers
    can pick structures by feature instead of by trial and error.
    """

    #: ``edge_query`` answers with an estimate (``None`` when absent).
    edge_queries: bool = True
    #: ``successor_query`` returns original node IDs.
    successor_queries: bool = True
    #: ``precursor_query`` returns original node IDs.
    precursor_queries: bool = True
    #: ``node_out_weight`` (aggregate out-going weight) is available.
    node_out_weights: bool = True
    #: ``node_in_weight`` (aggregate in-coming weight) is available.
    node_in_weights: bool = True
    #: Negative update weights (stream deletions) are handled.
    deletions: bool = True
    #: ``update_many`` is an *optimized* batched path (pre-aggregation,
    #: per-group routing or vectorization) rather than the generic
    #: item-at-a-time fallback.  Every summary accepts ``update_many`` and
    #: answers identically either way; this flag marks where batching is a
    #: speedup.
    batched_updates: bool = True
    #: ``to_dict`` / ``from_dict`` round-trip the structure exactly.
    serializable: bool = False
    #: Instances with compatible parameters can be merged.
    mergeable: bool = False
    #: The structure expires old items (sliding-window semantics).
    windowed: bool = False
    #: Sketch-hash-level paths (``update_by_hash`` / ``edge_query_by_hash``).
    by_hash: bool = False
    #: A global triangle-count estimate is maintained (``triangle_estimate``).
    triangle_estimates: bool = False

    def as_dict(self) -> Dict[str, bool]:
        """The flags as a plain ``{name: bool}`` dictionary (JSON-friendly)."""
        return asdict(self)

    def supported(self) -> Tuple[str, ...]:
        """Names of the features this structure supports, in field order."""
        return tuple(name for name, value in self.as_dict().items() if value)

    @property
    def topology_queries(self) -> bool:
        """Whether 1-hop neighbourhood queries work in both directions."""
        return self.successor_queries and self.precursor_queries


@dataclass(frozen=True)
class ShardIngestStats:
    """Per-shard ingestion stats of a sharded deployment.

    Reported by summaries that route items across shards — the in-process
    :class:`~repro.core.partitioned.PartitionedGSS` and the multi-process
    :class:`~repro.cluster.ShardedSummary` — through their
    ``shard_ingest_stats()`` method, and surfaced per feed by
    :class:`repro.api.StreamSession` so routing imbalance is observable from
    the facade.  Defined here (not in ``repro.cluster``) so core modules can
    report it without depending on the cluster package.
    """

    #: Stream items routed to each shard, in shard order (cumulative).
    items_routed: List[int] = field(default_factory=list)
    #: Largest number of batches that were in flight to any single worker at
    #: once.  Always 0 for synchronous in-process sharding.
    queue_depth_high_water: int = 0

    @property
    def total_items(self) -> int:
        """Items routed across all shards."""
        return sum(self.items_routed)

    @property
    def routing_imbalance(self) -> float:
        """Max items routed to one shard over the mean (1.0 = perfectly even).

        Returns 1.0 for an empty cluster instead of dividing by zero, the
        same convention as ``PartitionedGSS.load_imbalance``.
        """
        if not self.items_routed:
            return 1.0
        mean = self.total_items / len(self.items_routed)
        if mean == 0:
            return 1.0
        return max(self.items_routed) / mean


class SummaryShims:
    """Shared protocol defaults and deprecated edge-query spellings.

    Mixed into every summary structure.  The deprecated spellings keep the
    pre-redesign call sites working while warning:

    * ``edge_query_sentinel`` — the paper's ``-1.0``-when-absent convention,
      formerly the behaviour of ``edge_query`` itself;
    * ``edge_query_opt`` — the transitional ``None``-when-absent spelling,
      now redundant because ``edge_query`` is the ``Optional`` form.

    The mixin also supplies protocol defaults so every structure satisfies
    the full :class:`repro.api.GraphSummary` surface: a generic item-by-item
    ``update_many`` loop (classes with an optimized batched path override
    it; the ``batched_updates`` capability flags the optimized ones), raising
    ``node_out_weight`` / ``node_in_weight``, and a raising ``to_dict`` for
    structures without a snapshot format.
    """

    def update_many(self, items: Iterable[Tuple[Hashable, Hashable, float]]) -> int:
        """Protocol default: apply a batch item-by-item through ``update``.

        Items are star-unpacked, so windowed structures that keep this
        default still receive the optional fourth (timestamp) element.
        """
        count = 0
        for item in items:
            self.update(*item)
            count += 1
        return count

    def node_out_weight(self, node: Hashable) -> float:
        """Protocol default: no aggregate out-weight query."""
        raise UnsupportedQueryError(
            f"{type(self).__name__} does not support node_out_weight"
        )

    def node_in_weight(self, node: Hashable) -> float:
        """Protocol default: no aggregate in-weight query."""
        raise UnsupportedQueryError(
            f"{type(self).__name__} does not support node_in_weight"
        )

    def to_dict(self, *args, **kwargs) -> Dict:
        """Protocol default: this structure has no snapshot format."""
        raise UnsupportedQueryError(
            f"{type(self).__name__} does not support serialization "
            "(capabilities().serializable is False)"
        )

    def edge_query_sentinel(self, source: Hashable, destination: Hashable) -> float:
        """Deprecated: ``edge_query`` with the legacy ``-1.0`` sentinel."""
        warnings.warn(
            "edge_query_sentinel is deprecated; use edge_query, which returns "
            "None when the edge is absent",
            DeprecationWarning,
            stacklevel=2,
        )
        weight = self.edge_query(source, destination)
        return EDGE_NOT_FOUND if weight is None else weight

    def edge_query_opt(self, source: Hashable, destination: Hashable) -> Optional[float]:
        """Deprecated alias: ``edge_query`` itself now returns ``Optional``."""
        warnings.warn(
            "edge_query_opt is deprecated; edge_query itself now returns None "
            "when the edge is absent",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.edge_query(source, destination)


@runtime_checkable
class GraphQueryInterface(Protocol):
    """Protocol shared by exact stores and sketches."""

    def update(self, source: Hashable, destination: Hashable, weight: float = 1.0) -> None:
        """Apply one stream item (add ``weight`` to edge ``source -> destination``)."""

    def edge_query(self, source: Hashable, destination: Hashable) -> Optional[float]:
        """Return the aggregated weight of the edge, or ``None`` when absent."""

    def successor_query(self, node: Hashable) -> Set[Hashable]:
        """Return the 1-hop successors of ``node`` (empty set when none)."""

    def precursor_query(self, node: Hashable) -> Set[Hashable]:
        """Return the 1-hop precursors of ``node`` (empty set when none)."""


def edge_weight_or_zero(store: GraphQueryInterface, source: Hashable, destination: Hashable) -> float:
    """``edge_query`` with absent edges reported as ``0.0``.

    The natural reading for accuracy metrics and weight aggregation, shared
    by the compound-query layer and the experiment runners.
    """
    weight = store.edge_query(source, destination)
    return 0.0 if weight is None else weight


def consume_stream(
    store: GraphQueryInterface, edges: Iterable, batch_size: int = 1024
) -> GraphQueryInterface:
    """Feed every item of a stream into ``store`` and return it.

    Accepts anything iterable over :class:`~repro.streaming.edge.StreamEdge`
    (a ``GraphStream``, list, generator, ...).  Stores that expose the
    batched ``update_many`` API (every sketch in :mod:`repro.core`) are fed
    in ``batch_size`` chunks; others fall back to item-at-a-time ``update``.

    This is the low-level feeding loop; prefer
    :class:`repro.api.StreamSession` in application code — it adds dataset
    loading, progress hooks and throughput metrics on top of the same
    chunking.
    """
    update_many = getattr(store, "update_many", None)
    if update_many is None:
        for edge in edges:
            store.update(edge.source, edge.destination, edge.weight)
        return store
    batch = []
    for edge in edges:
        batch.append((edge.source, edge.destination, edge.weight))
        if len(batch) >= batch_size:
            update_many(batch)
            batch = []
    if batch:
        update_many(batch)
    return store


def as_paper_result(neighbors: Set[Hashable]) -> Set:
    """Convert an empty neighbor set to the paper's ``{-1}`` convention."""
    return set(neighbors) if neighbors else set(NO_NEIGHBORS)
