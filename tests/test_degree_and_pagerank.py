"""Tests for degree statistics and PageRank over the query primitives."""

from __future__ import annotations

import pytest

from repro.core.config import GSSConfig
from repro.core.gss import GSS
from repro.exact.adjacency_list import AdjacencyListGraph
from repro.queries.degree import (
    average_out_degree,
    degree_skewness,
    degree_table,
    in_degree,
    in_degree_distribution,
    out_degree,
    out_degree_distribution,
    top_k_by_in_degree,
    top_k_by_out_degree,
    total_degree,
)
from repro.queries.pagerank import (
    materialize_successors,
    pagerank,
    personalized_pagerank,
    ranking_overlap,
    top_k_ranked,
)


def star_store() -> AdjacencyListGraph:
    """hub -> leaf0..leaf3, plus leaf0 -> leaf1."""
    store = AdjacencyListGraph()
    for index in range(4):
        store.update("hub", f"leaf{index}")
    store.update("leaf0", "leaf1")
    return store


STAR_NODES = ["hub", "leaf0", "leaf1", "leaf2", "leaf3"]


class TestDegree:
    def test_out_degree(self):
        assert out_degree(star_store(), "hub") == 4
        assert out_degree(star_store(), "leaf2") == 0

    def test_in_degree(self):
        assert in_degree(star_store(), "leaf1") == 2
        assert in_degree(star_store(), "hub") == 0

    def test_total_degree(self):
        assert total_degree(star_store(), "leaf0") == 1 + 1

    def test_degree_table(self):
        table = degree_table(star_store(), STAR_NODES)
        assert table["hub"] == (4, 0)
        assert table["leaf1"] == (0, 2)

    def test_top_k_by_out_degree(self):
        top = top_k_by_out_degree(star_store(), STAR_NODES, 2)
        assert top[0] == ("hub", 4)
        assert len(top) == 2

    def test_top_k_by_in_degree(self):
        top = top_k_by_in_degree(star_store(), STAR_NODES, 1)
        assert top[0] == ("leaf1", 2)

    def test_top_k_rejects_negative(self):
        with pytest.raises(ValueError):
            top_k_by_out_degree(star_store(), STAR_NODES, -1)
        with pytest.raises(ValueError):
            top_k_by_in_degree(star_store(), STAR_NODES, -1)

    def test_out_degree_distribution(self):
        distribution = out_degree_distribution(star_store(), STAR_NODES)
        assert distribution[4] == 1      # the hub
        assert distribution[0] == 3      # leaf1..leaf3

    def test_in_degree_distribution(self):
        distribution = in_degree_distribution(star_store(), STAR_NODES)
        assert distribution[2] == 1      # leaf1

    def test_average_out_degree(self):
        assert average_out_degree(star_store(), STAR_NODES) == pytest.approx(1.0)
        assert average_out_degree(star_store(), []) == 0.0

    def test_degree_skewness(self):
        distribution = {4: 1, 1: 1, 0: 3}
        assert degree_skewness(distribution) == pytest.approx(4 / 1.0)
        assert degree_skewness({}) == 0.0
        assert degree_skewness({0: 5}) == 0.0

    def test_sketch_degrees_upper_bound_truth(self, small_stream):
        stats = small_stream.statistics()
        sketch = GSS(
            GSSConfig.for_edge_count(stats.distinct_edges, sequence_length=4, candidate_buckets=4)
        ).ingest(small_stream)
        successors = small_stream.successors()
        for node in list(successors)[:50]:
            assert out_degree(sketch, node) >= len(successors[node])


class TestPageRank:
    def test_materialize_restricts_to_node_set(self):
        adjacency = materialize_successors(star_store(), ["hub", "leaf0"])
        assert adjacency["hub"] == ["leaf0"]

    def test_ranks_sum_to_one(self):
        ranks = pagerank(star_store(), STAR_NODES)
        assert sum(ranks.values()) == pytest.approx(1.0, abs=1e-6)

    def test_popular_target_ranks_highest(self):
        ranks = pagerank(star_store(), STAR_NODES)
        assert max(ranks, key=ranks.get) == "leaf1"

    def test_empty_node_set(self):
        assert pagerank(star_store(), []) == {}

    def test_invalid_damping(self):
        with pytest.raises(ValueError):
            pagerank(star_store(), STAR_NODES, damping=1.0)

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            pagerank(star_store(), STAR_NODES, iterations=0)

    def test_personalized_prefers_seed_neighborhood(self):
        ranks = personalized_pagerank(star_store(), STAR_NODES, seeds=["hub"])
        assert ranks["hub"] > ranks["leaf3"] or ranks["leaf1"] > ranks["leaf3"]

    def test_personalized_requires_seeds(self):
        with pytest.raises(ValueError):
            personalized_pagerank(star_store(), STAR_NODES, seeds=[])

    def test_personalization_with_no_mass_raises(self):
        with pytest.raises(ValueError):
            pagerank(star_store(), STAR_NODES, personalization={"not-a-node": 1.0})

    def test_top_k_ranked(self):
        ranks = {"a": 0.5, "b": 0.3, "c": 0.2}
        assert top_k_ranked(ranks, 2) == [("a", 0.5), ("b", 0.3)]
        with pytest.raises(ValueError):
            top_k_ranked(ranks, -1)

    def test_ranking_overlap(self):
        reference = {"a": 0.5, "b": 0.3, "c": 0.2}
        estimate = {"a": 0.3, "c": 0.45, "b": 0.25}
        assert ranking_overlap(reference, estimate, 1) == 0.0
        assert ranking_overlap(reference, estimate, 3) == 1.0
        with pytest.raises(ValueError):
            ranking_overlap(reference, estimate, 0)

    def test_sketch_ranking_agrees_with_exact(self, small_stream):
        exact = AdjacencyListGraph()
        for edge in small_stream:
            exact.update(edge.source, edge.destination, edge.weight)
        stats = small_stream.statistics()
        sketch = GSS(
            GSSConfig.for_edge_count(stats.distinct_edges, sequence_length=4, candidate_buckets=4)
        ).ingest(small_stream)
        nodes = small_stream.nodes()[:120]
        exact_ranks = pagerank(exact, nodes, iterations=15)
        sketch_ranks = pagerank(sketch, nodes, iterations=15)
        assert ranking_overlap(exact_ranks, sketch_ranks, 10) >= 0.5
