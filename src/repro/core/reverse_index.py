"""Reverse node index: from sketch hash ``H(v)`` back to original node IDs.

The paper stores ``<H(v), v>`` pairs in a hash table "to make this mapping
procedure reversible" — successor/precursor queries return sketch hashes and
the table converts them to original node identifiers.  Several original nodes
may share one hash value (that is exactly the collision the accuracy analysis
studies), so each hash maps to the *set* of originals.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Set


class NodeIndex:
    """Bidirectional node table: ``original id <-> H(v)``."""

    def __init__(self) -> None:
        self._originals_of: Dict[int, Set[Hashable]] = {}
        self._hash_of: Dict[Hashable, int] = {}

    def __len__(self) -> int:
        return len(self._hash_of)

    def __contains__(self, node: Hashable) -> bool:
        return node in self._hash_of

    def record(self, node: Hashable, node_hash: int) -> None:
        """Remember that ``node`` hashes to ``node_hash``.

        Re-recording a node under the hash it already has is a harmless
        no-op.  Re-recording it under a *different* hash — possible when
        merging sketches built with different seeds — would silently corrupt
        reverse lookups, so it raises ``ValueError`` instead.
        """
        existing = self._hash_of.get(node)
        if existing is not None:
            if existing != node_hash:
                raise ValueError(
                    f"node {node!r} is already registered under hash {existing} "
                    f"and cannot be re-registered under {node_hash}; this "
                    "usually means sketches built with different hash seeds "
                    "are being combined"
                )
            return
        self._hash_of[node] = node_hash
        self._originals_of.setdefault(node_hash, set()).add(node)

    def record_new_many(self, pairs: Iterable) -> None:
        """Record many ``(node, node_hash)`` pairs in one call.

        Bulk variant of :meth:`record` for batch-ingestion backends that
        discover a batch's first-seen nodes all at once.  Semantics are
        identical pair for pair — re-recording under the same hash is a
        no-op, a conflicting hash raises ``ValueError`` — only the per-node
        method-call overhead is gone.
        """
        hash_of = self._hash_of
        originals_of = self._originals_of
        for node, node_hash in pairs:
            existing = hash_of.setdefault(node, node_hash)
            if existing != node_hash:
                raise ValueError(
                    f"node {node!r} is already registered under hash {existing} "
                    f"and cannot be re-registered under {node_hash}; this "
                    "usually means sketches built with different hash seeds "
                    "are being combined"
                )
            bucket = originals_of.get(node_hash)
            if bucket is None:
                originals_of[node_hash] = {node}
            else:
                bucket.add(node)

    def hash_of(self, node: Hashable) -> int:
        """Return the recorded hash of ``node``; raises ``KeyError`` if unseen."""
        return self._hash_of[node]

    def originals(self, node_hash: int) -> Set[Hashable]:
        """All original node IDs that share ``node_hash`` (empty set if none)."""
        return set(self._originals_of.get(node_hash, ()))

    def expand(self, node_hashes: Iterable[int]) -> Set[Hashable]:
        """Union of the original IDs behind each hash in ``node_hashes``."""
        result: Set[Hashable] = set()
        for node_hash in node_hashes:
            result |= self._originals_of.get(node_hash, set())
        return result

    def known_nodes(self) -> List[Hashable]:
        """Every original node ID recorded so far."""
        return list(self._hash_of)

    def collision_count(self) -> int:
        """Number of original nodes sharing a hash with at least one other node."""
        return sum(
            len(originals)
            for originals in self._originals_of.values()
            if len(originals) > 1
        )

    def memory_bytes(self) -> int:
        """Memory of the table under a C layout (hash + pointer per entry)."""
        return len(self._hash_of) * 16
