"""The invariant lint suite: every rule fires on a known-bad fixture,
stays silent on the known-good twin, and the repo itself lints clean.

Fixture trees are synthetic directory layouts written under ``tmp_path``
— the checkers scope by path components (``streaming/``, ``serve/``,
``core/``, ``api/``), so each fixture places its files where the rule
actually looks.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.devtools.checkers import default_checkers
from repro.devtools.checkers.abi import AbiChecker
from repro.devtools.lint import main, run_lint

REPO_SRC = Path(__file__).resolve().parent.parent / "src"


def lint_tree(tmp_path: Path, files: dict, checkers=None):
    for rel, content in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content), encoding="utf-8")
    return run_lint([tmp_path], checkers)


def rules_of(report):
    return sorted({violation.rule for violation in report.violations})


class TestFramework:
    def test_parse_error_is_reported_once(self, tmp_path):
        report = lint_tree(tmp_path, {"core/broken.py": "def f(:\n"})
        assert rules_of(report) == ["parse-error"]

    def test_list_rules_covers_all_five(self):
        assert sorted(checker.rule for checker in default_checkers()) == [
            "abi-check",
            "api-surface",
            "asyncio-safety",
            "determinism",
            "hash-once",
        ]


class TestSuppressions:
    BAD = """
        from repro.hashing.hash_functions import hash_key

        def route(items, seed):
            return [hash_key(s, seed) for s, _ in items]{marker}
    """

    def test_justified_inline_allow_suppresses(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "streaming/r.py": self.BAD.format(
                    marker="  # repro: allow(hash-once): fixture edge"
                )
            },
        )
        assert report.ok
        assert [violation.rule for violation in report.suppressed] == ["hash-once"]

    def test_bare_allow_is_itself_a_violation(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {"streaming/r.py": self.BAD.format(marker="  # repro: allow(hash-once)")},
        )
        # The unjustified marker does not silence the underlying rule —
        # both the violation and the bad suppression surface.
        assert rules_of(report) == ["hash-once", "suppression"]
        assert not report.suppressed

    def test_comment_line_above_anchors_to_next_code_line(self, tmp_path):
        source = """
            from repro.hashing.hash_functions import hash_key

            def route(items, seed):
                # repro: allow(hash-once): justification too long to inline,
                # so it sits on the comment block above the call.
                return [hash_key(s, seed) for s, _ in items]
        """
        report = lint_tree(tmp_path, {"streaming/r.py": source})
        assert report.ok
        assert [violation.rule for violation in report.suppressed] == ["hash-once"]

    def test_unknown_rule_in_allow_is_flagged(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {"core/x.py": "VALUE = 1  # repro: allow(no-such-rule): because\n"},
        )
        assert rules_of(report) == ["suppression"]


class TestHashOnce:
    def test_scalar_hash_in_loop_fires(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "streaming/r.py": """
                from repro.hashing.hash_functions import hash_key

                def route(items, seed):
                    out = []
                    for source, _dest, _w in items:
                        out.append(hash_key(source, seed))
                    return out
                """
            },
        )
        assert rules_of(report) == ["hash-once"]

    def test_per_item_shard_of_fires(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "cluster/r.py": """
                def spread(self, items):
                    return [self.shard_of(source) for source, _ in items]
                """
            },
        )
        assert rules_of(report) == ["hash-once"]

    def test_single_hash_outside_loop_is_clean(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "streaming/r.py": """
                from repro.hashing.hash_functions import hash_key

                def one(key, seed):
                    return hash_key(key, seed)
                """
            },
        )
        assert report.ok

    def test_hashing_package_itself_is_exempt(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                # `core` puts it in scope; the hashing component exempts it.
                "core/hashing/h.py": """
                def batch(keys, seed):
                    return [hash_key(key, seed) for key in keys]
                """
            },
        )
        assert report.ok


class TestDeterminism:
    def test_set_iteration_fires(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "core/p.py": """
                def visit(use):
                    for item in {1, 2, 3}:
                        use(item)
                """
            },
        )
        assert rules_of(report) == ["determinism"]

    def test_inferred_set_variable_iteration_fires(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "core/p.py": """
                def visit(a, b, use):
                    both = set(a) | set(b)
                    for item in both:
                        use(item)
                """
            },
        )
        assert rules_of(report) == ["determinism"]

    def test_sorted_set_iteration_is_clean(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "core/p.py": """
                def visit(a, use):
                    for item in sorted(set(a)):
                        use(item)
                """
            },
        )
        assert report.ok

    def test_global_random_fires_seeded_rng_is_clean(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "core/p.py": """
                import random

                def bad():
                    return random.random()

                def good(seed):
                    return random.Random(seed).random()
                """
            },
        )
        assert len(report.violations) == 1
        assert report.violations[0].rule == "determinism"
        assert "global random state" in report.violations[0].message

    def test_time_escaping_to_return_fires(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "core/p.py": """
                from time import perf_counter

                def place():
                    return perf_counter()
                """
            },
        )
        assert rules_of(report) == ["determinism"]

    def test_timing_variable_reaching_placement_state_fires(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "core/p.py": """
                from time import perf_counter

                def place(self):
                    started = perf_counter()
                    self.offset = started
                """
            },
        )
        assert rules_of(report) == ["determinism"]
        assert "escapes" in report.violations[0].message

    def test_profiling_sink_pattern_is_clean(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "core/p.py": """
                from time import perf_counter

                def timed(profile, work):
                    started = perf_counter()
                    work()
                    profile.add("work", perf_counter() - started)
                """
            },
        )
        assert report.ok

    def test_module_level_clock_read_fires(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {"core/p.py": "import time\n\nSTARTED = time.time()\n"},
        )
        assert rules_of(report) == ["determinism"]

    def test_obs_span_start_stash_is_sanctioned(self, tmp_path):
        # The one sanctioned attribute store: a span stashing its start
        # time on `self._started` inside an obs/ file — no allow() marker.
        report = lint_tree(
            tmp_path,
            {
                "obs/trace.py": """
                from time import perf_counter

                class Span:
                    def __enter__(self):
                        self._started = perf_counter()
                        return self

                    def __exit__(self, *exc_info):
                        self._histogram.observe(perf_counter() - self._started)
                """
            },
        )
        assert report.ok

    def test_obs_clock_to_unsanctioned_attribute_fires(self, tmp_path):
        # Any *other* attribute store of a clock read in obs/ still escapes.
        report = lint_tree(
            tmp_path,
            {
                "obs/trace.py": """
                from time import perf_counter

                class Span:
                    def __enter__(self):
                        self.offset = perf_counter()
                        return self
                """
            },
        )
        assert rules_of(report) == ["determinism"]

    def test_started_attribute_outside_obs_still_fires(self, tmp_path):
        # The sanction is scoped to obs/ files: the same pattern in core/
        # remains a violation.
        report = lint_tree(
            tmp_path,
            {
                "core/p.py": """
                from time import perf_counter

                class Placer:
                    def place(self):
                        self._started = perf_counter()
                """
            },
        )
        assert rules_of(report) == ["determinism"]


class TestAsyncioSafety:
    def test_blocking_sleep_fires(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "serve/s.py": """
                import time

                async def handler():
                    time.sleep(0.1)
                """
            },
        )
        assert rules_of(report) == ["asyncio-safety"]

    def test_awaited_asyncio_sleep_is_clean(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "serve/s.py": """
                import asyncio

                async def handler():
                    await asyncio.sleep(0.1)
                """
            },
        )
        assert report.ok

    def test_executor_shutdown_join_fires(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "serve/s.py": """
                async def stop(self):
                    self._executor.shutdown(wait=True)
                """
            },
        )
        assert rules_of(report) == ["asyncio-safety"]
        assert "shutdown(wait=True)" in report.violations[0].message

    def test_direct_summary_call_fires(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "serve/s.py": """
                async def query(self, a, b):
                    return self.summary.edge_query(a, b)
                """
            },
        )
        assert rules_of(report) == ["asyncio-safety"]
        assert "executor" in report.violations[0].message

    def test_summary_behind_executor_is_clean(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "serve/s.py": """
                async def query(self, a, b):
                    return await self._run(self.summary.edge_query, a, b)
                """
            },
        )
        assert report.ok

    def test_sync_lock_across_await_fires(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "serve/s.py": """
                async def locked(self, work):
                    with self._lock:
                        await work()
                """
            },
        )
        assert rules_of(report) == ["asyncio-safety"]
        assert "lock" in report.violations[0].message

    def test_sync_lock_without_await_is_clean(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "serve/s.py": """
                async def locked(self, bump):
                    with self._lock:
                        bump()
                """
            },
        )
        assert report.ok

    def test_sync_functions_in_serve_are_not_checked(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "serve/s.py": """
                import time

                def warm_up():
                    time.sleep(0.1)
                """
            },
        )
        assert report.ok


class TestApiSurface:
    PROTOCOL = """
        class GraphSummary:
            def update(self, s, d, w):
                ...

            def edge_query(self, s, d):
                ...
    """

    def tree(self, registry, extra):
        files = {"api/protocol.py": self.PROTOCOL, "api/registry.py": registry}
        files.update(extra)
        return files

    def test_missing_protocol_method_fires(self, tmp_path):
        report = lint_tree(
            tmp_path,
            self.tree(
                """
                from repro.core.bad import BadSketch

                def _build_bad(spec) -> BadSketch:
                    ...
                """,
                {
                    "core/bad.py": """
                    class BadSketch:
                        def update(self, s, d, w):
                            ...
                    """
                },
            ),
        )
        assert rules_of(report) == ["api-surface"]
        assert "missing edge_query" in report.violations[0].message

    def test_complete_class_with_inherited_method_is_clean(self, tmp_path):
        report = lint_tree(
            tmp_path,
            self.tree(
                """
                from repro.core.good import GoodSketch

                def _build_good(spec) -> GoodSketch:
                    ...
                """,
                {
                    "core/good.py": """
                    class Shims:
                        def edge_query(self, s, d):
                            ...

                    class GoodSketch(Shims):
                        def update(self, s, d, w):
                            ...
                    """
                },
            ),
        )
        assert report.ok

    def test_restorer_class_is_also_checked(self, tmp_path):
        report = lint_tree(
            tmp_path,
            self.tree(
                """
                from repro.core.bad import BadSketch

                def register(info):
                    info(restorer=BadSketch.from_dict)
                """,
                {
                    "core/bad.py": """
                    class BadSketch:
                        @classmethod
                        def from_dict(cls, document):
                            ...
                    """
                },
            ),
        )
        assert rules_of(report) == ["api-surface"]

    def test_sentinel_literal_fires_anywhere(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {"queries/q.py": "def probe():\n    return -1.0\n"},
        )
        assert rules_of(report) == ["api-surface"]
        assert "sentinel" in report.violations[0].message

    def test_direct_construction_in_experiments_fires(self, tmp_path):
        report = lint_tree(
            tmp_path,
            self.tree(
                """
                from repro.core.good import GoodSketch

                def _build_good(spec) -> GoodSketch:
                    ...
                """,
                {
                    "core/good.py": """
                    class GoodSketch:
                        def update(self, s, d, w):
                            ...

                        def edge_query(self, s, d):
                            ...
                    """,
                    "experiments/run.py": """
                    from repro.core.good import GoodSketch

                    def run():
                        return GoodSketch()
                    """,
                },
            ),
        )
        assert rules_of(report) == ["api-surface"]
        assert "factory" in report.violations[0].message

    def test_factory_use_in_experiments_is_clean(self, tmp_path):
        report = lint_tree(
            tmp_path,
            self.tree(
                """
                from repro.core.good import GoodSketch

                def _build_good(spec) -> GoodSketch:
                    ...
                """,
                {
                    "core/good.py": """
                    class GoodSketch:
                        def update(self, s, d, w):
                            ...

                        def edge_query(self, s, d):
                            ...
                    """,
                    "experiments/run.py": """
                    from repro.api import build

                    def run(spec):
                        return build(spec)
                    """,
                },
            ),
        )
        assert report.ok


GOOD_KERNEL = """
#include <stdint.h>

typedef struct {
    uint64_t off;
    uint32_t len;
} entry;

int64_t frob(void *ctx, int64_t a, const uint64_t *keys);
void release(void *ctx);
"""

GOOD_BINDING = """
import ctypes as c


class entry(c.Structure):
    _fields_ = [("off", c.c_uint64), ("len", c.c_uint32)]


def bind(lib):
    lib.frob.restype = c.c_int64
    lib.frob.argtypes = [c.c_void_p, c.c_int64, c.c_void_p]
    lib.release.restype = None
    lib.release.argtypes = [c.c_void_p]
"""


class TestAbiCheck:
    def lint_pair(self, tmp_path, kernel, binding):
        return lint_tree(
            tmp_path,
            {"_native/kernel.c": kernel, "_native/__init__.py": binding},
            checkers=[AbiChecker()],
        )

    def test_matching_pair_is_clean(self, tmp_path):
        assert self.lint_pair(tmp_path, GOOD_KERNEL, GOOD_BINDING).ok

    def test_added_c_parameter_is_caught(self, tmp_path):
        drifted = GOOD_KERNEL.replace(
            "const uint64_t *keys);", "const uint64_t *keys, int64_t extra);"
        )
        report = self.lint_pair(tmp_path, drifted, GOOD_BINDING)
        assert any(
            "3 entries" in v.message and "4 parameters" in v.message
            for v in report.violations
        ), [v.message for v in report.violations]

    def test_return_type_drift_is_caught(self, tmp_path):
        drifted = GOOD_KERNEL.replace("int64_t frob", "double frob")
        report = self.lint_pair(tmp_path, drifted, GOOD_BINDING)
        assert any("restype" in v.message for v in report.violations)

    def test_scalar_parameter_type_drift_is_caught(self, tmp_path):
        drifted = GOOD_KERNEL.replace("int64_t a", "int32_t a")
        report = self.lint_pair(tmp_path, drifted, GOOD_BINDING)
        assert any("argtypes[1]" in v.message for v in report.violations)

    def test_unbound_export_is_caught(self, tmp_path):
        extended = GOOD_KERNEL + "\nint64_t orphan(void *ctx);\n"
        report = self.lint_pair(tmp_path, extended, GOOD_BINDING)
        assert any("no ctypes binding" in v.message for v in report.violations)

    def test_stale_binding_is_caught(self, tmp_path):
        stale = GOOD_BINDING + (
            "\n\ndef more(lib):\n"
            "    lib.gone.restype = c.c_int64\n"
            "    lib.gone.argtypes = [c.c_void_p]\n"
        )
        report = self.lint_pair(tmp_path, GOOD_KERNEL, stale)
        assert any("stale binding" in v.message for v in report.violations)

    def test_struct_field_order_drift_is_caught(self, tmp_path):
        drifted = GOOD_KERNEL.replace(
            "uint64_t off;\n    uint32_t len;", "uint32_t len;\n    uint64_t off;"
        )
        report = self.lint_pair(tmp_path, drifted, GOOD_BINDING)
        assert any("field names/order" in v.message for v in report.violations)

    def test_struct_field_type_drift_is_caught(self, tmp_path):
        drifted = GOOD_KERNEL.replace("uint32_t len;", "uint64_t len;")
        report = self.lint_pair(tmp_path, drifted, GOOD_BINDING)
        assert any("entry.len" in v.message for v in report.violations)

    def test_real_kernel_binding_pair_is_clean(self):
        report = run_lint([REPO_SRC / "repro" / "core" / "_native"], [AbiChecker()])
        assert report.ok, [v.format() for v in report.violations]


class TestCli:
    def test_list_rules_exits_zero(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("abi-check", "hash-once", "determinism",
                     "asyncio-safety", "api-surface", "suppression"):
            assert rule in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2

    def test_violations_exit_one_and_json_reports_them(self, tmp_path, capsys):
        bad = tmp_path / "core" / "p.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\n\ndef f():\n    return random.random()\n")
        assert main([str(tmp_path), "--json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is False
        assert document["violations"][0]["rule"] == "determinism"

    def test_rules_subset_does_not_misflag_other_suppressions(self, tmp_path):
        clean = tmp_path / "core" / "p.py"
        clean.parent.mkdir(parents=True)
        clean.write_text(
            "X = 1  # repro: allow(hash-once): suppression of unselected rule\n"
        )
        assert main([str(tmp_path), "--rules", "determinism"]) == 0


class TestRepoIsClean:
    def test_full_src_tree_lints_clean(self):
        report = run_lint([REPO_SRC])
        assert report.ok, "\n".join(v.format() for v in report.violations)

    def test_every_repo_suppression_is_justified(self):
        report = run_lint([REPO_SRC])
        # ok already implies no bare suppressions; make the intent explicit.
        assert all(v.rule != "suppression" for v in report.violations)
        assert report.suppressed, "expected the documented allow() sites"
