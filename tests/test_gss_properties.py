"""Hypothesis property tests for the GSS invariants.

The two invariants the paper's analysis rests on are exercised here over
randomly generated streams and configurations:

* **No under-estimation** — the aggregation function is addition, so GSS (and
  the basic variant) can only over-estimate edge weights (Section VII-A).
* **No false negatives** — every true successor/precursor is reported
  (Section VII-B defines precision assuming ``SS ⊆ SS_hat``).
* **Reversibility (Theorem 1)** — edges stored in the matrix can be recovered
  exactly, so two different sketch edges are never merged.
"""

from __future__ import annotations

from typing import List, Tuple

from hypothesis import given, settings, strategies as st

from repro.core.basic import GSSBasic
from repro.core.config import GSSConfig
from repro.core.gss import GSS
from repro.hashing.linear_congruence import address_sequence, recover_address

# Streams of up to 60 items over a small node universe, with weights 1..5.
edge_items = st.tuples(
    st.integers(min_value=0, max_value=24),
    st.integers(min_value=0, max_value=24),
    st.integers(min_value=1, max_value=5),
)
streams = st.lists(edge_items, min_size=1, max_size=60)

configs = st.builds(
    GSSConfig,
    matrix_width=st.integers(min_value=2, max_value=24),
    fingerprint_bits=st.sampled_from([4, 8, 12, 16]),
    rooms=st.integers(min_value=1, max_value=3),
    sequence_length=st.integers(min_value=1, max_value=8),
    candidate_buckets=st.integers(min_value=1, max_value=8),
    square_hashing=st.booleans(),
    sampling=st.booleans(),
)


def aggregate(items: List[Tuple[int, int, int]]):
    truth = {}
    for source, destination, weight in items:
        truth[(source, destination)] = truth.get((source, destination), 0.0) + weight
    return truth


@given(items=streams, config=configs)
@settings(max_examples=120, deadline=None)
def test_gss_never_underestimates(items, config):
    sketch = GSS(config)
    for source, destination, weight in items:
        sketch.update(f"n{source}", f"n{destination}", float(weight))
    for (source, destination), weight in aggregate(items).items():
        assert sketch.edge_query(f"n{source}", f"n{destination}") >= weight - 1e-9


@given(items=streams, config=configs)
@settings(max_examples=60, deadline=None)
def test_gss_has_no_false_negative_successors(items, config):
    sketch = GSS(config)
    truth = {}
    for source, destination, weight in items:
        sketch.update(f"n{source}", f"n{destination}", float(weight))
        truth.setdefault(f"n{source}", set()).add(f"n{destination}")
    for node, successors in truth.items():
        assert successors <= sketch.successor_query(node)


@given(items=streams, config=configs)
@settings(max_examples=60, deadline=None)
def test_gss_has_no_false_negative_precursors(items, config):
    sketch = GSS(config)
    truth = {}
    for source, destination, weight in items:
        sketch.update(f"n{source}", f"n{destination}", float(weight))
        truth.setdefault(f"n{destination}", set()).add(f"n{source}")
    for node, precursors in truth.items():
        assert precursors <= sketch.precursor_query(node)


@given(items=streams)
@settings(max_examples=80, deadline=None)
def test_basic_gss_never_underestimates(items):
    sketch = GSSBasic(matrix_width=8, fingerprint_bits=8)
    for source, destination, weight in items:
        sketch.update(f"n{source}", f"n{destination}", float(weight))
    for (source, destination), weight in aggregate(items).items():
        assert sketch.edge_query(f"n{source}", f"n{destination}") >= weight - 1e-9


@given(items=streams, config=configs)
@settings(max_examples=60, deadline=None)
def test_stored_edge_count_never_exceeds_distinct_sketch_edges(items, config):
    sketch = GSS(config)
    for source, destination, weight in items:
        sketch.update(f"n{source}", f"n{destination}", float(weight))
    distinct_sketch_edges = {
        (sketch.node_hash(f"n{source}"), sketch.node_hash(f"n{destination}"))
        for source, destination, _ in items
    }
    stored = sketch.matrix_edge_count + sketch.buffer_edge_count
    assert stored == len(distinct_sketch_edges)


@given(
    base=st.integers(min_value=0, max_value=499),
    fingerprint=st.integers(min_value=0, max_value=4095),
    width=st.integers(min_value=2, max_value=500),
    length=st.integers(min_value=1, max_value=16),
)
@settings(max_examples=200, deadline=None)
def test_square_hashing_addresses_are_reversible(base, fingerprint, width, length):
    base = base % width
    addresses = address_sequence(base, fingerprint, length, width)
    for index, observed in enumerate(addresses, start=1):
        assert recover_address(observed, fingerprint, index, width) == base


@given(items=streams)
@settings(max_examples=40, deadline=None)
def test_reconstruction_covers_every_sketch_edge(items):
    config = GSSConfig(matrix_width=12, fingerprint_bits=12, sequence_length=4, candidate_buckets=4)
    sketch = GSS(config)
    for source, destination, weight in items:
        sketch.update(f"n{source}", f"n{destination}", float(weight))
    recovered = {}
    for source_hash, destination_hash, weight in sketch.reconstruct_sketch_edges():
        key = (source_hash, destination_hash)
        recovered[key] = recovered.get(key, 0.0) + weight
    for (source, destination), weight in aggregate(items).items():
        key = (sketch.node_hash(f"n{source}"), sketch.node_hash(f"n{destination}"))
        assert recovered[key] >= weight - 1e-9
