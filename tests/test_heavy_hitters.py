"""Unit tests for heavy-hitter queries."""

import pytest

from repro.core.config import GSSConfig
from repro.core.gss import GSS
from repro.exact.adjacency_list import AdjacencyListGraph
from repro.queries.heavy_hitters import heavy_edges, heavy_nodes, top_k_edges, top_k_nodes
from repro.queries.primitives import consume_stream


@pytest.fixture()
def exact_store(paper_stream):
    return consume_stream(AdjacencyListGraph(), paper_stream)


@pytest.fixture()
def sketch(paper_stream):
    gss = GSS(GSSConfig(matrix_width=8, fingerprint_bits=16, sequence_length=4, candidate_buckets=4))
    return gss.ingest(paper_stream)


class TestHeavyEdges:
    def test_threshold_filtering(self, exact_store, paper_stream):
        candidates = paper_stream.distinct_edge_keys()
        heavy = heavy_edges(exact_store, candidates, threshold=2.0)
        found = {(source, destination) for source, destination, _ in heavy}
        assert found == {("a", "c"), ("c", "f"), ("d", "a"), ("f", "e"), ("e", "b")}

    def test_sorted_by_weight(self, exact_store, paper_stream):
        heavy = heavy_edges(exact_store, paper_stream.distinct_edge_keys(), threshold=1.0)
        weights = [weight for _, _, weight in heavy]
        assert weights == sorted(weights, reverse=True)

    def test_sketch_never_misses_heavy_edges(self, sketch, exact_store, paper_stream):
        candidates = paper_stream.distinct_edge_keys()
        truth = {
            (source, destination)
            for source, destination, _ in heavy_edges(exact_store, candidates, 2.0)
        }
        estimated = {
            (source, destination)
            for source, destination, _ in heavy_edges(sketch, candidates, 2.0)
        }
        assert truth <= estimated

    def test_top_k(self, exact_store, paper_stream):
        top = top_k_edges(exact_store, paper_stream.distinct_edge_keys(), k=1)
        assert top[0][:2] == ("a", "c")
        assert top[0][2] == 5.0

    def test_rejects_bad_arguments(self, exact_store):
        with pytest.raises(ValueError):
            heavy_edges(exact_store, [], threshold=0)
        with pytest.raises(ValueError):
            top_k_edges(exact_store, [], k=0)


class TestHeavyNodes:
    def test_out_direction(self, exact_store, paper_stream):
        nodes = paper_stream.nodes()
        heavy = heavy_nodes(exact_store, nodes, threshold=3.0, direction="out")
        assert heavy[0][0] == "a"
        assert dict(heavy)["a"] == 9.0

    def test_in_direction(self, exact_store, paper_stream):
        nodes = paper_stream.nodes()
        heavy = dict(heavy_nodes(exact_store, nodes, threshold=3.0, direction="in"))
        assert heavy["c"] == 5.0

    def test_top_k_nodes(self, exact_store, paper_stream):
        top = top_k_nodes(exact_store, paper_stream.nodes(), k=2, direction="out")
        assert [node for node, _ in top][0] == "a"
        assert len(top) == 2

    def test_sketch_never_misses_heavy_nodes(self, sketch, exact_store, paper_stream):
        nodes = paper_stream.nodes()
        truth = {node for node, _ in heavy_nodes(exact_store, nodes, 3.0)}
        estimated = {node for node, _ in heavy_nodes(sketch, nodes, 3.0)}
        assert truth <= estimated

    def test_rejects_bad_arguments(self, exact_store):
        with pytest.raises(ValueError):
            heavy_nodes(exact_store, [], threshold=-1)
        with pytest.raises(ValueError):
            heavy_nodes(exact_store, [], threshold=1, direction="sideways")
        with pytest.raises(ValueError):
            top_k_nodes(exact_store, [], k=0)
        with pytest.raises(ValueError):
            top_k_nodes(exact_store, [], k=1, direction="sideways")
