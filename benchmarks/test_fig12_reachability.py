"""Benchmark: regenerate Figure 12 (reachability true-negative recall)."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import run_reachability_experiment


@pytest.mark.paper_artifact("fig12")
def test_fig12_reachability_recall(benchmark, bench_config):
    result = run_once(benchmark, run_reachability_experiment, bench_config)
    print()
    print(result.to_text())

    gss_rows = [row for row in result.rows if row["structure"].startswith("GSS")]
    tcm_rows = [row for row in result.rows if row["structure"].startswith("TCM")]
    assert gss_rows and tcm_rows

    # Paper shape: GSS true-negative recall is near 1; TCM's is far lower
    # ("can barely support this query") even with much more memory.
    assert min(row["true_negative_recall"] for row in gss_rows) > 0.9
    for gss_row in gss_rows:
        matching_tcm = [
            row
            for row in tcm_rows
            if row["dataset"] == gss_row["dataset"] and row["width"] == gss_row["width"]
        ]
        assert matching_tcm
        assert (
            gss_row["true_negative_recall"]
            >= matching_tcm[0]["true_negative_recall"] - 1e-9
        )
