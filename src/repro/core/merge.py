"""Merging independently built GSS sketches.

Distributed and parallel deployments (the GraphX / PowerGraph / Pregel setting
the paper's introduction points at) build partial summaries on different
workers and later need one combined summary.  Because GSS stores the graph
sketch ``Gh`` losslessly for a fixed node-hash function (Theorem 1), two
sketches built with *compatible* configurations — same node-hash seed and the
same hash range ``M = m * F`` — can be merged by replaying the edges recovered
from one sketch into the other; the result is identical to a sketch that had
seen the concatenated stream, up to the placement of left-over edges.

This module provides the compatibility check and the merge itself, plus a
convenience that merges many sketches in one pass.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.core.config import GSSConfig
from repro.core.gss import GSS


def compatible_for_merge(first: GSSConfig, second: GSSConfig) -> bool:
    """True when two configurations produce mergeable sketches.

    Mergeability only requires that both sketches agree on the node-hash
    function — the same ``seed`` and the same value range
    ``M = matrix_width * F`` — and split hashes into addresses and
    fingerprints the same way (same ``fingerprint_bits``).  The square-hashing
    parameters (``r``, ``k``, rooms) may differ: they only affect *where*
    inside the matrix an edge lands, not what the edge means.
    """
    return (
        first.seed == second.seed
        and first.fingerprint_bits == second.fingerprint_bits
        and first.matrix_width == second.matrix_width
    )


def merge_into(target: GSS, source: GSS) -> GSS:
    """Replay every sketch edge of ``source`` into ``target`` and return it.

    Raises ``ValueError`` when the two sketches were built with incompatible
    node-hash parameters (see :func:`compatible_for_merge`).  The weights of
    sketch edges present in both inputs are summed, matching the streaming
    graph semantics of concatenating the two input streams.
    """
    if not compatible_for_merge(target.config, source.config):
        raise ValueError(
            "cannot merge: sketches use different node-hash parameters "
            f"(target seed={target.config.seed}, width={target.config.matrix_width}, "
            f"fp_bits={target.config.fingerprint_bits}; "
            f"source seed={source.config.seed}, width={source.config.matrix_width}, "
            f"fp_bits={source.config.fingerprint_bits})"
        )
    target.update_many_by_hash(source.reconstruct_sketch_edges())
    if source.node_index is not None and target.node_index is not None:
        for node in source.node_index.known_nodes():
            target.node_index.record(node, source.node_index.hash_of(node))
    return target


def merge_sketches(sketches: Iterable[GSS], config: GSSConfig = None) -> GSS:
    """Merge several sketches into a fresh one and return it.

    ``config`` defaults to the configuration of the first sketch.  All inputs
    must be pairwise compatible (same node-hash parameters).
    """
    pending: List[GSS] = list(sketches)
    if not pending:
        raise ValueError("merge_sketches needs at least one sketch")
    merged_config = config if config is not None else pending[0].config
    merged = GSS(merged_config)
    for sketch in pending:
        merge_into(merged, sketch)
    return merged
