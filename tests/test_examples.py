"""Smoke tests for the runnable examples.

Every example must at least be importable (valid syntax, resolvable imports,
a ``main`` entry point).  The quickest example is additionally executed end to
end at a reduced dataset scale so the documented user journey is exercised in
CI without making the suite slow.
"""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_example(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamplesStructure:
    def test_examples_directory_has_at_least_quickstart_plus_domain_scenarios(self):
        names = {path.stem for path in EXAMPLE_FILES}
        assert "quickstart" in names
        assert len(names) >= 4

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_example_imports_and_exposes_main(self, path):
        module = load_example(path)
        assert callable(getattr(module, "main", None)), f"{path.name} has no main()"

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_example_has_module_docstring_with_run_instructions(self, path):
        source = path.read_text()
        assert source.lstrip().startswith('"""')
        assert f"examples/{path.name}" in source


class TestQuickstartRuns:
    def test_quickstart_executes(self, capsys, monkeypatch):
        import repro.datasets.registry as registry

        original = registry.load_dataset
        monkeypatch.setattr(
            registry, "load_dataset", lambda name, scale=1.0, seed=None: original(name, scale=0.05, seed=seed)
        )
        module = load_example(EXAMPLES_DIR / "quickstart.py")
        monkeypatch.setattr(module, "load_dataset", registry.load_dataset, raising=False)
        module.main()
        output = capsys.readouterr().out
        assert "GSS" in output
