"""PageRank-style node importance computed from the query primitives.

The paper positions GSS as a substrate for "all kinds of queries and
algorithms" over streaming graphs, explicitly citing graph-computation systems
(GraphX, PowerGraph, Pregel).  PageRank is the canonical such algorithm; this
module implements it purely on the primitives protocol:

1. the out-neighborhood of every node of interest is materialised once via
   1-hop successor queries (a sketch answers with possible false positives,
   which slightly diffuses rank mass — the experiments measure how much);
2. the standard power iteration with a damping factor runs on that
   materialised adjacency.

Both plain PageRank over a node set and personalised PageRank (restart into a
seed distribution) are provided, together with a helper that compares two
rankings by top-``k`` overlap — the metric the algorithm-agreement experiment
reports.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.queries.primitives import GraphQueryInterface


def materialize_successors(
    store: GraphQueryInterface, nodes: Iterable[Hashable]
) -> Dict[Hashable, List[Hashable]]:
    """Out-adjacency restricted to ``nodes``, materialised from the primitives.

    Successors outside the node set are dropped so the random walk stays on
    the requested subgraph.
    """
    node_list = list(nodes)
    node_set: Set[Hashable] = set(node_list)
    return {
        node: sorted(
            (neighbor for neighbor in store.successor_query(node) if neighbor in node_set),
            key=repr,
        )
        for node in node_list
    }


def pagerank(
    store: GraphQueryInterface,
    nodes: Iterable[Hashable],
    damping: float = 0.85,
    iterations: int = 30,
    tolerance: float = 1e-9,
    personalization: Optional[Dict[Hashable, float]] = None,
) -> Dict[Hashable, float]:
    """PageRank scores of ``nodes`` on the graph served by ``store``.

    Parameters
    ----------
    store:
        Anything implementing the query-primitive protocol (exact store,
        GSS, TCM, ...).
    nodes:
        The node universe to rank; ranks are normalised to sum to 1 over it.
    damping:
        Probability of following an out-edge instead of teleporting.
    iterations:
        Maximum number of power-iteration steps.
    tolerance:
        Early-exit threshold on the L1 change between successive iterations.
    personalization:
        Optional restart distribution (personalised PageRank); keys outside
        ``nodes`` are ignored, and the distribution is re-normalised.
    """
    if not 0.0 <= damping < 1.0:
        raise ValueError("damping must be in [0, 1)")
    if iterations < 1:
        raise ValueError("iterations must be at least 1")

    adjacency = materialize_successors(store, nodes)
    node_list = list(adjacency)
    count = len(node_list)
    if count == 0:
        return {}

    if personalization:
        restart_raw = {node: max(0.0, personalization.get(node, 0.0)) for node in node_list}
        total = sum(restart_raw.values())
        if total <= 0:
            raise ValueError("personalization must give positive mass to at least one node")
        restart = {node: value / total for node, value in restart_raw.items()}
    else:
        restart = {node: 1.0 / count for node in node_list}

    ranks = dict(restart)
    for _ in range(iterations):
        next_ranks = {node: (1.0 - damping) * restart[node] for node in node_list}
        dangling_mass = 0.0
        for node in node_list:
            successors = adjacency[node]
            if not successors:
                dangling_mass += damping * ranks[node]
                continue
            share = damping * ranks[node] / len(successors)
            for neighbor in successors:
                next_ranks[neighbor] += share
        if dangling_mass:
            # Dangling nodes redistribute their mass through the restart vector.
            for node in node_list:
                next_ranks[node] += dangling_mass * restart[node]
        change = sum(abs(next_ranks[node] - ranks[node]) for node in node_list)
        ranks = next_ranks
        if change < tolerance:
            break
    return ranks


def personalized_pagerank(
    store: GraphQueryInterface,
    nodes: Iterable[Hashable],
    seeds: Sequence[Hashable],
    damping: float = 0.85,
    iterations: int = 30,
) -> Dict[Hashable, float]:
    """Personalised PageRank restarted uniformly into ``seeds``.

    This is the "find the potential friends of a user" query of the paper's
    social-network use case: nodes close to the seeds receive high scores.
    """
    if not seeds:
        raise ValueError("personalized_pagerank needs at least one seed node")
    personalization = {seed: 1.0 for seed in seeds}
    return pagerank(
        store,
        nodes,
        damping=damping,
        iterations=iterations,
        personalization=personalization,
    )


def top_k_ranked(ranks: Dict[Hashable, float], k: int) -> List[Tuple[Hashable, float]]:
    """The ``k`` highest-ranked nodes, ties broken by node representation."""
    if k < 0:
        raise ValueError("k must be non-negative")
    ordered = sorted(ranks.items(), key=lambda pair: (-pair[1], repr(pair[0])))
    return ordered[:k]


def ranking_overlap(
    reference: Dict[Hashable, float], estimate: Dict[Hashable, float], k: int
) -> float:
    """Fraction of the reference top-``k`` that also appears in the estimate's top-``k``.

    1.0 means the sketch ranks exactly the same top-``k`` nodes as the exact
    store; the algorithm-agreement experiment sweeps ``k`` and reports this.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    reference_top = {node for node, _ in top_k_ranked(reference, k)}
    estimate_top = {node for node, _ in top_k_ranked(estimate, k)}
    if not reference_top:
        return 1.0
    return len(reference_top & estimate_top) / len(reference_top)
