"""determinism: placement must not see iteration order, randomness, time.

Cross-backend bit-identity (python == numpy == native, single-process ==
sharded == served) holds because placement is a pure function of the
stream: same items in, same rooms/buffer out.  Three things silently
break that purity in ``core/``, ``hashing/`` and ``obs/``:

* **unordered iteration** — ``for x in some_set`` visits elements in a
  hash-randomized order (``PYTHONHASHSEED``); if anything stateful
  happens per element, two runs of the same stream diverge.  Sets are
  fine as *values* (query results are sets); only iterating one is
  flagged.  Dicts are insertion-ordered by language guarantee and exempt,
  but the set-algebra views (``a.union(b)``, ``x | y`` over sets) are
  caught.
* **unseeded randomness** — module-level ``random.*`` / ``np.random.*``
  draws from ambient global state; ``random.Random(seed)`` /
  ``default_rng(seed)`` with an explicit seed are fine.
* **wall-clock values** — ``time.time()``/``perf_counter()`` etc. may be
  *measured* (the ingest profiler does), but the measurement must flow
  only into timing sinks (``profile.add(...)``-style accumulators),
  comparisons, or other timing variables — never into returned values,
  attributes, call arguments or indices, where it could steer placement.
  The analysis taints assigned names and propagates through local
  assignments to a fixpoint within each function.

``obs/`` (the telemetry layer) is *in scope* precisely because it reads the
clock on hot paths: its instruments are the sanctioned sinks (``observe``/
``add``/``inc`` receivers), plus exactly one sanctioned attribute store —
``self._started = perf_counter()``, the span's stashed start time, which
only ever flows back into ``observe()``.  Any other attribute store of a
wall-clock value in ``obs/`` files still escapes and is flagged, so the
telemetry layer cannot quietly grow a time-dependent code path.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.devtools.framework import Checker, PyFile, Violation, iter_parents

__all__ = ["DeterminismChecker"]

_SET_CALLS = frozenset({"set", "frozenset"})
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)

_TIME_FUNCS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "now",
        "utcnow",
        "today",
    }
)
_TIME_MODULES = frozenset({"time", "datetime", "date"})
#: Call attribute names treated as timing sinks: a time measurement may be
#: passed to these (metrics/profiling accumulators) without being flagged.
_TIME_SINKS = frozenset({"add", "observe", "record", "append"})

#: Attribute stores sanctioned as timing sinks in ``obs/`` files only:
#: ``Span.__enter__`` stashes its start time on ``self._started`` so
#: ``__exit__`` can feed the difference straight into ``observe()``.  No
#: blanket ``repro: allow`` marker — the sanction is this exact attribute
#: name in that exact scope, and anything else still escapes.
_OBS_SANCTIONED_ATTRS = frozenset({"_started"})

_RANDOM_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "normalvariate",
        "betavariate",
        "expovariate",
        "getrandbits",
        "seed",
    }
)


def _call_path(node: ast.Call) -> str:
    """Dotted name of a call target, best effort (``time.perf_counter``)."""
    parts: List[str] = []
    current: ast.AST = node.func
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
    return ".".join(reversed(parts))


def _is_set_expr(node: ast.AST, set_names: Set[str]) -> bool:
    """Does this expression (conservatively) evaluate to a set?"""
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name):
            if node.func.id in _SET_CALLS:
                return True
            # list(set(...)) / tuple(set(...)) freeze the unordered order.
            if node.func.id in ("list", "tuple") and node.args:
                return _is_set_expr(node.args[0], set_names)
            return False
        if isinstance(node.func, ast.Attribute):
            return node.func.attr in _SET_METHODS
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_expr(node.left, set_names) and _is_set_expr(
            node.right, set_names
        )
    return False


def _is_set_annotation(annotation: ast.AST) -> bool:
    if isinstance(annotation, ast.Name):
        return annotation.id in ("set", "Set", "frozenset", "FrozenSet")
    if isinstance(annotation, ast.Subscript):
        return _is_set_annotation(annotation.value)
    return False


def _scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk ``scope`` without descending into nested function scopes."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))


def _set_typed_names(scope: ast.AST) -> Set[str]:
    """Names assigned set-valued expressions within this scope."""
    names: Set[str] = set()
    # Two passes so `a = set(); b = a | other` is caught regardless of
    # statement order in the walk.
    for _ in range(2):
        for node in _scope_nodes(scope):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and _is_set_expr(node.value, names):
                    names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                if _is_set_annotation(node.annotation):
                    names.add(node.target.id)
    return names


class DeterminismChecker(Checker):
    rule = "determinism"
    description = (
        "no unordered-set iteration, unseeded randomness or wall-clock "
        "values in placement-affecting paths"
    )
    scope = ("core", "hashing", "obs")

    def check_file(self, pyfile: PyFile) -> Iterator[Violation]:
        assert pyfile.tree is not None
        scopes: List[ast.AST] = [pyfile.tree] + [
            node
            for node in pyfile.walk()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for scope in scopes:
            set_names = _set_typed_names(scope)
            for node in _scope_nodes(scope):
                iter_expr: Optional[ast.AST] = None
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iter_expr = node.iter
                elif isinstance(node, ast.comprehension):
                    iter_expr = node.iter
                if iter_expr is not None and _is_set_expr(iter_expr, set_names):
                    yield Violation(
                        rule=self.rule,
                        path=pyfile.rel,
                        line=iter_expr.lineno,
                        message=(
                            "iterating an unordered set — the visit order is "
                            "hash-randomized; sort (sorted(...)) or "
                            "restructure so order cannot matter"
                        ),
                    )
            if scope is not pyfile.tree:
                yield from self._check_time_scope(pyfile, scope)
        yield from self._check_time_module_level(pyfile)
        for node in pyfile.walk():
            if isinstance(node, ast.Call):
                yield from self._check_random(pyfile, node)

    # -- unseeded randomness -------------------------------------------------

    def _check_random(self, pyfile: PyFile, node: ast.Call) -> Iterator[Violation]:
        path = _call_path(node)
        parts = path.split(".")
        if len(parts) >= 2 and parts[-2] == "random" and parts[-1] in _RANDOM_FUNCS:
            yield self.violation(
                pyfile,
                node,
                f"{path}() uses global random state — placement paths must "
                "use an explicitly seeded random.Random(seed)",
            )
        elif parts[-1] == "Random" and not node.args and not node.keywords:
            yield self.violation(
                pyfile,
                node,
                "random.Random() without a seed falls back to OS entropy — "
                "pass an explicit seed",
            )
        elif parts[-1] == "default_rng" and not node.args and not node.keywords:
            yield self.violation(
                pyfile,
                node,
                "default_rng() without a seed is nondeterministic — pass an "
                "explicit seed",
            )

    # -- wall-clock taint ----------------------------------------------------

    def _is_time_call(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        parts = _call_path(node).split(".")
        if parts[-1] not in _TIME_FUNCS:
            return False
        # `perf_counter()` imported bare, or `time.monotonic()` /
        # `datetime.now()` dotted; bare `now()`/`today()` style names are
        # too generic to flag without a module qualifier.
        if len(parts) == 1:
            return parts[0] not in ("now", "utcnow", "today", "time")
        return parts[-2] in _TIME_MODULES or parts[0] in _TIME_MODULES

    def _check_time_module_level(self, pyfile: PyFile) -> Iterator[Violation]:
        assert pyfile.tree is not None
        for node in _scope_nodes(pyfile.tree):
            if self._is_time_call(node):
                yield self.violation(
                    pyfile,
                    node,
                    "wall-clock read at module level — import-time values "
                    "bake nondeterminism into every placement decision",
                )

    def _check_time_scope(
        self, pyfile: PyFile, function: ast.AST
    ) -> Iterator[Violation]:
        time_calls = [
            node for node in _scope_nodes(function) if self._is_time_call(node)
        ]
        if not time_calls:
            return
        sanctioned = self._sanctioned_attrs(pyfile)
        tainted: Set[str] = set()
        flagged: List[Tuple[ast.AST, str]] = []
        for call in time_calls:
            verdict = _consumption_verdict(pyfile, call, sanctioned)
            if verdict == "escape":
                flagged.append(
                    (
                        call,
                        "wall-clock value used outside a timing sink — "
                        "placement-affecting code must not depend on time "
                        "(keep measurements in profiling accumulators only)",
                    )
                )
            elif verdict == "taint":
                target = _assignment_target(pyfile, call)
                if target is not None:
                    tainted.add(target)
        # Propagate taint through local assignments to a fixpoint.
        changed = True
        while changed:
            changed = False
            for node in _scope_nodes(function):
                if not isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    continue
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                value = node.value
                if value is None or not all(
                    isinstance(target, ast.Name) for target in targets
                ):
                    continue
                if any(
                    isinstance(sub, ast.Name) and sub.id in tainted
                    for sub in ast.walk(value)
                ):
                    for target in targets:
                        if target.id not in tainted:
                            tainted.add(target.id)
                            changed = True
        reported: Set[str] = set()
        for node in _scope_nodes(function):
            if not (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in tainted
                and node.id not in reported
            ):
                continue
            if _consumption_verdict(pyfile, node, sanctioned) == "escape":
                reported.add(node.id)
                flagged.append(
                    (
                        node,
                        f"timing variable {node.id!r} escapes the profiling "
                        "sinks — wall-clock values must not reach "
                        "placement-affecting state",
                    )
                )
        for node, message in flagged:
            yield self.violation(pyfile, node, message)

    @staticmethod
    def _sanctioned_attrs(pyfile: PyFile) -> frozenset:
        """The attribute-store sinks sanctioned for this file (obs only)."""
        return (
            _OBS_SANCTIONED_ATTRS
            if "obs" in pyfile.components
            else frozenset()
        )


def _consumption_verdict(
    pyfile: PyFile, node: ast.AST, sanctioned_attrs: frozenset = frozenset()
) -> str:
    """How a timing expression is consumed: ``sink``/``taint``/``escape``.

    Walks outward from ``node``: arithmetic, comparisons and conditional
    expressions are transparent; landing in a timing-sink call argument or
    a pure control-flow test is fine; landing in an assignment to plain
    names taints them; anything else (return, attribute store, non-sink
    call argument, subscript, ...) escapes — except a store to a
    ``self.<attr>`` in ``sanctioned_attrs``, which is a sink (the span
    start-time stash, see :data:`_OBS_SANCTIONED_ATTRS`).
    """
    child: ast.AST = node
    for ancestor in iter_parents(pyfile, child):
        if isinstance(ancestor, ast.Call):
            in_args = child in ancestor.args or child in [
                keyword.value for keyword in ancestor.keywords
            ]
            if in_args:
                func = ancestor.func
                name = (
                    func.attr
                    if isinstance(func, ast.Attribute)
                    else getattr(func, "id", "")
                )
                return "sink" if name in _TIME_SINKS else "escape"
            child = ancestor
            continue
        if isinstance(
            ancestor, (ast.BinOp, ast.UnaryOp, ast.IfExp, ast.Compare, ast.BoolOp)
        ):
            child = ancestor
            continue
        if isinstance(ancestor, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                ancestor.targets
                if isinstance(ancestor, ast.Assign)
                else [ancestor.target]
            )
            if all(isinstance(target, ast.Name) for target in targets):
                return "taint"
            if sanctioned_attrs and all(
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and target.attr in sanctioned_attrs
                for target in targets
            ):
                return "sink"
            return "escape"
        if isinstance(ancestor, (ast.Expr, ast.If, ast.While, ast.Assert)):
            return "sink"  # bare statement or pure control-flow comparison
        return "escape"
    return "escape"


def _assignment_target(pyfile: PyFile, node: ast.AST) -> Optional[str]:
    for ancestor in iter_parents(pyfile, node):
        if isinstance(ancestor, ast.Assign) and isinstance(
            ancestor.targets[0], ast.Name
        ):
            return ancestor.targets[0].id
        if isinstance(ancestor, (ast.AugAssign, ast.AnnAssign)) and isinstance(
            ancestor.target, ast.Name
        ):
            return ancestor.target.id
    return None
