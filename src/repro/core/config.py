"""Configuration of a GSS instance.

The defaults follow Section VII-C of the paper: 16-bit fingerprints, 2 rooms
per bucket, address sequences of length ``r = 16`` and ``k = 16`` candidate
buckets (the paper uses ``r = k = 8`` for its two small datasets, which the
experiment runners set explicitly).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GSSConfig:
    """All tunables of the augmented GSS.

    Parameters
    ----------
    matrix_width:
        ``m``, the side length of the bucket matrix.  The paper recommends
        ``m ~ sqrt(|E|)`` so the matrix has about one bucket per edge.
    fingerprint_bits:
        Bit width of node fingerprints; ``F = 2 ** fingerprint_bits`` and the
        node hash range is ``M = m * F``.
    rooms:
        ``l``, number of independent rooms per bucket (Section V-B2).
    sequence_length:
        ``r``, number of alternative rows/columns per node under square
        hashing (Section V-A).
    candidate_buckets:
        ``k``, number of mapped buckets actually probed per edge when
        candidate-bucket sampling is enabled (Section V-B1).
    square_hashing:
        When False the sketch degenerates to a single mapped bucket per edge
        (the basic scheme), which is the "NoSquareHash" ablation of Figure 13.
    sampling:
        When False all ``r * r`` mapped buckets are probed in row-first order,
        the "GSS (no sampling)" row of Table I.
    keep_node_index:
        Whether to maintain the reverse hash table ``H(v) -> {original ids}``
        needed to report original node IDs from successor/precursor queries.
    seed:
        Seed of the node hash function, allowing independent sketches.
    backend:
        Matrix-storage backend: ``"python"`` (nested lists, zero
        dependencies — the default), ``"numpy"`` (columnar arrays with the
        vectorized batch-update pipeline), ``"native"`` (the numpy layout
        with batched placement compiled to a C kernel) or ``"auto"`` (the
        fastest the machine supports: native, then numpy, then python).
        Requesting a backend whose prerequisites are missing falls back down
        that chain with a warning.  All backends are observationally
        identical; the choice only affects speed and dependencies.
    scalar_tail_threshold:
        Batch tails with at most this many new edges (or unresolved node
        pairs) run through the scalar helpers instead of the array pipeline
        on the numpy/native backends — fixed per-call NumPy overhead beats
        vectorization on tiny inputs.  ``None`` (the default) uses the
        micro-calibrated built-in default (96; see
        ``scripts/calibrate_scalar_tail.py``).  Placement is identical on
        both sides of the threshold by construction, so this is purely a
        performance knob.
    """

    matrix_width: int
    fingerprint_bits: int = 16
    rooms: int = 2
    sequence_length: int = 16
    candidate_buckets: int = 16
    square_hashing: bool = True
    sampling: bool = True
    keep_node_index: bool = True
    seed: int = 0
    backend: str = "python"
    scalar_tail_threshold: "int | None" = None

    def __post_init__(self) -> None:
        if self.matrix_width <= 0:
            raise ValueError("matrix_width must be positive")
        if not 1 <= self.fingerprint_bits <= 32:
            raise ValueError("fingerprint_bits must be between 1 and 32")
        if self.rooms < 1:
            raise ValueError("rooms must be at least 1")
        if self.sequence_length < 1:
            raise ValueError("sequence_length must be at least 1")
        if self.candidate_buckets < 1:
            raise ValueError("candidate_buckets must be at least 1")
        if self.backend not in ("python", "numpy", "native", "auto"):
            raise ValueError(
                "backend must be one of 'python', 'numpy', 'native', 'auto'"
            )
        if self.scalar_tail_threshold is not None and self.scalar_tail_threshold < 0:
            raise ValueError("scalar_tail_threshold must be non-negative")

    @property
    def fingerprint_range(self) -> int:
        """``F`` — the number of distinct fingerprint values."""
        return 1 << self.fingerprint_bits

    @property
    def hash_range(self) -> int:
        """``M = m * F`` — the value range of the node hash."""
        return self.matrix_width * self.fingerprint_range

    @property
    def effective_sequence_length(self) -> int:
        """``r`` actually used: 1 when square hashing is disabled."""
        return self.sequence_length if self.square_hashing else 1

    @property
    def effective_candidates(self) -> int:
        """``k`` actually probed per edge, capped at ``r * r``."""
        r = self.effective_sequence_length
        if not self.square_hashing:
            return 1
        if not self.sampling:
            return r * r
        return min(self.candidate_buckets, r * r)

    def matrix_memory_bytes(self) -> int:
        """Memory of the bucket matrix under the paper's C layout.

        Each room stores a fingerprint pair (2 * fingerprint_bits), an index
        pair (8 bits total — two 4-bit indices) and a 32-bit weight.  The
        value is used for the memory-matched comparisons against TCM, not as a
        measurement of Python object overhead.
        """
        room_bits = 2 * self.fingerprint_bits + 8 + 32
        total_bits = self.matrix_width * self.matrix_width * self.rooms * room_bits
        return total_bits // 8

    @classmethod
    def for_edge_count(
        cls,
        expected_edges: int,
        fingerprint_bits: int = 16,
        load_factor: float = 1.0,
        **overrides,
    ) -> "GSSConfig":
        """Size a sketch for an expected number of distinct edges.

        ``matrix_width`` is chosen so the matrix holds roughly
        ``expected_edges / load_factor`` rooms, following the paper's guidance
        ``m ~ sqrt(|E|)`` (with the default 2 rooms per bucket the width is
        ``sqrt(|E| / 2)``).
        """
        if expected_edges <= 0:
            raise ValueError("expected_edges must be positive")
        rooms = overrides.get("rooms", 2)
        width = max(4, int((expected_edges / (load_factor * rooms)) ** 0.5) + 1)
        return cls(matrix_width=width, fingerprint_bits=fingerprint_bits, **overrides)
