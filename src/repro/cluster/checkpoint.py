"""Whole-cluster checkpoint/recovery for :class:`ShardedSummary`.

Layout of a checkpoint directory::

    <directory>/
        manifest.json     # cluster topology, routing seed, per-shard files
        shard-0.json      # shard 0's own to_dict snapshot
        shard-1.json
        ...

The manifest carries everything needed to rebuild the cluster (worker count,
routing seed, inner sketch spec, items routed per shard) and names one
snapshot file per shard; each shard file is the shard summary's ordinary
``to_dict`` document, so a shard snapshot can also be restored stand-alone
with :func:`repro.api.from_dict`.

Checkpoints are *consistent*: :meth:`ShardedSummary.shard_snapshots` flushes
the ingestion pipeline first, so the snapshot reflects exactly the items
routed before the checkpoint call.  A cluster restored from a checkpoint is
resumable mid-stream — feeding it the remainder of the stream produces the
same final answers as an uninterrupted run, which the recovery tests (and the
CI cluster smoke leg) verify by killing the worker processes between the
checkpoint and the restore.

Writes are atomic-ish: every file is written to a ``*.tmp`` sibling and
renamed into place, the manifest last, so a crash mid-checkpoint can never
leave a directory that parses as a complete-but-corrupt checkpoint.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Union

from repro.cluster.sharded import ShardedSummary

__all__ = ["CheckpointError", "save_checkpoint", "load_checkpoint", "read_manifest"]

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = "repro-cluster-checkpoint"
MANIFEST_VERSION = 1


class CheckpointError(ValueError):
    """A checkpoint directory is missing, incomplete, or malformed."""


def _write_atomic(path: Path, document: Dict) -> None:
    temporary = path.with_suffix(path.suffix + ".tmp")
    with temporary.open("w", encoding="utf-8") as handle:
        json.dump(document, handle)
    os.replace(temporary, path)


def save_checkpoint(cluster: ShardedSummary, directory: Union[str, Path]) -> Path:
    """Checkpoint ``cluster`` into ``directory`` (created if missing).

    Flushes the ingestion pipeline, snapshots every shard into its own file
    and writes the manifest last.  Returns the manifest path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    snapshots = cluster.shard_snapshots()  # flushes first
    metadata = cluster.snapshot_metadata()
    items_routed = metadata.pop("shard_items_routed")
    shard_entries = []
    for shard, snapshot in enumerate(snapshots):
        file_name = f"shard-{shard}.json"
        _write_atomic(directory / file_name, snapshot)
        shard_entries.append({"file": file_name, "items_routed": items_routed[shard]})
    metadata.pop("format_version")
    metadata.pop("sketch")
    manifest = {
        "format": MANIFEST_FORMAT,
        "format_version": MANIFEST_VERSION,
        **metadata,
        "shards": shard_entries,
    }
    manifest_path = directory / MANIFEST_NAME
    _write_atomic(manifest_path, manifest)
    return manifest_path


def read_manifest(directory: Union[str, Path]) -> Dict:
    """Read and validate the manifest of a checkpoint directory."""
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise CheckpointError(f"no {MANIFEST_NAME} in {directory}")
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise CheckpointError(f"{manifest_path} is not valid JSON: {error}") from None
    if manifest.get("format") != MANIFEST_FORMAT:
        raise CheckpointError(
            f"{manifest_path} has format {manifest.get('format')!r}, "
            f"expected {MANIFEST_FORMAT!r}"
        )
    if manifest.get("format_version") != MANIFEST_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {manifest.get('format_version')!r}"
        )
    if len(manifest.get("shards", ())) != manifest.get("workers"):
        raise CheckpointError(
            f"manifest names {manifest.get('workers')} workers but lists "
            f"{len(manifest.get('shards', ()))} shard files"
        )
    return manifest


def load_checkpoint(
    directory: Union[str, Path], backend: Optional[str] = None
) -> ShardedSummary:
    """Restore a :class:`ShardedSummary` from a checkpoint directory.

    ``backend`` optionally re-targets the restored shards onto a different
    matrix backend.  The restored cluster resumes ingestion exactly where the
    checkpoint was taken.
    """
    directory = Path(directory)
    manifest = read_manifest(directory)
    shards = []
    for entry in manifest["shards"]:
        shard_path = directory / entry["file"]
        if not shard_path.exists():
            raise CheckpointError(f"missing shard snapshot {shard_path}")
        shards.append(json.loads(shard_path.read_text(encoding="utf-8")))
    document = {
        "format_version": MANIFEST_VERSION,
        "sketch": "sharded-gss",
        "workers": manifest["workers"],
        "routing_seed": manifest["routing_seed"],
        "batch_size": manifest.get("batch_size", 1024),
        "update_count": manifest.get("update_count", 0),
        "shard_items_routed": [
            entry.get("items_routed", 0) for entry in manifest["shards"]
        ],
        "inner_spec": manifest["inner_spec"],
        "shards": shards,
    }
    return ShardedSummary.from_dict(document, backend=backend)
