"""Unit and property tests for the LR sequences used by square hashing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hashing.linear_congruence import (
    LinearCongruentialSequence,
    address_sequence,
    candidate_sequence,
    default_lcg_params,
    recover_address,
    unique_candidates,
)


class TestLinearCongruentialSequence:
    def test_deterministic(self):
        lcg = LinearCongruentialSequence()
        assert lcg.generate(5, 8) == lcg.generate(5, 8)

    def test_length(self):
        assert len(LinearCongruentialSequence().generate(3, 12)) == 12

    def test_value_at_matches_generate(self):
        lcg = LinearCongruentialSequence()
        sequence = lcg.generate(9, 10)
        assert all(lcg.value_at(9, i + 1) == sequence[i] for i in range(10))

    def test_zero_length(self):
        assert LinearCongruentialSequence().generate(1, 0) == []

    def test_rejects_negative_length(self):
        with pytest.raises(ValueError):
            LinearCongruentialSequence().generate(1, -1)

    def test_rejects_bad_modulus(self):
        with pytest.raises(ValueError):
            LinearCongruentialSequence(modulus=1)

    def test_value_at_requires_positive_index(self):
        with pytest.raises(ValueError):
            LinearCongruentialSequence().value_at(1, 0)

    def test_default_params_table(self):
        assert default_lcg_params(0) != default_lcg_params(1)
        assert default_lcg_params(0) == default_lcg_params(4)  # wraps around


class TestAddressSequence:
    def test_values_in_range(self):
        addresses = address_sequence(7, 123, 16, 50)
        assert len(addresses) == 16
        assert all(0 <= a < 50 for a in addresses)

    def test_different_fingerprints_differ(self):
        assert address_sequence(0, 10, 8, 1000) != address_sequence(0, 11, 8, 1000)

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            address_sequence(0, 1, 4, 0)

    @given(
        base=st.integers(min_value=0, max_value=999),
        fingerprint=st.integers(min_value=0, max_value=65535),
        index=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=200, deadline=None)
    def test_recover_address_inverts(self, base, fingerprint, index):
        """Reversibility (Section V-A): h(v) is recoverable from h_i(v), f(v), i."""
        width = 1000
        addresses = address_sequence(base, fingerprint, 16, width)
        observed = addresses[index - 1]
        assert recover_address(observed, fingerprint, index, width) == base


class TestCandidateSequence:
    def test_indices_in_range(self):
        pairs = candidate_sequence(12, 200, 16, 8)
        assert len(pairs) == 16
        assert all(0 <= i < 8 and 0 <= j < 8 for i, j in pairs)

    def test_deterministic_for_same_edge(self):
        assert candidate_sequence(3, 4, 8, 8) == candidate_sequence(3, 4, 8, 8)

    def test_depends_on_fingerprint_sum_only(self):
        # seed is f(s) + f(d); (3, 4) and (4, 3) give the same sample.
        assert candidate_sequence(3, 4, 8, 8) == candidate_sequence(4, 3, 8, 8)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            candidate_sequence(0, 0, 4, 0)
        with pytest.raises(ValueError):
            candidate_sequence(0, 0, -1, 4)

    def test_unique_candidates_preserves_order(self):
        pairs = [(0, 0), (1, 1), (0, 0), (2, 2), (1, 1)]
        assert unique_candidates(pairs) == [(0, 0), (1, 1), (2, 2)]
