"""Theoretical accuracy curves of Figure 3.

Figure 3 plots, purely from the analysis of Section VI-B, how the accuracy of
the three query primitives depends on the ratio ``M / |V|`` between the hash
range and the number of nodes, for a range of node degrees.  The figure is the
paper's argument for why ``M`` must be much larger than ``|V|`` — the regime
TCM cannot reach (``M = m <= sqrt(|E|)``) but GSS can (``M = m * F``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.collision import (
    edge_query_correct_rate,
    successor_query_correct_rate,
)


@dataclass(frozen=True)
class Figure3Point:
    """One point of a Figure 3 surface."""

    ratio: float        # M / |V|
    degree: float       # d1 + d2 for edge queries, d_out / d_in otherwise
    correct_rate: float


def figure3_series(
    node_count: int = 100_000,
    average_degree: float = 5.0,
    ratios: Sequence[float] = (0.25, 0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512),
    degrees: Sequence[float] = (1, 2, 4, 8, 16, 32, 64),
) -> Dict[str, List[Figure3Point]]:
    """Compute the three panels of Figure 3.

    Returns a dict with keys ``edge_query``, ``successor_query`` and
    ``precursor_query``, each a list of :class:`Figure3Point`.  The successor
    and precursor panels are symmetric (the formula only depends on the
    relevant degree), matching the paper.
    """
    if node_count <= 0:
        raise ValueError("node_count must be positive")
    edge_count = node_count * average_degree

    edge_points: List[Figure3Point] = []
    successor_points: List[Figure3Point] = []
    for ratio in ratios:
        hash_range = ratio * node_count
        for degree in degrees:
            edge_points.append(
                Figure3Point(
                    ratio=ratio,
                    degree=degree,
                    correct_rate=edge_query_correct_rate(hash_range, edge_count, degree),
                )
            )
            successor_points.append(
                Figure3Point(
                    ratio=ratio,
                    degree=degree,
                    correct_rate=successor_query_correct_rate(
                        hash_range, node_count, edge_count, degree
                    ),
                )
            )
    return {
        "edge_query": edge_points,
        "successor_query": successor_points,
        "precursor_query": list(successor_points),
    }


def minimum_ratio_for_accuracy(
    target: float = 0.8,
    node_count: int = 100_000,
    average_degree: float = 5.0,
    degree: float = 8.0,
    ratios: Sequence[float] = tuple(2 ** i for i in range(-2, 12)),
) -> float:
    """Smallest ``M / |V|`` in ``ratios`` whose successor accuracy reaches ``target``.

    The paper reads off "only when M/|V| > 200 the accuracy ratio is larger
    than 80%" from Figure 3; this helper reproduces that style of statement.
    """
    edge_count = node_count * average_degree
    for ratio in sorted(ratios):
        accuracy = successor_query_correct_rate(
            ratio * node_count, node_count, edge_count, degree
        )
        if accuracy >= target:
            return ratio
    return float("inf")
