"""The shard worker process of :mod:`repro.cluster`.

Each worker owns one registry-built summary structure (any sketch the
:mod:`repro.api` factory can build — the default cluster uses GSS shards) and
serves a tiny message protocol over a :class:`multiprocessing.Pipe`:

============== ============================== ==================================
request        payload                        reply payload
============== ============================== ==================================
``batch``      list of update triples         number of items applied
``hbatch``     a pickled ``HashedBatch``      number of items applied
``shmbatch``   (offset, nbytes) into the      number of items applied
               shared-memory ring
``call``       (method name, args tuple)      the method's return value
``snapshot``   —                              the summary's ``to_dict`` document
``obs_enable`` —                              ``True`` (telemetry now recording)
``obs``        —                              the worker registry's snapshot
                                              document, or ``None`` when
                                              telemetry is disabled
``stop``       —                              ``"stopped"`` (worker exits)
============== ============================== ==================================

At startup the worker either builds a fresh summary from ``spec`` or — on the
checkpoint-restore path — restores one directly from a snapshot document,
attaches the client's shared-memory ring when one is named, and answers the
handshake with ``("ready", info)`` where ``info`` reports the summary's
:meth:`hash_spec` (or ``None`` when the summary has no hashed ingest path) —
that is how the client discovers whether it may ship precomputed hash
columns.  Every request gets exactly one reply, ``("ok", payload)`` or
``("err", traceback text)``, in request order — the pipe is FIFO, which is
what lets the parent pipeline batch requests without waiting and still know
that a ``call`` sent afterwards observes every prior batch.  It is also what
makes ``shmbatch`` safe: the client frees a ring segment only after consuming
its acknowledgement, and the worker replies only after fully ingesting the
segment, so the zero-copy column views never outlive their bytes.

The module is import-light on purpose: :mod:`repro.api` is imported inside
:func:`worker_main` (i.e. in the child process) so that ``repro.cluster`` can
be imported by the registry without creating an import cycle.
"""

from __future__ import annotations

import traceback
from typing import Any, Dict, Optional


def _ingest(summary, hashed_ingest, batch) -> int:
    """Feed one HashedBatch through the summary's best available path."""
    if hashed_ingest is not None:
        return hashed_ingest(batch)
    return summary.update_many(batch.items())


def _enable_worker_obs(worker_id: int):
    """Install a *fresh* per-process registry and return its instruments.

    Fresh matters: under the ``fork`` start method the child inherits the
    parent's registry object, and recording into it would double-count
    everything once the parent merges worker snapshots back in.
    """
    from repro.obs import trace
    from repro.obs.registry import MetricsRegistry

    registry = trace.enable(MetricsRegistry())
    items = registry.counter(
        "repro_worker_items_total",
        "Stream items applied by each shard worker process.",
        shard=worker_id,
    )
    return registry, items


def worker_main(
    conn,
    spec,
    worker_id: int,
    snapshot: Optional[Dict] = None,
    backend: Optional[str] = None,
    shm_name: Optional[str] = None,
    obs_enabled: bool = False,
) -> None:
    """Run one shard worker until ``stop`` or a closed pipe.

    ``conn`` is the worker end of a duplex pipe, ``spec`` the
    :class:`~repro.api.registry.SketchSpec` of this shard's summary and
    ``worker_id`` the shard index (used only for error messages).  When
    ``snapshot`` is given the summary is restored from it instead of built
    from the spec (``backend`` optionally re-targets the restored matrix
    backend) — the cluster's checkpoint-recovery path.  ``shm_name`` names
    the client's shared-memory ring for the ``shmbatch`` data plane; the
    worker attaches without adopting ownership (the client unlinks it).
    With ``obs_enabled`` (or on a later ``obs_enable`` request) the worker
    records spans/counters into a process-local registry whose snapshot the
    parent collects over this same pipe (the ``obs`` request) and merges
    into the cluster-wide telemetry view.
    """
    from repro.api.registry import build, from_dict
    from repro.obs import trace as obs_trace

    obs_items = None
    if obs_enabled:
        _, obs_items = _enable_worker_obs(worker_id)
    shm = None
    try:
        if snapshot is not None:
            summary = from_dict(snapshot, backend=backend)
        else:
            summary = build(spec)
        hash_spec = None
        hashed_ingest = getattr(summary, "update_many_hashed", None)
        spec_of = getattr(summary, "hash_spec", None)
        if callable(hashed_ingest) and callable(spec_of):
            hash_spec = spec_of()
        else:
            hashed_ingest = None
        if shm_name is not None:
            from repro.cluster.transport import attach_shared_memory

            shm = attach_shared_memory(shm_name)
        conn.send(("ok", ("ready", {"hash_spec": hash_spec})))
    except Exception:
        _send_error(conn, worker_id, traceback.format_exc())
        conn.close()
        return
    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):
            # The parent vanished (hard kill or interpreter exit); there is
            # nobody left to answer, so the worker just goes away too.
            break
        operation = request[0]
        try:
            if operation == "stop":
                conn.send(("ok", "stopped"))
                break
            elif operation == "batch":
                with obs_trace.span("worker.ingest", shard=worker_id):
                    applied = summary.update_many(request[1])
                if obs_items is not None:
                    obs_items.inc(applied)
                conn.send(("ok", applied))
            elif operation == "hbatch":
                with obs_trace.span("worker.ingest", shard=worker_id):
                    applied = _ingest(summary, hashed_ingest, request[1])
                if obs_items is not None:
                    obs_items.inc(applied)
                conn.send(("ok", applied))
            elif operation == "shmbatch":
                from repro.cluster.transport import decode_hashed_batch

                with obs_trace.span("worker.ingest", shard=worker_id):
                    batch = decode_hashed_batch(
                        shm.buf, request[1], request[2], hash_spec
                    )
                    applied = _ingest(summary, hashed_ingest, batch)
                    # Drop the zero-copy column views before acknowledging:
                    # the client may reuse the segment as soon as it sees
                    # the reply.
                    del batch
                if obs_items is not None:
                    obs_items.inc(applied)
                conn.send(("ok", applied))
            elif operation == "call":
                method, args = request[1], request[2]
                with obs_trace.span("worker.query", shard=worker_id):
                    value = getattr(summary, method)(*args)
                conn.send(("ok", value))
            elif operation == "snapshot":
                with obs_trace.span("worker.snapshot", shard=worker_id):
                    document = summary.to_dict()
                conn.send(("ok", document))
            elif operation == "obs_enable":
                if obs_items is None:
                    _, obs_items = _enable_worker_obs(worker_id)
                conn.send(("ok", True))
            elif operation == "obs":
                registry = obs_trace.active()
                conn.send(
                    ("ok", registry.snapshot() if registry is not None else None)
                )
            else:
                _send_error(conn, worker_id, f"unknown request {operation!r}")
        except Exception:
            _send_error(conn, worker_id, traceback.format_exc())
    if shm is not None:
        try:
            shm.close()
        except BufferError:  # pragma: no cover - lingering column view
            pass
    conn.close()


def _send_error(conn, worker_id: int, detail: Any) -> None:
    try:
        conn.send(("err", f"shard worker {worker_id}: {detail}"))
    except (OSError, ValueError):  # pragma: no cover - parent already gone
        pass
