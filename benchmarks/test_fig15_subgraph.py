"""Benchmark: regenerate Figure 15 (subgraph matching, GSS vs exact matcher)."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import run_subgraph_experiment
from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="module")
def subgraph_config() -> ExperimentConfig:
    """Figure 15 uses web-NotreDame windows of growing size and patterns of
    6-15 edges; the analog uses proportional window sizes."""
    return ExperimentConfig(
        datasets=("web-NotreDame",),
        dataset_scale=0.4,
        fingerprint_bits=(12, 16),
        sequence_length=8,
        candidate_buckets=8,
        extras={
            "subgraph_window_sizes": (1000, 2000, 3000, 4000, 5000),
            "subgraph_pattern_sizes": (6, 9, 12, 15),
            "subgraph_patterns_per_size": 5,
        },
    )


@pytest.mark.paper_artifact("fig15")
def test_fig15_subgraph_matching(benchmark, subgraph_config):
    result = run_once(benchmark, run_subgraph_experiment, subgraph_config)
    print()
    print(result.to_text())

    exact_rows = [row for row in result.rows if "exact" in row["structure"]]
    gss_rows = [row for row in result.rows if row["structure"] == "GSS"]
    assert exact_rows and gss_rows

    # The exact matcher is the reference: correct rate 1 by construction.
    assert all(row["correct_rate"] == 1.0 for row in exact_rows)
    # Paper shape: GSS achieves nearly 100% correct matches at 1/10 memory.
    assert min(row["correct_rate"] for row in gss_rows) >= 0.9
    assert sum(row["correct_rate"] for row in gss_rows) / len(gss_rows) >= 0.95
