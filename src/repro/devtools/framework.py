"""The checker framework: file model, registry, suppressions, reports.

Design
------

* A :class:`Project` is the parsed view of everything under the scanned
  paths: every ``.py`` file as a :class:`PyFile` (source + AST + parent
  map), every other tracked file (``.c``) by path.  Checkers never touch
  the filesystem themselves, so the whole suite runs off one read pass
  and fixture tests can lint synthetic trees.
* A :class:`Checker` owns one *rule* (``abi-check``, ``hash-once``, ...)
  and declares the path components it applies to (``scope``); the driver
  calls :meth:`Checker.check_project` once per run.  Per-file checkers
  override :meth:`Checker.check_file` and inherit the scope iteration.
* Suppressions are inline comments::

      risky_line()  # repro: allow(hash-once): one-shot setup partition

  A suppression silences its rule on its own physical line; written on a
  comment-only line it anchors to the next code line, so justifications
  too long for an inline comment go on the line(s) above.  It must carry
  a justification after the colon — a bare ``allow(rule)`` is itself
  reported (rule ``suppression``), so every exception in the tree is
  documented.  ``.c`` files use the same marker inside a comment.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Checker",
    "LintReport",
    "Project",
    "PyFile",
    "Violation",
    "iter_parents",
]

#: ``# repro: allow(<rule>, <rule>): why this is fine`` — the justification
#: group is optional in the regex so bare suppressions can be *reported*
#: instead of silently accepted.
_ALLOW_RE = re.compile(
    r"#?\s*repro:\s*allow\(\s*(?P<rules>[A-Za-z0-9_,\s-]+?)\s*\)"
    r"(?::\s*(?P<why>\S.*?))?\s*(?:\*/)?\s*$"
)


@dataclass(frozen=True)
class Violation:
    """One finding: a rule, a location, and what drifted."""

    rule: str
    path: str  # project-relative posix path
    line: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_dict(self) -> Dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


@dataclass(frozen=True)
class Suppression:
    """An inline ``repro: allow(...)`` marker found on one source line."""

    path: str
    line: int
    rules: Tuple[str, ...]
    justification: Optional[str]


class PyFile:
    """One parsed Python source file plus its AST parent map."""

    def __init__(self, path: Path, rel: str, source: str) -> None:
        self.path = path
        self.rel = rel
        self.source = source
        self.lines = source.splitlines()
        self.tree: Optional[ast.AST] = None
        self.parse_error: Optional[SyntaxError] = None
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None
        try:
            self.tree = ast.parse(source, filename=str(path))
        except SyntaxError as error:
            self.parse_error = error

    @property
    def components(self) -> Tuple[str, ...]:
        """Path components, the unit scope matching works on."""
        return tuple(Path(self.rel).parts)

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The AST parent of ``node`` (built lazily, cached per file)."""
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            assert self.tree is not None
            for outer in ast.walk(self.tree):
                for child in ast.iter_child_nodes(outer):
                    parents[child] = outer
            self._parents = parents
        return self._parents.get(node)

    def walk(self) -> Iterator[ast.AST]:
        if self.tree is None:
            return iter(())
        return ast.walk(self.tree)


def iter_parents(pyfile: PyFile, node: ast.AST) -> Iterator[ast.AST]:
    """Yield ``node``'s ancestors, innermost first."""
    current = pyfile.parent(node)
    while current is not None:
        yield current
        current = pyfile.parent(current)


class Project:
    """Everything the linter read: parsed python files + raw ``.c`` files."""

    def __init__(self, root: Path, py_files: List[PyFile], c_files: List[Tuple[Path, str]]):
        self.root = root
        self.py_files = py_files
        #: ``(absolute path, project-relative posix path)`` pairs.
        self.c_files = c_files

    @classmethod
    def load(cls, paths: Sequence[Path]) -> "Project":
        """Read every ``.py``/``.c`` file under ``paths`` (files or dirs)."""
        roots = [Path(p).resolve() for p in paths]
        anchor = _common_anchor(roots)
        py_files: List[PyFile] = []
        c_files: List[Tuple[Path, str]] = []
        seen: Set[Path] = set()
        for root in roots:
            candidates = [root] if root.is_file() else sorted(root.rglob("*"))
            for candidate in candidates:
                if candidate in seen or not candidate.is_file():
                    continue
                seen.add(candidate)
                rel = _relative(candidate, anchor)
                if candidate.suffix == ".py":
                    source = candidate.read_text(encoding="utf-8")
                    py_files.append(PyFile(candidate, rel, source))
                elif candidate.suffix == ".c":
                    c_files.append((candidate, rel))
        return cls(anchor, py_files, c_files)

    def scoped(self, scope: Optional[Tuple[str, ...]]) -> Iterator[PyFile]:
        """Python files whose path contains any scope component.

        ``scope`` entries are either directory components (``"serve"``
        matches any file under a ``serve/`` directory at any depth) or
        file names (``"cli.py"``).  ``None`` means every file.
        """
        for pyfile in self.py_files:
            if scope is None or _in_scope(pyfile.components, scope):
                yield pyfile

    def suppressions(self) -> Iterator[Suppression]:
        """Every ``repro: allow`` marker in the tree (python and C)."""
        for pyfile in self.py_files:
            yield from _scan_suppressions(pyfile.rel, pyfile.lines)
        for path, rel in self.c_files:
            yield from _scan_suppressions(
                rel, path.read_text(encoding="utf-8").splitlines()
            )


def _in_scope(components: Tuple[str, ...], scope: Tuple[str, ...]) -> bool:
    return any(entry in components for entry in scope)


def _common_anchor(roots: List[Path]) -> Path:
    if not roots:
        return Path.cwd()
    anchor = roots[0] if roots[0].is_dir() else roots[0].parent
    for root in roots[1:]:
        base = root if root.is_dir() else root.parent
        while not str(base).startswith(str(anchor)) and anchor != anchor.parent:
            anchor = anchor.parent
    return anchor


def _relative(path: Path, anchor: Path) -> str:
    try:
        return path.relative_to(anchor).as_posix()
    except ValueError:
        return path.as_posix()


#: Line prefixes that mark a comment-only line (python and C comments).
_COMMENT_PREFIXES = ("#", "//", "/*", "*")


def _scan_suppressions(rel: str, lines: List[str]) -> Iterator[Suppression]:
    for number, text in enumerate(lines, start=1):
        match = _ALLOW_RE.search(text)
        if match is None:
            continue
        rules = tuple(
            rule.strip() for rule in match.group("rules").split(",") if rule.strip()
        )
        anchor = number
        if text.lstrip().startswith(_COMMENT_PREFIXES):
            # A standalone comment suppresses the next code line, so long
            # justifications can live above the code they excuse.
            for forward in range(number, len(lines)):
                candidate = lines[forward].strip()
                if candidate and not candidate.startswith(_COMMENT_PREFIXES):
                    anchor = forward + 1
                    break
        yield Suppression(rel, anchor, rules, match.group("why"))


class Checker:
    """Base class: one rule, one scope, one pass over the project."""

    #: Rule identifier, used in reports and ``allow(...)`` markers.
    rule: str = ""
    #: One-line description for ``--list-rules``.
    description: str = ""
    #: Path components/filenames this rule applies to; ``None`` = all files.
    scope: Optional[Tuple[str, ...]] = None

    def check_project(self, project: Project) -> Iterator[Violation]:
        for pyfile in project.scoped(self.scope):
            if pyfile.tree is None:
                continue  # reported once by the driver, not per rule
            yield from self.check_file(pyfile)

    def check_file(self, pyfile: PyFile) -> Iterator[Violation]:
        return iter(())

    def violation(self, pyfile: PyFile, node: ast.AST, message: str) -> Violation:
        return Violation(
            rule=self.rule,
            path=pyfile.rel,
            line=getattr(node, "lineno", 0),
            message=message,
        )


@dataclass
class LintReport:
    """The outcome of one lint run, after suppression filtering."""

    violations: List[Violation] = field(default_factory=list)
    suppressed: List[Violation] = field(default_factory=list)
    checked_files: int = 0
    rules: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict:
        return {
            "ok": self.ok,
            "checked_files": self.checked_files,
            "rules": self.rules,
            "violations": [violation.to_dict() for violation in self.violations],
            "suppressed": [violation.to_dict() for violation in self.suppressed],
        }


def run_checkers(
    project: Project,
    checkers: Sequence[Checker],
    known_rules: Optional[Iterable[str]] = None,
) -> LintReport:
    """Run every checker, then apply (and police) inline suppressions.

    ``known_rules`` is the universe of valid rule names for ``allow()``
    validation; it defaults to the rules being run, but a ``--rules``
    subset run should pass the full registry so suppressions of
    unselected rules are not misreported as unknown.
    """
    report = LintReport(
        checked_files=len(project.py_files),
        rules=[checker.rule for checker in checkers],
    )
    raw: List[Violation] = []
    for pyfile in project.py_files:
        if pyfile.parse_error is not None:
            raw.append(
                Violation(
                    rule="parse-error",
                    path=pyfile.rel,
                    line=pyfile.parse_error.lineno or 0,
                    message=f"could not parse: {pyfile.parse_error.msg}",
                )
            )
    for checker in checkers:
        raw.extend(checker.check_project(project))

    known = set(known_rules if known_rules is not None else report.rules)
    known |= {"parse-error", "suppression"}
    allowed: Dict[Tuple[str, int], Set[str]] = {}
    for suppression in project.suppressions():
        if suppression.justification is None:
            raw.append(
                Violation(
                    rule="suppression",
                    path=suppression.path,
                    line=suppression.line,
                    message=(
                        "suppression without justification — write "
                        "`# repro: allow("
                        + ", ".join(suppression.rules)
                        + "): <why this is safe>`"
                    ),
                )
            )
            continue
        unknown = [rule for rule in suppression.rules if rule not in known]
        if unknown:
            raw.append(
                Violation(
                    rule="suppression",
                    path=suppression.path,
                    line=suppression.line,
                    message=f"allow() names unknown rule(s): {', '.join(unknown)}",
                )
            )
        allowed.setdefault((suppression.path, suppression.line), set()).update(
            suppression.rules
        )

    for violation in sorted(raw, key=lambda v: (v.path, v.line, v.rule)):
        if violation.rule in allowed.get((violation.path, violation.line), ()):
            report.suppressed.append(violation)
        else:
            report.violations.append(violation)
    return report
