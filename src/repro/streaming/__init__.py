"""Graph-stream model: edges, streams, windows and stream IO.

A graph stream (Definition 1 in the paper) is an unbounded sequence of items
``(s, d; t; w)``: a directed edge from ``s`` to ``d`` with timestamp ``t`` and
weight ``w``.  The items collectively form a *streaming graph* whose edge
weights are the running sum of the item weights; negative weights model
deletions.
"""

from repro.streaming.batch import HashedBatch, HashSpec
from repro.streaming.edge import StreamEdge
from repro.streaming.stream import GraphStream, StreamStatistics
from repro.streaming.window import SlidingWindow, tumbling_windows
from repro.streaming.io import read_edge_file, write_edge_file
from repro.streaming.transforms import (
    deduplicate,
    filter_by_nodes,
    filter_by_weight,
    filter_edges,
    map_nodes,
    map_weights,
    merge_streams,
    reverse_edges,
    sample_stream,
    split_by,
    split_by_time,
)

__all__ = [
    "HashSpec",
    "HashedBatch",
    "StreamEdge",
    "GraphStream",
    "StreamStatistics",
    "SlidingWindow",
    "tumbling_windows",
    "read_edge_file",
    "write_edge_file",
    "filter_edges",
    "filter_by_weight",
    "filter_by_nodes",
    "sample_stream",
    "map_nodes",
    "map_weights",
    "reverse_edges",
    "merge_streams",
    "split_by",
    "split_by_time",
    "deduplicate",
]
