"""Classic random-graph stream generators.

The synthetic analogs in :mod:`repro.datasets.synthetic` imitate the paper's
five evaluation datasets.  This module adds the standard generator families
used throughout the graph-streaming literature, so ablation studies can vary
the *structure* of the workload independently of its size:

* :func:`erdos_renyi_stream` — uniform random edges, the no-skew baseline;
* :func:`barabasi_albert_stream` — preferential attachment, the classic
  heavy-tailed model (degree skew is what motivates square hashing);
* :func:`rmat_stream` — recursive-matrix (Kronecker-style) generator used by
  Graph500 and most graph-system papers; produces community structure and
  skew on both endpoints;
* :func:`bipartite_stream` — bipartite interactions (users x items), common in
  recommendation and fraud-detection streams;
* :func:`complete_graph_stream` — tiny exhaustive graphs for exact tests.

Every generator returns a :class:`~repro.streaming.stream.GraphStream` with
Zipfian weights and arrival-order timestamps, so it can be fed to GSS and to
every baseline exactly like the dataset analogs.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.datasets.zipf import ZipfSampler
from repro.streaming.edge import StreamEdge
from repro.streaming.stream import GraphStream


def _stamped(edges: List[Tuple[str, str, float]], name: str) -> GraphStream:
    """Wrap (source, destination, weight) triples with arrival timestamps."""
    items = [
        StreamEdge(source=source, destination=destination, weight=weight, timestamp=float(position))
        for position, (source, destination, weight) in enumerate(edges)
    ]
    return GraphStream(items, name=name)


def erdos_renyi_stream(
    node_count: int,
    edge_count: int,
    name: str = "erdos-renyi",
    seed: int = 41,
    allow_duplicates: bool = False,
) -> GraphStream:
    """Uniformly random directed edges between ``node_count`` nodes.

    With ``allow_duplicates=False`` the stream contains ``edge_count``
    distinct edges (no repeated pairs), which makes it the natural workload
    for buffer-occupancy studies: every item lands in a new bucket.
    """
    if node_count < 2:
        raise ValueError("node_count must be at least 2")
    if edge_count < 0:
        raise ValueError("edge_count must be non-negative")
    rng = random.Random(seed)
    weights = ZipfSampler(1.5, 40, random.Random(seed + 1))
    edges: List[Tuple[str, str, float]] = []
    seen: set = set()
    attempts = 0
    max_attempts = edge_count * 100 + 100
    while len(edges) < edge_count and attempts < max_attempts:
        attempts += 1
        source = rng.randrange(node_count)
        destination = rng.randrange(node_count)
        if source == destination:
            continue
        key = (source, destination)
        if not allow_duplicates and key in seen:
            continue
        seen.add(key)
        edges.append((f"n{source}", f"n{destination}", float(weights.sample())))
    return _stamped(edges, name)


def barabasi_albert_stream(
    node_count: int,
    edges_per_node: int = 3,
    name: str = "barabasi-albert",
    seed: int = 43,
) -> GraphStream:
    """Preferential-attachment stream: each new node links to popular nodes.

    Node ``i`` (for ``i >= edges_per_node``) emits ``edges_per_node`` edges
    whose targets are drawn proportionally to current in-degree, producing the
    power-law in-degree distribution typical of citation and web graphs.
    """
    if node_count < 2:
        raise ValueError("node_count must be at least 2")
    if edges_per_node < 1:
        raise ValueError("edges_per_node must be at least 1")
    rng = random.Random(seed)
    weights = ZipfSampler(1.5, 40, random.Random(seed + 1))
    target_pool: List[int] = list(range(min(edges_per_node, node_count)))
    edges: List[Tuple[str, str, float]] = []
    for node in range(1, node_count):
        seen_targets: set = set()
        for _ in range(min(edges_per_node, node)):
            if target_pool and rng.random() < 0.85:
                target = target_pool[rng.randrange(len(target_pool))]
            else:
                target = rng.randrange(node)
            if target == node or target in seen_targets:
                continue
            seen_targets.add(target)
            target_pool.append(target)
            edges.append((f"n{node}", f"n{target}", float(weights.sample())))
    return _stamped(edges, name)


def rmat_stream(
    scale: int,
    edge_count: int,
    name: str = "rmat",
    seed: int = 47,
    probabilities: Tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05),
) -> GraphStream:
    """Recursive-matrix (R-MAT) generator over ``2 ** scale`` nodes.

    Each edge picks its (row, column) by recursively descending into one of
    the four quadrants of the adjacency matrix with the given probabilities —
    the Graph500 defaults produce skew and community structure on both
    endpoints.  Duplicate edges are kept, as in real R-MAT streams.
    """
    if scale < 1:
        raise ValueError("scale must be at least 1")
    if edge_count < 0:
        raise ValueError("edge_count must be non-negative")
    if abs(sum(probabilities) - 1.0) > 1e-6:
        raise ValueError("quadrant probabilities must sum to 1")
    rng = random.Random(seed)
    weights = ZipfSampler(1.5, 40, random.Random(seed + 1))
    a, b, c, _ = probabilities
    edges: List[Tuple[str, str, float]] = []
    for _ in range(edge_count):
        row = 0
        column = 0
        for level in range(scale):
            draw = rng.random()
            half = 1 << (scale - level - 1)
            if draw < a:
                pass
            elif draw < a + b:
                column += half
            elif draw < a + b + c:
                row += half
            else:
                row += half
                column += half
        if row == column:
            continue
        edges.append((f"n{row}", f"n{column}", float(weights.sample())))
    return _stamped(edges, name)


def bipartite_stream(
    left_count: int,
    right_count: int,
    edge_count: int,
    name: str = "bipartite",
    seed: int = 53,
    skew: float = 1.2,
) -> GraphStream:
    """Bipartite interaction stream: left nodes (users) point at right nodes (items).

    Both sides have Zipfian popularity, mimicking user-activity and
    item-popularity skew in recommendation / transaction streams.
    """
    if left_count < 1 or right_count < 1:
        raise ValueError("both sides need at least one node")
    if edge_count < 0:
        raise ValueError("edge_count must be non-negative")
    left_sampler = ZipfSampler(skew, left_count, random.Random(seed))
    right_sampler = ZipfSampler(skew, right_count, random.Random(seed + 1))
    weights = ZipfSampler(1.5, 20, random.Random(seed + 2))
    edges: List[Tuple[str, str, float]] = []
    for _ in range(edge_count):
        user = left_sampler.sample() - 1
        item = right_sampler.sample() - 1
        edges.append((f"u{user}", f"i{item}", float(weights.sample())))
    return _stamped(edges, name)


def complete_graph_stream(
    node_count: int,
    name: str = "complete",
    weight: float = 1.0,
    include_self_loops: bool = False,
) -> GraphStream:
    """Every ordered pair of distinct nodes exactly once (tiny exact graphs).

    Useful for exhaustive correctness tests: the ground truth is trivial and
    the stream exercises every bucket-collision path when ``node_count`` is
    larger than the matrix width.
    """
    if node_count < 1:
        raise ValueError("node_count must be at least 1")
    edges: List[Tuple[str, str, float]] = []
    for source in range(node_count):
        for destination in range(node_count):
            if source == destination and not include_self_loops:
                continue
            edges.append((f"n{source}", f"n{destination}", weight))
    return _stamped(edges, name)


def star_stream(
    leaf_count: int,
    name: str = "star",
    reversed_edges: bool = False,
    seed: Optional[int] = None,
) -> GraphStream:
    """A hub connected to ``leaf_count`` leaves — the extreme-skew workload.

    This is the worst case for the basic GSS (every edge shares the hub's row
    or column); the square-hashing ablation uses it to show how spreading a
    high-degree node over ``r`` rows removes the congestion.
    """
    if leaf_count < 1:
        raise ValueError("leaf_count must be at least 1")
    rng = random.Random(seed if seed is not None else 59)
    weights = ZipfSampler(1.5, 20, rng)
    edges: List[Tuple[str, str, float]] = []
    for leaf in range(leaf_count):
        if reversed_edges:
            edges.append((f"leaf{leaf}", "hub", float(weights.sample())))
        else:
            edges.append(("hub", f"leaf{leaf}", float(weights.sample())))
    return _stamped(edges, name)
