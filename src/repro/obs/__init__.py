"""Unified telemetry: metrics registry, tracing spans, Prometheus exposition.

The observability layer the ROADMAP's serving north-star needs: one
instrument vocabulary shared by the ingest pipeline, the multi-process
cluster and the network front end, at near-zero cost when disabled.

* :mod:`repro.obs.registry` — ``Counter``/``Gauge``/``Histogram`` families
  with labels, fixed log-scale latency buckets and **mergeable** snapshots
  (worker ⊕ worker ⊕ parent composes associatively);
* :mod:`repro.obs.trace` — the ``with span("ingest.placement", shard=i)``
  API plus the process-global enable/disable switch (one ``is None`` check
  on the hot path, same discipline as ``IngestProfile``);
* :mod:`repro.obs.export` — Prometheus text rendering (served by
  ``GET /metrics`` under ``Accept: text/plain``), a minimal parser for CI
  assertions, and the ``python -m repro obs`` pretty-printer.

Quick start::

    from repro import obs

    registry = obs.enable()                  # or obs.scoped() in tests
    with obs.span("ingest.placement", shard=2):
        ...
    print(obs.render_prometheus(registry.snapshot()))
"""

from repro.obs.export import (
    describe_snapshot,
    parse_prometheus,
    render_prometheus,
    validate_prometheus,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    histogram_quantile,
    merge_snapshots,
    subtract_snapshots,
)
from repro.obs.trace import (
    SPAN_FAMILY,
    Span,
    active,
    disable,
    enable,
    scoped,
    span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "SPAN_FAMILY",
    "Span",
    "active",
    "describe_snapshot",
    "disable",
    "enable",
    "histogram_quantile",
    "merge_snapshots",
    "parse_prometheus",
    "render_prometheus",
    "scoped",
    "span",
    "subtract_snapshots",
    "validate_prometheus",
]
