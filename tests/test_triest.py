"""Unit tests for the TRIEST streaming triangle counters."""

import random

import pytest

from repro.baselines.triest import TriestBase, TriestImproved
from repro.exact.adjacency_list import AdjacencyListGraph
from repro.queries.primitives import consume_stream
from repro.queries.triangle import count_triangles
from repro.streaming.edge import StreamEdge
from repro.streaming.stream import GraphStream


def triangle_stream(triangle_count: int) -> GraphStream:
    """A stream made of ``triangle_count`` disjoint triangles."""
    edges = []
    for index in range(triangle_count):
        a, b, c = f"a{index}", f"b{index}", f"c{index}"
        edges.extend(
            [StreamEdge(a, b), StreamEdge(b, c), StreamEdge(c, a)]
        )
    return GraphStream(edges)


class TestTriestBase:
    def test_rejects_tiny_reservoir(self):
        with pytest.raises(ValueError):
            TriestBase(reservoir_size=3)

    def test_exact_when_reservoir_holds_everything(self):
        stream = triangle_stream(20)
        triest = TriestBase(reservoir_size=1000, seed=1)
        triest.ingest(stream)
        assert triest.triangle_estimate() == 20

    def test_duplicate_and_self_loop_edges_ignored(self):
        triest = TriestBase(reservoir_size=100, seed=1)
        triest.add_edge("a", "b")
        triest.add_edge("a", "b")
        triest.add_edge("b", "a")  # same undirected edge
        triest.add_edge("a", "a")  # self loop
        assert triest._stream_length == 1

    def test_estimate_roughly_correct_with_sampling(self):
        stream = triangle_stream(150)  # 450 edges, 150 triangles
        shuffled = list(stream)
        random.Random(7).shuffle(shuffled)
        estimates = []
        for seed in range(5):
            triest = TriestBase(reservoir_size=250, seed=seed)
            triest.ingest(GraphStream(shuffled))
            estimates.append(triest.triangle_estimate())
        mean = sum(estimates) / len(estimates)
        assert 50 <= mean <= 300  # unbiased but high-variance at this sample rate

    def test_memory_model(self):
        assert TriestBase(reservoir_size=100).memory_bytes() == 1600


class TestTriestImproved:
    def test_exact_when_reservoir_holds_everything(self):
        stream = triangle_stream(25)
        triest = TriestImproved(reservoir_size=1000, seed=2)
        triest.ingest(stream)
        assert triest.triangle_estimate() == 25

    def test_lower_variance_than_base(self):
        stream = triangle_stream(120)
        shuffled = list(stream)
        random.Random(11).shuffle(shuffled)

        def spread(cls):
            estimates = []
            for seed in range(6):
                counter = cls(reservoir_size=200, seed=seed)
                counter.ingest(GraphStream(shuffled))
                estimates.append(counter.triangle_estimate())
            mean = sum(estimates) / len(estimates)
            return sum((value - mean) ** 2 for value in estimates) / len(estimates)

        assert spread(TriestImproved) <= spread(TriestBase) * 2.0

    def test_agrees_with_exact_counting_on_real_stream(self, small_stream):
        unique = small_stream.unique_edges()
        exact = consume_stream(AdjacencyListGraph(), unique)
        truth = count_triangles(exact, unique.nodes())
        triest = TriestImproved(reservoir_size=len(unique), seed=3)
        triest.ingest(unique)
        assert triest.triangle_estimate() == pytest.approx(truth, rel=0.01)
