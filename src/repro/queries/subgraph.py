"""Labeled subgraph matching (VF2-style backtracking search).

Used by the Figure 15 experiment: patterns of 6–15 labeled edges are extracted
from stream windows by random walk and then searched both in the exact window
graph (the SJ-tree stand-in) and in the graph reconstructed from GSS
primitives.  The matcher is written from scratch — no networkx — and works on
any :class:`LabeledDiGraph`, however it was materialized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterator, List, Optional, Set, Tuple

from repro.queries.primitives import GraphQueryInterface
from repro.streaming.stream import GraphStream


@dataclass(frozen=True)
class PatternEdge:
    """One labeled edge of a query pattern, over pattern-variable names."""

    source: str
    destination: str
    label: str = ""


@dataclass
class Pattern:
    """A connected query pattern: a list of labeled edges over variables."""

    edges: List[PatternEdge] = field(default_factory=list)

    @classmethod
    def from_tuples(cls, tuples: List[Tuple[str, str, str]]) -> "Pattern":
        """Build a pattern from ``(source_var, destination_var, label)`` tuples."""
        return cls([PatternEdge(*edge) for edge in tuples])

    @property
    def variables(self) -> List[str]:
        """Pattern variables in first-appearance order."""
        seen: Dict[str, None] = {}
        for edge in self.edges:
            seen.setdefault(edge.source, None)
            seen.setdefault(edge.destination, None)
        return list(seen)

    def __len__(self) -> int:
        return len(self.edges)


class LabeledDiGraph:
    """A small labeled directed graph materialized for matching."""

    def __init__(self) -> None:
        self._out: Dict[Hashable, Dict[Hashable, str]] = {}
        self._in: Dict[Hashable, Dict[Hashable, str]] = {}

    def add_edge(self, source: Hashable, destination: Hashable, label: str = "") -> None:
        """Insert (or relabel) a directed edge."""
        self._out.setdefault(source, {})[destination] = label
        self._in.setdefault(destination, {})[source] = label
        self._out.setdefault(destination, {})
        self._in.setdefault(source, {})

    def has_edge(self, source: Hashable, destination: Hashable, label: Optional[str] = None) -> bool:
        """True when the edge exists (and carries ``label`` when given)."""
        existing = self._out.get(source, {}).get(destination)
        if existing is None:
            return False
        return label is None or existing == label

    def successors(self, node: Hashable) -> Dict[Hashable, str]:
        """Out-neighbors of ``node`` with their labels."""
        return self._out.get(node, {})

    def predecessors(self, node: Hashable) -> Dict[Hashable, str]:
        """In-neighbors of ``node`` with their labels."""
        return self._in.get(node, {})

    def nodes(self) -> List[Hashable]:
        """All node identifiers."""
        return list(set(self._out) | set(self._in))

    def edge_count(self) -> int:
        """Number of directed edges."""
        return sum(len(neighbors) for neighbors in self._out.values())

    @classmethod
    def from_stream(cls, stream: GraphStream) -> "LabeledDiGraph":
        """Materialize the streaming graph of a window (labels from the items)."""
        graph = cls()
        for edge in stream:
            graph.add_edge(edge.source, edge.destination, edge.label)
        return graph

    @classmethod
    def from_store(
        cls,
        store: GraphQueryInterface,
        nodes,
        label_lookup: Optional[Dict[Tuple[Hashable, Hashable], str]] = None,
    ) -> "LabeledDiGraph":
        """Materialize the summarized graph restricted to ``nodes``.

        Edges are discovered with successor queries; labels (which sketches do
        not store) come from ``label_lookup`` — in the Figure 15 experiment
        that lookup is the application's own edge-metadata table.
        """
        node_set = set(nodes)
        graph = cls()
        labels = label_lookup or {}
        for node in node_set:
            for successor in store.successor_query(node):
                if successor in node_set:
                    graph.add_edge(node, successor, labels.get((node, successor), ""))
        return graph


class SubgraphMatcher:
    """Backtracking (VF2-style) search for pattern embeddings."""

    def __init__(self, graph: LabeledDiGraph) -> None:
        self.graph = graph

    # -- public API ---------------------------------------------------------

    def find_one(self, pattern: Pattern) -> Optional[Dict[str, Hashable]]:
        """Return one embedding (variable -> data node) or ``None``."""
        for embedding in self._search(pattern):
            return embedding
        return None

    def find_all(self, pattern: Pattern, limit: int = 1000) -> List[Dict[str, Hashable]]:
        """Return up to ``limit`` embeddings."""
        results: List[Dict[str, Hashable]] = []
        for embedding in self._search(pattern):
            results.append(embedding)
            if len(results) >= limit:
                break
        return results

    def count(self, pattern: Pattern, limit: int = 1000) -> int:
        """Count embeddings, stopping at ``limit``."""
        return len(self.find_all(pattern, limit=limit))

    # -- search ---------------------------------------------------------------

    def _search(self, pattern: Pattern) -> Iterator[Dict[str, Hashable]]:
        if not pattern.edges:
            return
        order = self._edge_order(pattern)
        yield from self._extend({}, order, 0)

    def _edge_order(self, pattern: Pattern) -> List[PatternEdge]:
        """Order pattern edges so each new edge touches an already-bound variable."""
        remaining = list(pattern.edges)
        ordered: List[PatternEdge] = [remaining.pop(0)]
        bound: Set[str] = {ordered[0].source, ordered[0].destination}
        while remaining:
            index = next(
                (
                    position
                    for position, edge in enumerate(remaining)
                    if edge.source in bound or edge.destination in bound
                ),
                0,
            )
            edge = remaining.pop(index)
            ordered.append(edge)
            bound.add(edge.source)
            bound.add(edge.destination)
        return ordered

    def _extend(
        self,
        assignment: Dict[str, Hashable],
        order: List[PatternEdge],
        position: int,
    ) -> Iterator[Dict[str, Hashable]]:
        if position == len(order):
            yield dict(assignment)
            return
        edge = order[position]
        for source_node, destination_node in self._candidate_pairs(assignment, edge):
            if self._conflicts(assignment, edge, source_node, destination_node):
                continue
            added = []
            if edge.source not in assignment:
                assignment[edge.source] = source_node
                added.append(edge.source)
            if edge.destination not in assignment:
                assignment[edge.destination] = destination_node
                added.append(edge.destination)
            yield from self._extend(assignment, order, position + 1)
            for variable in added:
                del assignment[variable]

    def _candidate_pairs(
        self, assignment: Dict[str, Hashable], edge: PatternEdge
    ) -> Iterator[Tuple[Hashable, Hashable]]:
        source_bound = assignment.get(edge.source)
        destination_bound = assignment.get(edge.destination)
        if source_bound is not None and destination_bound is not None:
            if self.graph.has_edge(source_bound, destination_bound, edge.label or None):
                yield source_bound, destination_bound
            return
        if source_bound is not None:
            for destination, label in self.graph.successors(source_bound).items():
                if not edge.label or label == edge.label:
                    yield source_bound, destination
            return
        if destination_bound is not None:
            for source, label in self.graph.predecessors(destination_bound).items():
                if not edge.label or label == edge.label:
                    yield source, destination_bound
            return
        for source in self.graph.nodes():
            for destination, label in self.graph.successors(source).items():
                if not edge.label or label == edge.label:
                    yield source, destination

    @staticmethod
    def _conflicts(
        assignment: Dict[str, Hashable],
        edge: PatternEdge,
        source_node: Hashable,
        destination_node: Hashable,
    ) -> bool:
        """Enforce injectivity: distinct variables map to distinct data nodes."""
        used = set(assignment.values())
        source_unbound = edge.source not in assignment
        destination_unbound = edge.destination not in assignment
        if source_unbound and source_node in used:
            return True
        if destination_unbound and destination_node in used:
            return True
        if (
            source_unbound
            and destination_unbound
            and edge.source != edge.destination
            and source_node == destination_node
        ):
            return True
        return False


def count_subgraph_matches(graph: LabeledDiGraph, pattern: Pattern, limit: int = 1000) -> int:
    """Convenience wrapper: count embeddings of ``pattern`` in ``graph``."""
    return SubgraphMatcher(graph).count(pattern, limit=limit)
