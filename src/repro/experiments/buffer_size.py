"""Figure 13 — buffer percentage under the four GSS configurations.

The four curves of the paper's figure are reproduced as four configurations:
rooms ∈ {1, 2} crossed with square hashing on/off.  As in the paper, the
memory is held constant across room counts: the one-room variants use a matrix
``sqrt(2)`` times wider so that the number of rooms (and therefore bytes) is
unchanged.  The reported metric is the fraction of distinct sketch edges that
had to be stored in the left-over buffer.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig, load_streams
from repro.experiments.report import ExperimentResult
from repro.metrics.accuracy import buffer_percentage


_CONFIGURATIONS = (
    ("Room=1", 1, True),
    ("Room=2", 2, True),
    ("Room=1(NoSquareHash)", 1, False),
    ("Room=2(NoSquareHash)", 2, False),
)


def run_buffer_experiment(config: ExperimentConfig = None) -> ExperimentResult:
    """Reproduce Figure 13: buffer percentage vs width for the four variants."""
    config = config or ExperimentConfig()
    fingerprint_bits = max(config.fingerprint_bits)
    result = ExperimentResult(
        experiment="fig13",
        description="buffer percentage vs matrix width (rooms x square hashing)",
        columns=["dataset", "width", "configuration", "buffer_pct", "buffered_edges"],
    )
    for name, stream in load_streams(config):
        statistics = stream.statistics()
        for width in config.widths_for(statistics):
            for label, rooms, square in _CONFIGURATIONS:
                # Hold memory constant: one-room variants get a wider matrix.
                effective_width = width if rooms == config.rooms else int(width * (config.rooms / rooms) ** 0.5)
                sketch = config.feed(
                    config.build_gss(
                        effective_width,
                        fingerprint_bits,
                        rooms=rooms,
                        square_hashing=square,
                    ),
                    stream,
                )
                stored = sketch.matrix_edge_count + sketch.buffer_edge_count
                result.add(
                    dataset=name,
                    width=width,
                    configuration=label,
                    buffer_pct=buffer_percentage(sketch.buffer_edge_count, stored),
                    buffered_edges=sketch.buffer_edge_count,
                )
    return result
