"""Unit tests for GSSConfig."""

import pytest

from repro.core.config import GSSConfig


class TestGSSConfigValidation:
    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            GSSConfig(matrix_width=0)

    def test_rejects_bad_fingerprint_bits(self):
        with pytest.raises(ValueError):
            GSSConfig(matrix_width=10, fingerprint_bits=0)
        with pytest.raises(ValueError):
            GSSConfig(matrix_width=10, fingerprint_bits=40)

    def test_rejects_bad_rooms_and_sequence(self):
        with pytest.raises(ValueError):
            GSSConfig(matrix_width=10, rooms=0)
        with pytest.raises(ValueError):
            GSSConfig(matrix_width=10, sequence_length=0)
        with pytest.raises(ValueError):
            GSSConfig(matrix_width=10, candidate_buckets=0)


class TestGSSConfigDerivedValues:
    def test_fingerprint_and_hash_range(self):
        config = GSSConfig(matrix_width=100, fingerprint_bits=12)
        assert config.fingerprint_range == 4096
        assert config.hash_range == 100 * 4096

    def test_effective_sequence_length_without_square_hashing(self):
        config = GSSConfig(matrix_width=10, sequence_length=16, square_hashing=False)
        assert config.effective_sequence_length == 1
        assert config.effective_candidates == 1

    def test_effective_candidates_without_sampling(self):
        config = GSSConfig(matrix_width=10, sequence_length=4, sampling=False)
        assert config.effective_candidates == 16

    def test_effective_candidates_capped_by_mapped_buckets(self):
        config = GSSConfig(matrix_width=10, sequence_length=2, candidate_buckets=16)
        assert config.effective_candidates == 4

    def test_matrix_memory_bytes(self):
        config = GSSConfig(matrix_width=10, fingerprint_bits=16, rooms=2)
        # per room: 2*16 + 8 + 32 = 72 bits = 9 bytes; 10*10*2 rooms = 1800 bytes
        assert config.matrix_memory_bytes() == 1800


class TestForEdgeCount:
    def test_width_scales_with_sqrt(self):
        small = GSSConfig.for_edge_count(1_000)
        large = GSSConfig.for_edge_count(100_000)
        assert large.matrix_width > small.matrix_width
        assert large.matrix_width == pytest.approx((100_000 / 2) ** 0.5, abs=2)

    def test_capacity_covers_edges(self):
        config = GSSConfig.for_edge_count(5_000)
        capacity = config.matrix_width ** 2 * config.rooms
        assert capacity >= 5_000

    def test_overrides_pass_through(self):
        config = GSSConfig.for_edge_count(1_000, rooms=1, square_hashing=False)
        assert config.rooms == 1
        assert not config.square_hashing

    def test_rejects_non_positive_edges(self):
        with pytest.raises(ValueError):
            GSSConfig.for_edge_count(0)
