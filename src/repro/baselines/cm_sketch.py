"""Count-Min sketch over edge keys (Cormode & Muthukrishnan).

The first family of graph-stream summaries the paper discusses stores each
stream item in counter arrays independently, ignoring topology.  They support
edge-weight queries only: given ``(s, d)`` they estimate the aggregated weight
but cannot enumerate successors, precursors or reachability.
"""

from __future__ import annotations

from typing import Hashable, List, Tuple

from repro.hashing.hash_functions import hash_key


class CountMinSketch:
    """Standard Count-Min sketch keyed by the edge's (source, destination) pair."""

    def __init__(self, width: int, depth: int = 4, seed: int = 0) -> None:
        if width <= 0:
            raise ValueError("width must be positive")
        if depth < 1:
            raise ValueError("depth must be at least 1")
        self.width = width
        self.depth = depth
        self.seed = seed
        self.counters: List[List[float]] = [[0.0] * width for _ in range(depth)]
        self._update_count = 0

    def _positions(self, source: Hashable, destination: Hashable) -> List[Tuple[int, int]]:
        key = (source, destination)
        return [
            (row, hash_key(key, self.seed + row) % self.width)
            for row in range(self.depth)
        ]

    def update(self, source: Hashable, destination: Hashable, weight: float = 1.0) -> None:
        """Add ``weight`` to every row's counter for this edge."""
        self._update_count += 1
        for row, column in self._positions(source, destination):
            self.counters[row][column] += weight

    def ingest(self, edges) -> "CountMinSketch":
        """Feed an iterable of stream edges."""
        for edge in edges:
            self.update(edge.source, edge.destination, edge.weight)
        return self

    def edge_query(self, source: Hashable, destination: Hashable) -> float:
        """Count-Min estimate: minimum counter across the rows."""
        return min(self.counters[row][column] for row, column in self._positions(source, destination))

    @property
    def update_count(self) -> int:
        """Number of stream items applied."""
        return self._update_count

    def memory_bytes(self) -> int:
        """Counter memory under a C layout (32-bit counters)."""
        return self.depth * self.width * 4
