"""Tests for the occupancy-indexed matrix backend and the batch update API.

The indexed backend must be *observationally identical* to the original full
matrix scans: the property tests here drive random streams — including
deletions and configurations small enough to overflow into the
``LeftoverBuffer`` — and assert the indexed and unindexed code paths agree
bucket-for-bucket.  The module also covers the satellite bugfixes: the
``None``-based edge query (sentinel collision), the ``NodeIndex`` hash
conflict, and the tier-1 collection boundary.
"""

from __future__ import annotations

import subprocess
import sys
import typing
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.buffer import LeftoverBuffer
from repro.core.config import GSSConfig
from repro.core.ensemble import GSSEnsemble
from repro.core.gss import GSS
from repro.core.merge import merge_sketches
from repro.core.partitioned import PartitionedGSS
from repro.core.reverse_index import NodeIndex
from repro.core.serialization import sketch_from_dict, sketch_to_dict
from repro.core.undirected import UndirectedGSS
from repro.core.windowed import WindowedGSS

# Streams over a small node universe with insertions AND deletions (negative
# weights), sized so small matrices overflow into the left-over buffer.
edge_items = st.tuples(
    st.integers(min_value=0, max_value=19),
    st.integers(min_value=0, max_value=19),
    st.sampled_from([1.0, 2.0, 5.0, -1.0, -2.0]),
)
streams = st.lists(edge_items, min_size=1, max_size=80)

configs = st.builds(
    GSSConfig,
    matrix_width=st.integers(min_value=2, max_value=12),
    fingerprint_bits=st.sampled_from([4, 8, 12]),
    rooms=st.integers(min_value=1, max_value=3),
    sequence_length=st.integers(min_value=1, max_value=6),
    candidate_buckets=st.integers(min_value=1, max_value=6),
    square_hashing=st.booleans(),
    sampling=st.booleans(),
)


def ingest(config: GSSConfig, items) -> GSS:
    sketch = GSS(config)
    for source, destination, weight in items:
        sketch.update(f"n{source}", f"n{destination}", weight)
    return sketch


def assert_indexes_consistent(sketch: GSS) -> None:
    """The occupancy lists and room map must mirror the bucket matrix exactly."""
    expected_rows, expected_cols, expected_rooms = {}, {}, {}
    for row in range(sketch.config.matrix_width):
        for column in range(sketch.config.matrix_width):
            bucket = sketch._bucket_at(row, column)
            if not bucket:
                continue
            expected_rows.setdefault(row, []).append(column)
            expected_cols.setdefault(column, []).append(row)
            for room in bucket:
                expected_rooms[(row, column, room[0], room[1], room[2], room[3])] = room
    # The full scan above visits positions in ascending order, so the
    # expected occupancy lists are already sorted.
    assert sketch._row_occupancy == expected_rows
    assert sketch._col_occupancy == expected_cols
    assert sketch._room_map == expected_rooms


class TestIndexedEqualsUnindexed:
    @given(items=streams, config=configs)
    @settings(max_examples=80, deadline=None)
    def test_neighbor_and_reconstruct_identical(self, items, config):
        sketch = ingest(config, items)
        nodes = {f"n{s}" for s, _, _ in items} | {f"n{d}" for _, d, _ in items}
        for node in nodes:
            node_hash = sketch.node_hash(node)
            assert sketch._neighbor_hashes(node_hash, forward=True) == (
                sketch._neighbor_hashes_unindexed(node_hash, forward=True)
            )
            assert sketch._neighbor_hashes(node_hash, forward=False) == (
                sketch._neighbor_hashes_unindexed(node_hash, forward=False)
            )
        assert sketch.reconstruct_sketch_edges() == sketch.reconstruct_sketch_edges_unindexed()
        assert_indexes_consistent(sketch)

    @given(items=streams, config=configs)
    @settings(max_examples=60, deadline=None)
    def test_update_many_equals_scalar_updates(self, items, config):
        scalar = ingest(config, items)
        batched = GSS(config)
        named = [(f"n{s}", f"n{d}", w) for s, d, w in items]
        # Split into two chunks to exercise cross-batch cache reuse.
        half = len(named) // 2
        batched.update_many(named[:half])
        batched.update_many(named[half:])
        assert batched.update_count == scalar.update_count
        assert batched.reconstruct_sketch_edges() == scalar.reconstruct_sketch_edges()
        assert sorted(batched.buffer.edges()) == sorted(scalar.buffer.edges())
        for node in {name for name, _, _ in named}:
            assert batched.successor_hashes(node) == scalar.successor_hashes(node)
            assert batched.precursor_hashes(node) == scalar.precursor_hashes(node)
        assert_indexes_consistent(batched)

    def test_overflowing_stream_hits_buffer(self):
        config = GSSConfig(matrix_width=2, fingerprint_bits=4, rooms=1,
                           sequence_length=2, candidate_buckets=2)
        items = [(s, d, 1.0) for s in range(12) for d in range(12)]
        sketch = ingest(config, items)
        assert sketch.buffer_edge_count > 0  # the scenario actually overflows
        assert sketch.reconstruct_sketch_edges() == sketch.reconstruct_sketch_edges_unindexed()


class TestIndexesSurviveRoundTrips:
    def _sample_sketch(self) -> GSS:
        config = GSSConfig(matrix_width=6, fingerprint_bits=8, sequence_length=4,
                           candidate_buckets=4)
        return ingest(config, [(s % 9, (s * 3 + 1) % 9, float(1 + s % 4)) for s in range(60)])

    def test_serialization_round_trip(self):
        original = self._sample_sketch()
        restored = sketch_from_dict(sketch_to_dict(original))
        assert_indexes_consistent(restored)
        assert restored.reconstruct_sketch_edges() == original.reconstruct_sketch_edges()
        for node in original.node_index.known_nodes():
            assert restored.successor_hashes(node) == original.successor_hashes(node)
            assert restored.precursor_hashes(node) == original.precursor_hashes(node)

    def test_merge_keeps_indexes_consistent(self):
        config = GSSConfig(matrix_width=6, fingerprint_bits=8, sequence_length=4,
                           candidate_buckets=4)
        first = ingest(config, [(s, (s + 1) % 10, 1.0) for s in range(10)])
        second = ingest(config, [(s, (s + 2) % 10, 2.0) for s in range(10)])
        merged = merge_sketches([first, second])
        assert_indexes_consistent(merged)
        for node in (f"n{i}" for i in range(10)):
            assert merged.successor_hashes(node) == (
                first.successor_hashes(node) | second.successor_hashes(node)
            )


class TestBatchUpdateWrappers:
    def test_windowed_update_many_matches_scalar(self):
        config = GSSConfig(matrix_width=8, sequence_length=4, candidate_buckets=4)
        scalar = WindowedGSS(config, window_span=20.0, slices=4)
        batched = WindowedGSS(config, window_span=20.0, slices=4)
        items = [(f"n{i % 7}", f"n{(i * 2) % 7}", 1.0, float(i)) for i in range(50)]
        for source, destination, weight, timestamp in items:
            scalar.update(source, destination, weight, timestamp)
        batched.update_many(items)
        assert batched.update_count == scalar.update_count
        assert batched.active_slice_count == scalar.active_slice_count
        assert batched.expired_slice_count == scalar.expired_slice_count
        for node in {source for source, _, _, _ in items}:
            assert batched.successor_query(node) == scalar.successor_query(node)
            for other in {d for _, d, _, _ in items}:
                assert batched.edge_query(node, other) == scalar.edge_query(node, other)

    def test_partitioned_update_many_matches_scalar(self):
        config = GSSConfig(matrix_width=8, sequence_length=4, candidate_buckets=4)
        scalar = PartitionedGSS(config, partitions=3)
        batched = PartitionedGSS(config, partitions=3)
        items = [(f"n{i % 9}", f"n{(i * 4) % 9}", float(1 + i % 3)) for i in range(60)]
        for source, destination, weight in items:
            scalar.update(source, destination, weight)
        batched.update_many(items)
        assert batched.update_count == scalar.update_count
        assert batched.shard_loads() == scalar.shard_loads()
        for source, destination, _ in items:
            assert batched.edge_query(source, destination) == scalar.edge_query(source, destination)

    def test_ensemble_and_undirected_update_many(self):
        config = GSSConfig(matrix_width=8, fingerprint_bits=8, sequence_length=4,
                           candidate_buckets=4)
        items = [(f"n{i % 6}", f"n{(i + 2) % 6}", 1.0) for i in range(30)]

        ensemble = GSSEnsemble(config, sketches=2)
        assert ensemble.update_many(items) == len(items)
        assert ensemble.edge_query("n0", "n2") >= 1.0

        undirected = UndirectedGSS(config)
        assert undirected.update_many(items) == len(items)
        assert undirected.edge_query("n2", "n0") == undirected.edge_query("n0", "n2")

    def test_stream_ingest_into_uses_batches(self):
        from repro.streaming.stream import stream_from_pairs

        stream = stream_from_pairs([(f"a{i % 5}", f"b{i % 4}") for i in range(40)])
        config = GSSConfig(matrix_width=8, sequence_length=4, candidate_buckets=4)
        batched = stream.ingest_into(GSS(config), batch_size=7)
        scalar = GSS(config)
        for edge in stream:
            scalar.update(edge.source, edge.destination, edge.weight)
        assert batched.reconstruct_sketch_edges() == scalar.reconstruct_sketch_edges()
        assert list(map(len, stream.iter_batches(7))) == [7, 7, 7, 7, 7, 5]


class TestSentinelFix:
    def test_edge_query_distinguishes_real_minus_one(self):
        config = GSSConfig(matrix_width=8, sequence_length=4, candidate_buckets=4)
        sketch = GSS(config)
        sketch.update("a", "b", 1.0)
        sketch.update("a", "b", -2.0)  # deletions sum the edge to exactly -1.0
        assert sketch.edge_query("a", "b") == -1.0      # real edge, real weight
        assert sketch.edge_query("a", "zz") is None     # absent edge, unambiguous
        # The paper's sentinel convention survives as a deprecated shim where
        # the two cases collapse onto the same -1.0.
        with pytest.warns(DeprecationWarning):
            assert sketch.edge_query_sentinel("a", "b") == -1.0
        with pytest.warns(DeprecationWarning):
            assert sketch.edge_query_sentinel("a", "zz") == -1.0
        # ...as does the transitional edge_query_opt alias.
        with pytest.warns(DeprecationWarning):
            assert sketch.edge_query_opt("a", "b") == -1.0
        with pytest.warns(DeprecationWarning):
            assert sketch.edge_query_by_hash_opt(
                sketch.node_hash("a"), sketch.node_hash("zz")
            ) is None

    def test_none_semantics_on_wrappers(self):
        config = GSSConfig(matrix_width=8, sequence_length=4, candidate_buckets=4)
        windowed = WindowedGSS(config, window_span=10.0)
        windowed.update("a", "b", 1.0, timestamp=0.0)
        windowed.update("a", "b", -2.0, timestamp=1.0)
        assert windowed.edge_query("a", "b") == -1.0
        assert windowed.edge_query("a", "zz") is None

        partitioned = PartitionedGSS(config, partitions=2)
        partitioned.update("a", "b", -1.0)
        assert partitioned.edge_query("a", "b") == -1.0
        assert partitioned.edge_query("zz", "a") is None

        ensemble = GSSEnsemble(config, sketches=2)
        ensemble.update("a", "b", -1.0)
        assert ensemble.edge_query("a", "b") == -1.0
        assert ensemble.edge_query("a", "zz") is None

    def test_buffer_get_annotation_is_optional(self):
        hints = typing.get_type_hints(LeftoverBuffer.get)
        assert hints["default"] == typing.Optional[float]
        assert hints["return"] == typing.Optional[float]


class TestNodeIndexConflict:
    def test_conflicting_hash_raises(self):
        index = NodeIndex()
        index.record("a", 7)
        index.record("a", 7)  # idempotent re-registration stays fine
        with pytest.raises(ValueError, match="already registered"):
            index.record("a", 8)

    def test_merge_with_different_seeds_is_rejected_before_corruption(self):
        from repro.core.merge import merge_into

        first = GSS(GSSConfig(matrix_width=8, seed=1, sequence_length=2, candidate_buckets=2))
        second = GSS(GSSConfig(matrix_width=8, seed=2, sequence_length=2, candidate_buckets=2))
        first.update("a", "b")
        second.update("a", "b")
        with pytest.raises(ValueError):
            merge_into(first, second)


class TestTierOneCollectionBoundary:
    def test_default_collection_excludes_benchmarks(self):
        """`pytest --collect-only` from the repo root must not pick up the
        benchmark suite (the tier-1 timeout bug)."""
        repo_root = Path(__file__).resolve().parent.parent
        result = subprocess.run(
            [sys.executable, "-m", "pytest", "--collect-only", "-q", "--no-header", "-p", "no:cacheprovider"],
            cwd=repo_root,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "benchmarks/" not in result.stdout
        assert "tests/" in result.stdout
