"""Benchmark: regenerate Figure 3 (theoretical accuracy vs M/|V|)."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import run_figure3


@pytest.mark.paper_artifact("fig3")
def test_fig3_theoretical_accuracy(benchmark, bench_config):
    result = run_once(benchmark, run_figure3, bench_config)
    print()
    print(result.to_text())

    # Paper claim: with M/|V| <= 1 the successor/precursor accuracy is near 0,
    # and it only becomes usable when M/|V| reaches the hundreds.
    low_ratio = [
        row["correct_rate"]
        for row in result.filter(panel="successor_query", ratio=1)
        if row["degree"] >= 8
    ]
    high_ratio = [
        row["correct_rate"]
        for row in result.filter(panel="successor_query", ratio=512)
        if row["degree"] <= 8
    ]
    assert all(rate < 0.1 for rate in low_ratio)
    assert all(rate > 0.8 for rate in high_ratio)

    # Edge queries are far more forgiving: accurate even at tiny ratios.
    edge_low = [
        row["correct_rate"]
        for row in result.filter(panel="edge_query", ratio=1)
        if row["degree"] <= 8
    ]
    assert all(rate > 0.95 for rate in edge_low)
