"""Benchmark: regenerate Figure 14 (triangle counting, GSS vs TRIEST)."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import run_triangle_experiment
from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="module")
def triangle_config() -> ExperimentConfig:
    """The paper runs Figure 14 on cit-HepPh with a memory sweep."""
    return ExperimentConfig(
        datasets=("cit-HepPh",),
        dataset_scale=0.4,
        fingerprint_bits=(12, 16),
        sequence_length=8,
        candidate_buckets=8,
        extras={"triangle_memory_factors": (0.8, 1.0, 1.3, 1.6)},
    )


@pytest.mark.paper_artifact("fig14")
def test_fig14_triangle_counting(benchmark, triangle_config):
    result = run_once(benchmark, run_triangle_experiment, triangle_config)
    print()
    print(result.to_text())

    gss_rows = [row for row in result.rows if row["structure"] == "GSS"]
    triest_rows = [row for row in result.rows if row["structure"] == "TRIEST"]
    assert gss_rows and triest_rows

    # Paper shape: GSS achieves very low relative error (the paper reports
    # both below 1%; the GSS side of that claim is sharp, TRIEST's error
    # depends on the reservoir-to-graph ratio, so we only require it to be a
    # sane estimate).
    assert max(row["relative_error"] for row in gss_rows) < 0.05
    assert max(row["relative_error"] for row in triest_rows) < 1.0

    # More memory never hurts GSS.
    ordered = sorted(gss_rows, key=lambda row: row["memory_bytes"])
    assert ordered[-1]["relative_error"] <= ordered[0]["relative_error"] + 1e-9
