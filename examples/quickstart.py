"""Quickstart: the ``repro.api`` facade end to end.

Run with::

    python examples/quickstart.py

The script walks the public API surface: list the sketch registry, open a
:class:`~repro.api.StreamSession` on a synthetic analog of the paper's
email-EuAll dataset (the sketch is auto-sized from the stream), run the three
graph query primitives plus a compound node query against the exact ground
truth, build an equal-memory TCM through the factory for comparison, and
round-trip the sketch through its snapshot document.
"""

from __future__ import annotations

from repro import AdjacencyListGraph
from repro.api import SketchSpec, StreamSession, build, from_dict, list_sketches
from repro.datasets import load_dataset
from repro.metrics import average_precision, average_relative_error


def main() -> None:
    # 1. The registry: everything the factory can build.
    print(f"registered sketches: {', '.join(list_sketches())}")

    # 2. A graph stream plus an ingestion session.  The spec carries no
    #    explicit size, so the session sizes the sketch from the stream's
    #    distinct edge count (the paper's m ~ sqrt(|E|) guidance).
    stream = load_dataset("email-EuAll", scale=0.2)
    statistics = stream.statistics()
    print(f"stream '{stream.name}': {statistics.item_count} items, "
          f"{statistics.distinct_edges} distinct edges, {statistics.node_count} nodes")

    session = StreamSession(
        SketchSpec("gss", params={"sequence_length": 8, "candidate_buckets": 8})
    )
    report = session.feed(stream)
    sketch = session.summary
    print(f"GSS: ingested {report.items} items in {report.batches} batches "
          f"({report.items_per_second:.0f} items/s), "
          f"{sketch.memory_bytes() / 1024:.1f} KiB")

    # 3. Exact ground truth for comparison (exact stores feed the same way).
    exact = AdjacencyListGraph()
    StreamSession(exact).feed(stream)

    # 4. Edge queries: the estimate is never below the true weight, and an
    #    absent edge is reported as None (not the paper's ambiguous -1.0).
    truth = stream.aggregate_weights()
    sample = list(truth)[:2000]
    pairs = [(sketch.edge_query(*key) or 0.0, truth[key]) for key in sample]
    print(f"edge query ARE over {len(sample)} edges: {average_relative_error(pairs):.6f}")

    some_edge = sample[0]
    print(f"  example: edge {some_edge} -> GSS {sketch.edge_query(*some_edge)}, "
          f"exact {exact.edge_query(*some_edge)}")
    print(f"  absent edge ('ghost', 'node') -> {sketch.edge_query('ghost', 'node')!r}")

    # 5. 1-hop successor / precursor queries.
    successor_truth = stream.successors()
    nodes = stream.nodes()[:500]
    precision = average_precision(
        [(successor_truth.get(node, set()), sketch.successor_query(node)) for node in nodes]
    )
    print(f"successor query precision over {len(nodes)} nodes: {precision:.4f}")

    busiest = max(successor_truth, key=lambda node: len(successor_truth[node]))
    print(f"  busiest node {busiest!r}: {len(successor_truth[busiest])} true successors, "
          f"GSS reports {len(sketch.successor_query(busiest))}")

    # 6. Compound query built on the primitives: aggregated out-weight.
    print(f"node query (out-weight) of {busiest!r}: GSS {sketch.node_out_weight(busiest):.0f}, "
          f"exact {exact.node_out_weight(busiest):.0f}")

    # 7. An equal-memory baseline through the factory: TCM granted the
    #    paper's 8x handicap, fed through its own session.
    tcm = build(SketchSpec("tcm", memory_bytes=8 * sketch.memory_bytes()))
    StreamSession(tcm).feed(stream)
    tcm_pairs = [(tcm.edge_query(*key) or 0.0, truth[key]) for key in sample]
    print(f"TCM(8x memory) edge ARE: {average_relative_error(tcm_pairs):.6f} "
          f"(GSS is more accurate at an eighth of the memory)")

    # 8. Checkpoint and restore through the snapshot document.
    restored = from_dict(sketch.to_dict())
    assert restored.edge_query(*some_edge) == sketch.edge_query(*some_edge)
    print("snapshot round-trip: restored sketch answers identically")


if __name__ == "__main__":
    main()
