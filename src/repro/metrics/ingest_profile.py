"""Per-stage ingest profiling (``record_bench.py --profile``).

Batched ingestion has four qualitatively different cost centers:

* ``hashing`` — resolving original node IDs to packed sketch-edge keys
  (memo probes, vectorized FNV/splitmix over new nodes);
* ``placement`` — aggregation, edge classification and the bucket-probe /
  contention-resolution walk (array ops + Python loop on the numpy backend,
  one kernel call on the native backend);
* ``buffer_spill`` — marshalling edges that overflowed to the left-over
  buffer;
* ``memo`` — upkeep of the persistent node/pair caches.

The profiler mirrors :class:`repro.hashing.hash_functions.HashCounter`: a
context manager installs an active profile, the backends add timed spans to
it, and the common case (no profiling) costs one ``is None`` check per
batch.  Stages are disjoint — container spans subtract the nested stages
recorded while they ran — so the stage times sum to (at most) the measured
ingest time.  The pure-Python backend separates only ``hashing`` and
``placement`` (its buffer spill and per-item work are interleaved in one
loop); the numpy and native backends report all four stages.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.obs.trace import active as _obs_active

#: Per-stage ingest timings mirrored into the obs registry (when enabled):
#: one histogram series per stage label, so ``record_bench.py --profile``
#: can report ``obs_stage_seconds`` next to the legacy stage dict and a
#: live server's stage mix shows up on ``GET /metrics``.
STAGE_FAMILY = "repro_ingest_stage_seconds"
_STAGE_HELP = "Batched-ingest stage durations (label: stage name)."


class IngestProfile:
    """Accumulated per-stage wall-clock seconds plus a batch counter."""

    __slots__ = ("stages", "batches")

    def __init__(self) -> None:
        self.stages: Dict[str, float] = {}
        self.batches = 0

    def add(self, stage: str, seconds: float) -> None:
        self.stages[stage] = self.stages.get(stage, 0.0) + seconds
        registry = _obs_active()
        if registry is not None:
            registry.histogram(STAGE_FAMILY, _STAGE_HELP, stage=stage).observe(
                seconds
            )

    def stage_seconds(self, stage: str) -> float:
        return self.stages.get(stage, 0.0)

    def count_batch(self) -> None:
        self.batches += 1

    def as_dict(self) -> Dict:
        """JSON-ready snapshot: totals, per-batch means and stage shares."""
        total = sum(self.stages.values())
        return {
            "batches": self.batches,
            "total_seconds": total,
            "stage_seconds": dict(sorted(self.stages.items())),
            "stage_seconds_per_batch": {
                stage: seconds / self.batches if self.batches else 0.0
                for stage, seconds in sorted(self.stages.items())
            },
            "stage_share": {
                stage: seconds / total if total else 0.0
                for stage, seconds in sorted(self.stages.items())
            },
        }


#: The active profile, or ``None`` (the common case: zero-cost fast path).
_active_profile: Optional[IngestProfile] = None


def active_profile() -> Optional[IngestProfile]:
    """The installed profile, consulted by the backends on every batch."""
    return _active_profile


@contextmanager
def profile_ingest() -> Iterator[IngestProfile]:
    """Instrument every batched-ingest stage inside the block.

    Nesting restores the previous profile on exit, like
    :func:`repro.hashing.hash_functions.count_key_hashes`.
    """
    global _active_profile
    profile = IngestProfile()
    previous = _active_profile
    _active_profile = profile
    try:
        yield profile
    finally:
        _active_profile = previous
