"""Stream transformations: filtering, sampling, mapping, splitting, merging.

Real deployments rarely feed a raw trace straight into a sketch — flows are
filtered by port, sampled to tame the rate, split per tenant and merged from
several collection points.  These helpers keep all of that out of the sketch
code: every transform takes a :class:`~repro.streaming.stream.GraphStream`
(or several) and returns a new one, so pipelines compose naturally::

    stream = merge_streams(site_a, site_b)
    stream = filter_edges(stream, lambda e: e.weight > 0)
    stream = sample_stream(stream, rate=0.1, seed=3)
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.streaming.edge import StreamEdge
from repro.streaming.stream import GraphStream


def filter_edges(stream: GraphStream, predicate: Callable[[StreamEdge], bool]) -> GraphStream:
    """Keep only the items for which ``predicate`` returns True."""
    return GraphStream([edge for edge in stream if predicate(edge)], name=stream.name)


def filter_by_weight(stream: GraphStream, minimum_weight: float) -> GraphStream:
    """Keep items whose weight is at least ``minimum_weight``."""
    return filter_edges(stream, lambda edge: edge.weight >= minimum_weight)


def filter_by_nodes(stream: GraphStream, nodes: Iterable[Hashable]) -> GraphStream:
    """Keep items whose both endpoints belong to ``nodes`` (induced sub-stream)."""
    node_set = set(nodes)
    return filter_edges(
        stream, lambda edge: edge.source in node_set and edge.destination in node_set
    )


def sample_stream(stream: GraphStream, rate: float, seed: int = 11) -> GraphStream:
    """Keep each item independently with probability ``rate``.

    This is the uniform item sampling many stream processors apply before
    sketching; the accuracy experiments use it to study how sampling in front
    of GSS biases weight estimates.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError("rate must be in [0, 1]")
    rng = random.Random(seed)
    return GraphStream([edge for edge in stream if rng.random() < rate], name=stream.name)


def head(stream: GraphStream, count: int) -> GraphStream:
    """The first ``count`` items of the stream."""
    if count < 0:
        raise ValueError("count must be non-negative")
    return GraphStream(list(stream)[:count], name=stream.name)


def map_nodes(stream: GraphStream, mapping: Callable[[Hashable], Hashable]) -> GraphStream:
    """Apply ``mapping`` to every endpoint (e.g. anonymize or coarsen IDs)."""
    return GraphStream(
        [
            StreamEdge(
                source=mapping(edge.source),
                destination=mapping(edge.destination),
                weight=edge.weight,
                timestamp=edge.timestamp,
                label=edge.label,
            )
            for edge in stream
        ],
        name=stream.name,
    )


def map_weights(stream: GraphStream, mapping: Callable[[float], float]) -> GraphStream:
    """Apply ``mapping`` to every item weight (e.g. clamp or normalise)."""
    return GraphStream(
        [edge.with_weight(mapping(edge.weight)) for edge in stream], name=stream.name
    )


def reverse_edges(stream: GraphStream) -> GraphStream:
    """Swap source and destination of every item (the transpose graph)."""
    return GraphStream([edge.reversed() for edge in stream], name=stream.name)


def merge_streams(*streams: GraphStream, name: str = "") -> GraphStream:
    """Interleave several streams by timestamp into a single stream.

    Models merging the traces of several collection points; items with equal
    timestamps keep the order of the input streams.
    """
    combined: List[StreamEdge] = []
    for stream in streams:
        combined.extend(stream)
    combined.sort(key=lambda edge: edge.timestamp)
    merged_name = name or "+".join(stream.name for stream in streams if stream.name)
    return GraphStream(combined, name=merged_name)


def split_by(
    stream: GraphStream, key: Callable[[StreamEdge], Hashable]
) -> Dict[Hashable, GraphStream]:
    """Partition the stream into sub-streams keyed by ``key(edge)``.

    Typical keys: the edge label (per-protocol streams), the source node's
    shard, or a time bucket.
    """
    groups: Dict[Hashable, List[StreamEdge]] = {}
    for edge in stream:
        groups.setdefault(key(edge), []).append(edge)
    return {
        group_key: GraphStream(edges, name=f"{stream.name}/{group_key}")
        for group_key, edges in groups.items()
    }


def split_by_time(stream: GraphStream, interval: float) -> List[GraphStream]:
    """Cut the stream into consecutive intervals of ``interval`` time units.

    Items are assigned by timestamp; empty intervals in the middle of the
    stream are preserved as empty streams so epoch indexes stay aligned.
    """
    if interval <= 0:
        raise ValueError("interval must be positive")
    items = sorted(stream, key=lambda edge: edge.timestamp)
    if not items:
        return []
    start = items[0].timestamp
    end = items[-1].timestamp
    bucket_count = int((end - start) // interval) + 1
    buckets: List[List[StreamEdge]] = [[] for _ in range(bucket_count)]
    for edge in items:
        index = min(bucket_count - 1, int((edge.timestamp - start) // interval))
        buckets[index].append(edge)
    return [
        GraphStream(bucket, name=f"{stream.name}[{index}]")
        for index, bucket in enumerate(buckets)
    ]


def rate_per_interval(stream: GraphStream, interval: float) -> List[Tuple[float, int]]:
    """Item arrival counts per time interval: ``[(interval_start, count), ...]``.

    A quick way to characterise burstiness of a trace before choosing the
    window span of a :class:`~repro.core.windowed.WindowedGSS`.
    """
    pieces = split_by_time(stream, interval)
    if not pieces:
        return []
    first_timestamp = min(edge.timestamp for edge in stream)
    return [
        (first_timestamp + index * interval, len(piece))
        for index, piece in enumerate(pieces)
    ]


def deduplicate(stream: GraphStream, keep: str = "first") -> GraphStream:
    """Collapse repeated (source, destination) pairs.

    ``keep='first'`` keeps the first occurrence unchanged (what the paper does
    for TRIEST); ``keep='sum'`` keeps one item per edge carrying the summed
    weight, i.e. the materialised streaming graph.
    """
    if keep not in ("first", "sum"):
        raise ValueError("keep must be 'first' or 'sum'")
    if keep == "first":
        return stream.unique_edges()
    totals: Dict[Tuple[Hashable, Hashable], StreamEdge] = {}
    order: List[Tuple[Hashable, Hashable]] = []
    sums: Dict[Tuple[Hashable, Hashable], float] = {}
    for edge in stream:
        if edge.key not in totals:
            totals[edge.key] = edge
            order.append(edge.key)
            sums[edge.key] = 0.0
        sums[edge.key] += edge.weight
    return GraphStream(
        [totals[key].with_weight(sums[key]) for key in order], name=stream.name
    )
