"""A small C-declaration parser for the ABI cross-checker.

This is deliberately **not** a C parser.  It understands exactly the
subset ``kernel.c`` is written in — and that the abi-check rule keeps it
written in, because anything fancier would drift out of what this module
can see:

* ``typedef struct { <scalar or pointer fields>; } name;``
* top-level function definitions/prototypes whose parameters are scalar
  or pointer types (no function pointers, no arrays, no varargs);
* ``static`` functions are internal and skipped.

Types are canonicalized to a single-space-separated token string with
``const``/``restrict`` dropped and every ``*`` a standalone token, e.g.
``const unsigned char *blob`` → type ``unsigned char *``, name ``blob``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["CFunction", "CStruct", "CParseError", "parse_c_declarations"]


class CParseError(ValueError):
    """The source stepped outside the supported declaration subset."""


@dataclass(frozen=True)
class CFunction:
    name: str
    return_type: str
    #: ``(canonical type, parameter name)`` pairs; empty for ``(void)``.
    params: Tuple[Tuple[str, str], ...]
    line: int


@dataclass(frozen=True)
class CStruct:
    name: str
    #: ``(canonical type, field name)`` pairs, in declaration order.
    fields: Tuple[Tuple[str, str], ...]
    line: int


_QUALIFIERS = {"const", "restrict", "volatile", "register"}


def _strip_comments(source: str) -> str:
    """Remove comments/preprocessor lines, preserving line numbers."""
    # Block comments become same-shape whitespace so lineno math survives.
    def blank(match: re.Match) -> str:
        return re.sub(r"[^\n]", " ", match.group(0))

    source = re.sub(r"/\*.*?\*/", blank, source, flags=re.S)
    source = re.sub(r"//[^\n]*", "", source)
    source = re.sub(r"^[ \t]*#[^\n]*", "", source, flags=re.M)
    return source


def _canonical(tokens: List[str]) -> str:
    kept = [token for token in tokens if token not in _QUALIFIERS]
    return " ".join(kept)


def _split_declarator(text: str) -> Tuple[str, str]:
    """``"const uint64_t *keys"`` → (``"uint64_t *"``, ``"keys"``)."""
    tokens = text.replace("*", " * ").split()
    if not tokens:
        raise CParseError(f"empty declarator in {text!r}")
    if tokens == ["void"]:
        return "void", ""
    name = tokens[-1]
    if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", name):
        raise CParseError(f"unsupported declarator {text!r}")
    type_tokens = tokens[:-1]
    if not type_tokens:
        raise CParseError(f"declarator {text!r} has no type")
    return _canonical(type_tokens), name


def _line_of(source: str, offset: int) -> int:
    return source.count("\n", 0, offset) + 1


_STRUCT_RE = re.compile(
    r"typedef\s+struct(?:\s+[A-Za-z_][A-Za-z0-9_]*)?\s*\{(?P<body>[^}]*)\}\s*"
    r"(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*;",
    re.S,
)

# A function introducer: `rettype name(params)` followed by `{` or `;` at
# top level.  Struct bodies are cut out before this runs, so field lists
# can't masquerade as parameter lists.
_FUNCTION_RE = re.compile(
    r"(?m)^(?P<ret>[A-Za-z_][A-Za-z0-9_*\s]*?)\s*\b(?P<name>[A-Za-z_][A-Za-z0-9_]*)"
    r"\s*\((?P<params>[^()]*)\)\s*(?:\{|;)"
)


def parse_c_declarations(source: str) -> Tuple[Dict[str, CFunction], Dict[str, CStruct]]:
    """Exported functions and typedef'd structs of one C translation unit."""
    stripped = _strip_comments(source)

    structs: Dict[str, CStruct] = {}
    for match in _STRUCT_RE.finditer(stripped):
        fields: List[Tuple[str, str]] = []
        for raw_field in match.group("body").split(";"):
            raw_field = raw_field.strip()
            if not raw_field:
                continue
            fields.append(_split_declarator(raw_field))
        structs[match.group("name")] = CStruct(
            name=match.group("name"),
            fields=tuple(fields),
            line=_line_of(stripped, match.start()),
        )

    # Remove struct bodies (and any other brace block is fine to keep:
    # the function regex is anchored at line starts, and kernel code is
    # indented) so struct fields never parse as functions.
    defunct = _STRUCT_RE.sub(lambda m: re.sub(r"[^\n]", " ", m.group(0)), stripped)

    functions: Dict[str, CFunction] = {}
    for match in _FUNCTION_RE.finditer(defunct):
        return_tokens = match.group("ret").replace("*", " * ").split()
        if not return_tokens or return_tokens[0] in {"typedef", "struct", "enum"}:
            continue
        is_static = "static" in return_tokens
        return_tokens = [
            token
            for token in return_tokens
            if token not in {"static", "inline", "extern"}
        ]
        if is_static or not return_tokens:
            continue
        params_text = match.group("params").strip()
        params: List[Tuple[str, str]] = []
        if params_text and params_text != "void":
            for raw_param in params_text.split(","):
                param_type, param_name = _split_declarator(raw_param.strip())
                if param_type == "void":
                    raise CParseError(
                        f"unnamed void parameter in {match.group('name')}"
                    )
                params.append((param_type, param_name))
        name = match.group("name")
        function = CFunction(
            name=name,
            return_type=_canonical(return_tokens),
            params=tuple(params),
            line=_line_of(defunct, match.start()),
        )
        previous = functions.get(name)
        if previous is not None and (
            previous.return_type != function.return_type
            or tuple(t for t, _ in previous.params)
            != tuple(t for t, _ in function.params)
        ):
            raise CParseError(
                f"prototype/definition mismatch for {name}: "
                f"{previous.return_type}({len(previous.params)} params) vs "
                f"{function.return_type}({len(function.params)} params)"
            )
        functions[name] = function
    return functions, structs
