"""Heavy changers and persistence queries across two summaries.

The gMatrix paper (the closest related work) extends graph sketches to
detect *edge heavy hitters* and *heavy changers*: edges whose aggregated
weight changed the most between two epochs — the signature of an onset of a
network attack or of a sudden communication burst.  GSS supports the same
analyses directly, because any two sketches (e.g. of two consecutive epochs)
can be compared edge by edge through the edge-query primitive.

The functions here take two stores that implement the query-primitive
protocol (typically two ``GSS`` instances built over consecutive windows, or a
sketch and an exact reference) plus the candidate edge set to examine, and
report absolute changes, relative changes and persistent edges.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Tuple

from repro.queries.primitives import GraphQueryInterface, edge_weight_or_zero

EdgeKey = Tuple[Hashable, Hashable]


def edge_changes(
    before: GraphQueryInterface,
    after: GraphQueryInterface,
    edges: Iterable[EdgeKey],
) -> List[Tuple[EdgeKey, float]]:
    """Signed weight change ``after - before`` for every candidate edge."""
    return [
        ((source, destination), edge_weight_or_zero(after, source, destination) - edge_weight_or_zero(before, source, destination))
        for source, destination in edges
    ]


def heavy_changers(
    before: GraphQueryInterface,
    after: GraphQueryInterface,
    edges: Iterable[EdgeKey],
    threshold: float,
) -> List[Tuple[EdgeKey, float]]:
    """Edges whose absolute weight change is at least ``threshold``.

    Results are sorted by decreasing absolute change (ties broken by the edge
    key) so the most suspicious edges come first.
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    changed = [
        (edge, delta)
        for edge, delta in edge_changes(before, after, edges)
        if abs(delta) >= threshold
    ]
    changed.sort(key=lambda item: (-abs(item[1]), repr(item[0])))
    return changed


def top_k_changers(
    before: GraphQueryInterface,
    after: GraphQueryInterface,
    edges: Iterable[EdgeKey],
    k: int,
) -> List[Tuple[EdgeKey, float]]:
    """The ``k`` edges with the largest absolute weight change."""
    if k < 0:
        raise ValueError("k must be non-negative")
    changed = edge_changes(before, after, edges)
    changed.sort(key=lambda item: (-abs(item[1]), repr(item[0])))
    return changed[:k]


def relative_changers(
    before: GraphQueryInterface,
    after: GraphQueryInterface,
    edges: Iterable[EdgeKey],
    ratio: float,
    minimum_weight: float = 1.0,
) -> List[Tuple[EdgeKey, float]]:
    """Edges whose weight grew (or shrank) by at least a multiplicative ``ratio``.

    ``minimum_weight`` filters out noise from edges that were essentially
    absent in both epochs.  Edges absent before but present after are treated
    as infinite growth and always reported (with the after-weight as the
    reported factor).
    """
    if ratio <= 0:
        raise ValueError("ratio must be positive")
    results: List[Tuple[EdgeKey, float]] = []
    for source, destination in edges:
        old = edge_weight_or_zero(before, source, destination)
        new = edge_weight_or_zero(after, source, destination)
        if max(old, new) < minimum_weight:
            continue
        if old == 0.0:
            results.append(((source, destination), new))
            continue
        factor = new / old
        if factor >= ratio or (factor > 0 and factor <= 1.0 / ratio):
            results.append(((source, destination), factor))
    results.sort(key=lambda item: (-item[1], repr(item[0])))
    return results


def persistent_edges(
    stores: Iterable[GraphQueryInterface],
    edges: Iterable[EdgeKey],
    minimum_weight: float = 1.0,
) -> List[EdgeKey]:
    """Edges present (with at least ``minimum_weight``) in *every* summary.

    Persistence across epochs distinguishes long-lived relationships (stable
    service dependencies, recurring correspondents) from one-off events, a
    standard analysis on communication graphs.
    """
    store_list = list(stores)
    if not store_list:
        raise ValueError("persistent_edges needs at least one store")
    persistent: List[EdgeKey] = []
    for source, destination in edges:
        if all(
            edge_weight_or_zero(store, source, destination) >= minimum_weight
            for store in store_list
        ):
            persistent.append((source, destination))
    return persistent


def new_edges(
    before: GraphQueryInterface,
    after: GraphQueryInterface,
    edges: Iterable[EdgeKey],
) -> List[EdgeKey]:
    """Candidate edges absent in ``before`` but present in ``after``.

    On sketches "absent" means the edge query returned ``None``, so false
    positives in ``before`` can only *hide* new edges, never invent them —
    the answer has one-sided error like the underlying primitive.
    """
    return [
        (source, destination)
        for source, destination in edges
        if before.edge_query(source, destination) is None
        and after.edge_query(source, destination) is not None
    ]


def vanished_edges(
    before: GraphQueryInterface,
    after: GraphQueryInterface,
    edges: Iterable[EdgeKey],
) -> List[EdgeKey]:
    """Candidate edges present in ``before`` but absent in ``after``."""
    return [
        (source, destination)
        for source, destination in edges
        if before.edge_query(source, destination) is not None
        and after.edge_query(source, destination) is None
    ]
