"""The full Graph Stream Sketch (Section V of the paper).

The sketch stores the graph sketch ``Gh`` (obtained by hashing node IDs into
``[0, M)`` with ``M = m * F``) in an ``m x m`` matrix of buckets plus a small
left-over buffer.  Every bucket holds ``l`` rooms; every room records the
fingerprint pair, the index pair (which member of each endpoint's address
sequence produced this row/column) and the aggregated weight.

Square hashing gives every node ``r`` alternative rows/columns derived from a
linear-congruential sequence seeded by its fingerprint, and candidate-bucket
sampling probes only ``k`` of the resulting ``r * r`` buckets per edge.  Both
optimizations — and the number of rooms — can be switched off to reproduce the
paper's ablations.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.core.buffer import LeftoverBuffer
from repro.core.config import GSSConfig
from repro.core.reverse_index import NodeIndex
from repro.hashing.hash_functions import NodeHasher
from repro.hashing.linear_congruence import (
    LinearCongruentialSequence,
    address_sequence,
    candidate_sequence,
    recover_address,
    unique_candidates,
)
from repro.queries.primitives import EDGE_NOT_FOUND

# A room is a mutable 5-slot list: [f_s, f_d, i_s, i_d, weight].
_ROOM_SOURCE_FP = 0
_ROOM_DEST_FP = 1
_ROOM_SOURCE_INDEX = 2
_ROOM_DEST_INDEX = 3
_ROOM_WEIGHT = 4


class GSS:
    """Graph Stream Sketch with square hashing, sampling and multiple rooms.

    Parameters are supplied through :class:`~repro.core.config.GSSConfig`;
    the most common construction is::

        sketch = GSS(GSSConfig.for_edge_count(expected_edges=100_000))
        for item in stream:
            sketch.update(item.source, item.destination, item.weight)
        weight = sketch.edge_query("a", "b")
        successors = sketch.successor_query("a")
    """

    def __init__(self, config: GSSConfig) -> None:
        self.config = config
        self._width = config.matrix_width
        self._fingerprint_range = config.fingerprint_range
        self._hasher = NodeHasher(value_range=config.hash_range, seed=config.seed)
        self._lcg = LinearCongruentialSequence()
        # One slot per bucket; a bucket is lazily created as a list of rooms.
        self._buckets: List[Optional[List[List]]] = [None] * (self._width * self._width)
        self._buffer = LeftoverBuffer()
        self._node_index: Optional[NodeIndex] = NodeIndex() if config.keep_node_index else None
        self._matrix_edge_count = 0
        self._update_count = 0
        self._address_cache: Dict[int, List[int]] = {}

    # -- hashing helpers -----------------------------------------------------

    def node_hash(self, node: Hashable) -> int:
        """``H(node)`` in ``[0, m * F)``."""
        return self._hasher(node)

    def _split(self, node_hash: int) -> Tuple[int, int]:
        """Split ``H(v)`` into ``(h(v), f(v))``."""
        return node_hash // self._fingerprint_range, node_hash % self._fingerprint_range

    def _addresses(self, node_hash: int) -> List[int]:
        """The square-hashing address sequence ``{h_i(v)}`` of a node hash."""
        cached = self._address_cache.get(node_hash)
        if cached is not None:
            return cached
        base_address, fingerprint = self._split(node_hash)
        if self.config.square_hashing:
            addresses = address_sequence(
                base_address,
                fingerprint,
                self.config.sequence_length,
                self._width,
                self._lcg,
            )
        else:
            addresses = [base_address % self._width]
        self._address_cache[node_hash] = addresses
        return addresses

    def _candidate_pairs(
        self, source_fingerprint: int, destination_fingerprint: int
    ) -> List[Tuple[int, int]]:
        """Which (row-index, column-index) pairs to probe for an edge.

        Returns 0-based indices into the two address sequences, in probe
        order.  Without square hashing there is a single pair; without
        sampling all ``r * r`` pairs are probed row-first.
        """
        if not self.config.square_hashing:
            return [(0, 0)]
        r = self.config.sequence_length
        if not self.config.sampling:
            return [(i, j) for i in range(r) for j in range(r)]
        pairs = candidate_sequence(
            source_fingerprint,
            destination_fingerprint,
            self.config.candidate_buckets,
            r,
            self._lcg,
        )
        return unique_candidates(pairs)

    def _bucket_at(self, row: int, column: int) -> Optional[List[List]]:
        return self._buckets[row * self._width + column]

    def _ensure_bucket(self, row: int, column: int) -> List[List]:
        position = row * self._width + column
        bucket = self._buckets[position]
        if bucket is None:
            bucket = []
            self._buckets[position] = bucket
        return bucket

    # -- updates ---------------------------------------------------------------

    def update(self, source: Hashable, destination: Hashable, weight: float = 1.0) -> None:
        """Apply one stream item: add ``weight`` to edge ``source -> destination``.

        Negative weights model deletions of earlier items, exactly as in the
        streaming-graph semantics of Definition 1.
        """
        self._update_count += 1
        source_hash = self._hasher(source)
        destination_hash = self._hasher(destination)
        if self._node_index is not None:
            self._node_index.record(source, source_hash)
            self._node_index.record(destination, destination_hash)
        self._insert_sketch_edge(source_hash, destination_hash, weight)

    def update_by_hash(
        self, source_hash: int, destination_hash: int, weight: float = 1.0
    ) -> None:
        """Apply one sketch-level update addressed by node hashes directly.

        Used when merging sketches or replaying edges recovered with
        :meth:`reconstruct_sketch_edges`, where the original node IDs may no
        longer be available.  The reverse node index is left untouched.
        """
        self._update_count += 1
        self._insert_sketch_edge(source_hash, destination_hash, weight)

    def _insert_sketch_edge(
        self, source_hash: int, destination_hash: int, weight: float
    ) -> None:
        """Insert (or aggregate) one edge of the graph sketch ``Gh``."""
        _, source_fp = self._split(source_hash)
        _, destination_fp = self._split(destination_hash)
        source_addresses = self._addresses(source_hash)
        destination_addresses = self._addresses(destination_hash)
        rooms_per_bucket = self.config.rooms

        for source_index, destination_index in self._candidate_pairs(source_fp, destination_fp):
            row = source_addresses[source_index]
            column = destination_addresses[destination_index]
            bucket = self._bucket_at(row, column)
            stored_source_index = source_index + 1
            stored_destination_index = destination_index + 1
            if bucket is not None:
                for room in bucket:
                    if (
                        room[_ROOM_SOURCE_FP] == source_fp
                        and room[_ROOM_DEST_FP] == destination_fp
                        and room[_ROOM_SOURCE_INDEX] == stored_source_index
                        and room[_ROOM_DEST_INDEX] == stored_destination_index
                    ):
                        room[_ROOM_WEIGHT] += weight
                        return
            occupied = 0 if bucket is None else len(bucket)
            if occupied < rooms_per_bucket:
                bucket = self._ensure_bucket(row, column)
                bucket.append(
                    [
                        source_fp,
                        destination_fp,
                        stored_source_index,
                        stored_destination_index,
                        weight,
                    ]
                )
                self._matrix_edge_count += 1
                return
        self._buffer.add(source_hash, destination_hash, weight)

    # -- query primitives -------------------------------------------------------

    def edge_query(self, source: Hashable, destination: Hashable) -> float:
        """Return the aggregated weight of ``source -> destination`` or ``-1``.

        Only over-estimation errors are possible (when the additions cumulate
        weights): if the true edge exists its weight is always reported.
        """
        source_hash = self._hasher(source)
        destination_hash = self._hasher(destination)
        return self.edge_query_by_hash(source_hash, destination_hash)

    def edge_query_by_hash(self, source_hash: int, destination_hash: int) -> float:
        """Edge query addressed directly by sketch hashes."""
        _, source_fp = self._split(source_hash)
        _, destination_fp = self._split(destination_hash)
        source_addresses = self._addresses(source_hash)
        destination_addresses = self._addresses(destination_hash)

        for source_index, destination_index in self._candidate_pairs(source_fp, destination_fp):
            row = source_addresses[source_index]
            column = destination_addresses[destination_index]
            bucket = self._bucket_at(row, column)
            if bucket is None:
                continue
            stored_source_index = source_index + 1
            stored_destination_index = destination_index + 1
            for room in bucket:
                if (
                    room[_ROOM_SOURCE_FP] == source_fp
                    and room[_ROOM_DEST_FP] == destination_fp
                    and room[_ROOM_SOURCE_INDEX] == stored_source_index
                    and room[_ROOM_DEST_INDEX] == stored_destination_index
                ):
                    return room[_ROOM_WEIGHT]
        buffered = self._buffer.get(source_hash, destination_hash)
        if buffered is not None:
            return buffered
        return EDGE_NOT_FOUND

    def successor_hashes(self, node: Hashable) -> Set[int]:
        """Sketch hashes of the 1-hop successors of ``node``."""
        node_hash = self._hasher(node)
        return self._neighbor_hashes(node_hash, forward=True)

    def precursor_hashes(self, node: Hashable) -> Set[int]:
        """Sketch hashes of the 1-hop precursors of ``node``."""
        node_hash = self._hasher(node)
        return self._neighbor_hashes(node_hash, forward=False)

    def _neighbor_hashes(self, node_hash: int, forward: bool) -> Set[int]:
        """Scan ``r`` rows (or columns) for edges touching ``node_hash``.

        ``forward=True`` looks for out-going edges (successors): the node's
        fingerprint must match the *source* fingerprint of a room and the
        room's source index must equal the row's position in the node's
        address sequence.  The destination hash is then recovered from the
        column, the destination fingerprint and the destination index
        (Theorem 1 reversibility).  ``forward=False`` is the symmetric column
        scan for precursors.
        """
        _, fingerprint = self._split(node_hash)
        addresses = self._addresses(node_hash)
        found: Set[int] = set()
        width = self._width

        own_fp_slot = _ROOM_SOURCE_FP if forward else _ROOM_DEST_FP
        own_index_slot = _ROOM_SOURCE_INDEX if forward else _ROOM_DEST_INDEX
        other_fp_slot = _ROOM_DEST_FP if forward else _ROOM_SOURCE_FP
        other_index_slot = _ROOM_DEST_INDEX if forward else _ROOM_SOURCE_INDEX

        for position, address in enumerate(addresses):
            expected_index = position + 1
            for offset in range(width):
                if forward:
                    bucket = self._bucket_at(address, offset)
                else:
                    bucket = self._bucket_at(offset, address)
                if bucket is None:
                    continue
                for room in bucket:
                    if room[own_fp_slot] != fingerprint:
                        continue
                    if room[own_index_slot] != expected_index:
                        continue
                    other_fp = room[other_fp_slot]
                    other_index = room[other_index_slot]
                    if self.config.square_hashing:
                        other_base = recover_address(
                            offset, other_fp, other_index, width, self._lcg
                        )
                    else:
                        other_base = offset
                    found.add(other_base * self._fingerprint_range + other_fp)

        if forward:
            found.update(self._buffer.successors_of(node_hash))
        else:
            found.update(self._buffer.precursors_of(node_hash))
        return found

    def successor_query(self, node: Hashable) -> Set[Hashable]:
        """Original node IDs that are 1-hop reachable from ``node``.

        Requires the reverse node index (``keep_node_index=True``).  The
        result can only contain false positives, never miss a true successor.
        """
        return self._expand(self.successor_hashes(node))

    def precursor_query(self, node: Hashable) -> Set[Hashable]:
        """Original node IDs that reach ``node`` in one hop."""
        return self._expand(self.precursor_hashes(node))

    def _expand(self, hashes: Set[int]) -> Set[Hashable]:
        if self._node_index is None:
            raise RuntimeError(
                "successor/precursor queries over original IDs require "
                "keep_node_index=True; use successor_hashes/precursor_hashes instead"
            )
        return self._node_index.expand(hashes)

    # -- compound helpers -------------------------------------------------------

    def node_out_weight(self, node: Hashable) -> float:
        """Node query: total weight of out-going edges of ``node``.

        Computed by summing the edge-query estimate over the recovered
        successor hashes, which mirrors how the paper composes node queries
        from the primitives.
        """
        node_hash = self._hasher(node)
        total = 0.0
        for successor_hash in self._neighbor_hashes(node_hash, forward=True):
            weight = self.edge_query_by_hash(node_hash, successor_hash)
            if weight != EDGE_NOT_FOUND:
                total += weight
        return total

    def node_in_weight(self, node: Hashable) -> float:
        """Total weight of in-coming edges of ``node``."""
        node_hash = self._hasher(node)
        total = 0.0
        for precursor_hash in self._neighbor_hashes(node_hash, forward=False):
            weight = self.edge_query_by_hash(precursor_hash, node_hash)
            if weight != EDGE_NOT_FOUND:
                total += weight
        return total

    def reconstruct_sketch_edges(self) -> List[Tuple[int, int, float]]:
        """Recover every edge of the graph sketch ``Gh`` stored in the matrix
        and buffer as ``(H(s), H(d), weight)`` triples.

        This demonstrates the paper's claim that the whole graph can be
        re-constructed from the data structure.
        """
        edges: List[Tuple[int, int, float]] = []
        width = self._width
        for row in range(width):
            for column in range(width):
                bucket = self._bucket_at(row, column)
                if bucket is None:
                    continue
                for room in bucket:
                    source_fp = room[_ROOM_SOURCE_FP]
                    destination_fp = room[_ROOM_DEST_FP]
                    if self.config.square_hashing:
                        source_base = recover_address(
                            row, source_fp, room[_ROOM_SOURCE_INDEX], width, self._lcg
                        )
                        destination_base = recover_address(
                            column, destination_fp, room[_ROOM_DEST_INDEX], width, self._lcg
                        )
                    else:
                        source_base = row
                        destination_base = column
                    edges.append(
                        (
                            source_base * self._fingerprint_range + source_fp,
                            destination_base * self._fingerprint_range + destination_fp,
                            room[_ROOM_WEIGHT],
                        )
                    )
        edges.extend(self._buffer.edges())
        return edges

    # -- introspection ------------------------------------------------------------

    @property
    def node_index(self) -> Optional[NodeIndex]:
        """The reverse node table, or ``None`` when disabled."""
        return self._node_index

    @property
    def buffer(self) -> LeftoverBuffer:
        """The left-over edge buffer."""
        return self._buffer

    @property
    def matrix_edge_count(self) -> int:
        """Distinct sketch edges stored in matrix rooms."""
        return self._matrix_edge_count

    @property
    def buffer_edge_count(self) -> int:
        """Distinct sketch edges stored in the left-over buffer."""
        return len(self._buffer)

    @property
    def update_count(self) -> int:
        """Number of stream items applied so far."""
        return self._update_count

    @property
    def buffer_percentage(self) -> float:
        """Fraction of stored sketch edges that had to go to the buffer."""
        total = self._matrix_edge_count + len(self._buffer)
        if total == 0:
            return 0.0
        return len(self._buffer) / total

    def occupancy(self) -> float:
        """Fraction of matrix rooms currently occupied."""
        capacity = self._width * self._width * self.config.rooms
        return self._matrix_edge_count / capacity if capacity else 0.0

    def memory_bytes(self, include_node_index: bool = False) -> int:
        """Memory footprint under the paper's C layout (see GSSConfig)."""
        total = self.config.matrix_memory_bytes() + self._buffer.memory_bytes()
        if include_node_index and self._node_index is not None:
            total += self._node_index.memory_bytes()
        return total

    def ingest(self, edges: Sequence) -> "GSS":
        """Feed an iterable of :class:`~repro.streaming.edge.StreamEdge`."""
        for edge in edges:
            self.update(edge.source, edge.destination, edge.weight)
        return self
