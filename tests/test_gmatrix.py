"""Unit tests for the gMatrix baseline."""

import pytest

from repro.baselines.gmatrix import GMatrix
from repro.queries.primitives import EDGE_NOT_FOUND, consume_stream


class TestGMatrix:
    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            GMatrix(width=0)

    def test_edge_query_never_underestimates(self, paper_stream):
        gmatrix = consume_stream(GMatrix(width=32), paper_stream)
        for key, weight in paper_stream.aggregate_weights().items():
            assert gmatrix.edge_query(*key) >= weight

    def test_unknown_nodes_not_found(self):
        gmatrix = GMatrix(width=16)
        gmatrix.update("a", "b")
        assert gmatrix.edge_query("x", "y") is None

    def test_successors_superset_of_truth(self, paper_stream):
        gmatrix = consume_stream(GMatrix(width=64), paper_stream)
        truth = paper_stream.successors()
        for node, successors in truth.items():
            assert successors <= gmatrix.successor_query(node)

    def test_precursors_superset_of_truth(self, paper_stream):
        gmatrix = consume_stream(GMatrix(width=64), paper_stream)
        truth = paper_stream.precursors()
        for node, precursors in truth.items():
            assert precursors <= gmatrix.precursor_query(node)

    def test_unknown_node_has_no_neighbors(self):
        gmatrix = GMatrix(width=16)
        assert gmatrix.successor_query("ghost") == set()
        assert gmatrix.precursor_query("ghost") == set()

    def test_accuracy_far_below_gss_like_tcm(self, small_stream):
        """gMatrix shares TCM's limitation: its hash range is only the matrix
        width, so successor precision is poor compared to a GSS of similar
        matrix size (the paper reports gMatrix as "no better than TCM")."""
        from repro.core.config import GSSConfig
        from repro.core.gss import GSS
        from repro.metrics.accuracy import average_precision

        truth = small_stream.successors()
        nodes = small_stream.nodes()[:60]
        width = 128
        gmatrix = consume_stream(GMatrix(width=width, seed=2), small_stream)
        gss = GSS(
            GSSConfig(matrix_width=36, fingerprint_bits=16, sequence_length=8, candidate_buckets=8)
        )
        gss.ingest(small_stream)

        def precision_of(store):
            return average_precision(
                [(truth.get(node, set()), store.successor_query(node)) for node in nodes]
            )

        gmatrix_precision = precision_of(gmatrix)
        gss_precision = precision_of(gss)
        assert gmatrix_precision < 0.8
        assert gss_precision > gmatrix_precision + 0.15

    def test_node_out_weight(self, paper_stream):
        gmatrix = consume_stream(GMatrix(width=64), paper_stream)
        truth = paper_stream.node_out_weights()
        for node, weight in truth.items():
            assert gmatrix.node_out_weight(node) >= weight

    def test_memory_and_update_count(self, paper_stream):
        gmatrix = consume_stream(GMatrix(width=10), paper_stream)
        assert gmatrix.memory_bytes() == 400
        assert gmatrix.update_count == len(paper_stream)
