"""Unit tests for the node-hashing substrate."""

import pytest

from repro.hashing.hash_functions import (
    NodeHasher,
    fingerprint_of,
    hash_key,
    hash_string,
    split_hash,
)


class TestHashString:
    def test_deterministic(self):
        assert hash_string("node-42") == hash_string("node-42")

    def test_different_keys_differ(self):
        assert hash_string("a") != hash_string("b")

    def test_seed_changes_value(self):
        assert hash_string("a", seed=1) != hash_string("a", seed=2)

    def test_64_bit_range(self):
        value = hash_string("anything")
        assert 0 <= value < 2 ** 64

    def test_empty_string_supported(self):
        assert isinstance(hash_string(""), int)


class TestHashKey:
    def test_int_keys(self):
        assert hash_key(7) == hash_key(7)
        assert hash_key(7) != hash_key(8)

    def test_bytes_keys(self):
        assert hash_key(b"ip-10.0.0.1") == hash_key(b"ip-10.0.0.1")

    def test_tuple_keys(self):
        assert hash_key(("a", "b")) == hash_key(("a", "b"))
        assert hash_key(("a", "b")) != hash_key(("b", "a"))

    def test_int_seed_independence(self):
        assert hash_key(7, seed=1) != hash_key(7, seed=2)


class TestSplitHash:
    def test_split_is_divmod(self):
        address, fingerprint = split_hash(1234567, 256)
        assert address == 1234567 // 256
        assert fingerprint == 1234567 % 256

    def test_fingerprint_of_matches_split(self):
        assert fingerprint_of(999, 64) == split_hash(999, 64)[1]

    def test_rejects_non_positive_range(self):
        with pytest.raises(ValueError):
            split_hash(10, 0)


class TestNodeHasher:
    def test_values_in_range(self):
        hasher = NodeHasher(value_range=1000)
        assert all(0 <= hasher(f"n{i}") < 1000 for i in range(200))

    def test_deterministic_across_instances(self):
        assert NodeHasher(500)("x") == NodeHasher(500)("x")

    def test_seeds_give_independent_functions(self):
        a = NodeHasher(10_000, seed=1)
        b = NodeHasher(10_000, seed=2)
        values_a = [a(f"n{i}") for i in range(100)]
        values_b = [b(f"n{i}") for i in range(100)]
        assert values_a != values_b

    def test_address_and_fingerprint(self):
        hasher = NodeHasher(value_range=16 * 256)
        address, fingerprint = hasher.address_and_fingerprint("v", 256)
        assert hasher("v") == address * 256 + fingerprint
        assert 0 <= address < 16
        assert 0 <= fingerprint < 256

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            NodeHasher(value_range=0)

    def test_distribution_roughly_uniform(self):
        hasher = NodeHasher(value_range=10)
        counts = [0] * 10
        for i in range(5000):
            counts[hasher(f"node-{i}")] += 1
        assert min(counts) > 300  # perfectly uniform would be 500 per bin
