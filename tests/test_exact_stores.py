"""Unit tests for the exact adjacency-list and adjacency-matrix stores."""

import pytest

from repro.exact.adjacency_list import AdjacencyListGraph
from repro.exact.adjacency_matrix import AdjacencyMatrixGraph
from repro.queries.primitives import EDGE_NOT_FOUND, consume_stream


@pytest.fixture(params=[AdjacencyListGraph, AdjacencyMatrixGraph])
def store_class(request):
    return request.param


class TestExactStoresSharedBehaviour:
    def test_missing_edge_is_not_found(self, store_class):
        store = store_class()
        assert store.edge_query("a", "b") is None

    def test_weights_accumulate(self, store_class):
        store = store_class()
        store.update("a", "b", 2.0)
        store.update("a", "b", 3.0)
        assert store.edge_query("a", "b") == 5.0

    def test_direction_matters(self, store_class):
        store = store_class()
        store.update("a", "b", 1.0)
        assert store.edge_query("b", "a") is None

    def test_successors_and_precursors(self, store_class):
        store = store_class()
        store.update("a", "b")
        store.update("a", "c")
        store.update("d", "a")
        assert store.successor_query("a") == {"b", "c"}
        assert store.precursor_query("a") == {"d"}
        assert store.successor_query("zzz") == set()

    def test_matches_stream_ground_truth(self, store_class, paper_stream):
        store = consume_stream(store_class(), paper_stream)
        truth = paper_stream.aggregate_weights()
        for key, weight in truth.items():
            assert store.edge_query(*key) == weight
        assert store.successor_query("a") == paper_stream.successors()["a"]
        assert store.precursor_query("f") == paper_stream.precursors()["f"]


class TestAdjacencyListSpecifics:
    def test_counts(self, paper_stream):
        store = consume_stream(AdjacencyListGraph(), paper_stream)
        assert store.edge_count == 11
        assert store.node_count == 7
        assert len(store.edges()) == 11
        assert store.nodes() == set("abcdefg")

    def test_degrees(self, paper_stream):
        store = consume_stream(AdjacencyListGraph(), paper_stream)
        assert store.out_degree("a") == 5
        assert store.in_degree("f") == 3
        assert store.out_degree("unknown") == 0

    def test_node_weights(self, paper_stream):
        store = consume_stream(AdjacencyListGraph(), paper_stream)
        truth = paper_stream.node_out_weights()
        assert store.node_out_weight("a") == truth["a"]
        assert store.node_in_weight("f") == sum(
            w for (s, d), w in paper_stream.aggregate_weights().items() if d == "f"
        )

    def test_deletion_removes_edge(self):
        store = AdjacencyListGraph()
        store.update("a", "b", 3.0)
        store.update("a", "b", -3.0)
        assert store.edge_query("a", "b") is None
        assert store.edge_count == 0
        assert store.successor_query("a") == set()

    def test_partial_deletion_keeps_edge(self):
        store = AdjacencyListGraph()
        store.update("a", "b", 3.0)
        store.update("a", "b", -1.0)
        assert store.edge_query("a", "b") == 2.0


class TestAdjacencyMatrixSpecifics:
    def test_counts(self, paper_stream):
        store = consume_stream(AdjacencyMatrixGraph(), paper_stream)
        assert store.node_count == 7
        assert store.edge_count == 11

    def test_zero_weight_cell_removed(self):
        store = AdjacencyMatrixGraph()
        store.update("a", "b", 2.0)
        store.update("a", "b", -2.0)
        assert store.edge_query("a", "b") is None
