"""Tests for the GSS ensemble and the weighted path queries."""

from __future__ import annotations

import pytest

from repro.core.config import GSSConfig
from repro.core.ensemble import GSSEnsemble
from repro.core.gss import GSS
from repro.exact.adjacency_list import AdjacencyListGraph
from repro.queries.primitives import EDGE_NOT_FOUND
from repro.queries.weighted_paths import (
    dijkstra_distance,
    dijkstra_path,
    single_source_distances,
    widest_path_capacity,
)


def tight_config(**overrides) -> GSSConfig:
    defaults = dict(
        matrix_width=12, fingerprint_bits=6, sequence_length=4, candidate_buckets=4, seed=5
    )
    defaults.update(overrides)
    return GSSConfig(**defaults)


class TestEnsemble:
    def test_rejects_zero_members(self):
        with pytest.raises(ValueError):
            GSSEnsemble(tight_config(), sketches=0)

    def test_members_use_distinct_seeds(self):
        ensemble = GSSEnsemble(tight_config(), sketches=3)
        seeds = {member.config.seed for member in ensemble.members}
        assert len(seeds) == 3

    def test_edge_query_returns_minimum(self):
        ensemble = GSSEnsemble(tight_config(), sketches=3)
        ensemble.update("a", "b", 4.0)
        assert ensemble.edge_query("a", "b") == pytest.approx(4.0)

    def test_missing_edge(self):
        ensemble = GSSEnsemble(tight_config(), sketches=2)
        ensemble.update("a", "b")
        assert ensemble.edge_query("x", "y") is None

    def test_never_underestimates(self, small_stream):
        ensemble = GSSEnsemble(tight_config(matrix_width=24), sketches=2)
        ensemble.ingest(small_stream)
        truth = small_stream.aggregate_weights()
        for key, weight in list(truth.items())[:80]:
            assert ensemble.edge_query(*key) >= weight

    def test_no_false_negative_successors(self, small_stream):
        ensemble = GSSEnsemble(tight_config(matrix_width=24), sketches=2)
        ensemble.ingest(small_stream)
        successors = small_stream.successors()
        for node in list(successors)[:40]:
            assert successors[node] <= ensemble.successor_query(node)
            assert small_stream.precursors().get(node, set()) <= ensemble.precursor_query(node) | set()

    def test_ensemble_at_least_as_accurate_as_worst_member(self, small_stream):
        ensemble = GSSEnsemble(tight_config(matrix_width=16, fingerprint_bits=4), sketches=3)
        ensemble.ingest(small_stream)
        truth = small_stream.aggregate_weights()
        ensemble_error = 0.0
        worst_member_error = 0.0
        for key, weight in list(truth.items())[:100]:
            ensemble_error += ensemble.edge_query(*key) - weight
            worst_member_error = max(
                worst_member_error,
                sum(member.edge_query(*key) - weight for member in ensemble.members[:1]),
            )
        assert ensemble_error <= sum(
            member.edge_query(*key) - weight
            for member in ensemble.members[:1]
            for key, weight in list(truth.items())[:100]
        ) + 1e-6

    def test_node_weights_take_minimum(self):
        ensemble = GSSEnsemble(tight_config(), sketches=2)
        ensemble.update("a", "b", 2.0)
        ensemble.update("a", "c", 3.0)
        ensemble.update("z", "a", 4.0)
        assert ensemble.node_out_weight("a") >= 5.0
        assert ensemble.node_in_weight("a") >= 4.0

    def test_memory_scales_with_members(self):
        single = GSSEnsemble(tight_config(), sketches=1).memory_bytes()
        triple = GSSEnsemble(tight_config(), sketches=3).memory_bytes()
        assert triple == 3 * single

    def test_update_count_and_buffer_stats(self):
        ensemble = GSSEnsemble(tight_config(), sketches=2)
        for index in range(5):
            ensemble.update(f"s{index}", f"d{index}")
        assert ensemble.update_count == 5
        assert 0.0 <= ensemble.buffer_percentage <= 1.0


def weighted_store() -> AdjacencyListGraph:
    """a -> b (1), b -> c (1), a -> c (5), c -> d (2)."""
    store = AdjacencyListGraph()
    store.update("a", "b", 1.0)
    store.update("b", "c", 1.0)
    store.update("a", "c", 5.0)
    store.update("c", "d", 2.0)
    return store


class TestDijkstra:
    def test_prefers_cheaper_two_hop_path(self):
        assert dijkstra_distance(weighted_store(), "a", "c") == pytest.approx(2.0)

    def test_path_reconstruction(self):
        assert dijkstra_path(weighted_store(), "a", "c") == ["a", "b", "c"]

    def test_unreachable_returns_none(self):
        store = weighted_store()
        assert dijkstra_distance(store, "d", "a") is None
        assert dijkstra_path(store, "d", "a") is None

    def test_source_equals_destination(self):
        assert dijkstra_distance(weighted_store(), "a", "a") == 0.0
        assert dijkstra_path(weighted_store(), "a", "a") == ["a"]

    def test_single_source_distances(self):
        distances = single_source_distances(weighted_store(), "a")
        assert distances["d"] == pytest.approx(4.0)
        assert distances["b"] == pytest.approx(1.0)

    def test_max_nodes_cap(self):
        distances = single_source_distances(weighted_store(), "a", max_nodes=2)
        assert len(distances) == 2

    def test_rejects_negative_weights(self):
        store = AdjacencyListGraph()
        store.update("a", "b", -2.0)
        with pytest.raises(ValueError):
            dijkstra_distance(store, "a", "b")

    def test_on_sketch_never_misses_connectivity(self, small_stream):
        stats = small_stream.statistics()
        sketch = GSS(
            GSSConfig.for_edge_count(stats.distinct_edges, sequence_length=4, candidate_buckets=4)
        ).ingest(small_stream)
        exact = AdjacencyListGraph()
        for edge in small_stream:
            exact.update(edge.source, edge.destination, edge.weight)
        source = small_stream.nodes()[0]
        exact_distances = single_source_distances(exact, source, max_nodes=50)
        for node in exact_distances:
            assert dijkstra_distance(sketch, source, node, max_nodes=3000) is not None


class TestWidestPath:
    def test_direct_edge_capacity(self):
        assert widest_path_capacity(weighted_store(), "a", "c") == pytest.approx(5.0)

    def test_bottleneck_along_chain(self):
        assert widest_path_capacity(weighted_store(), "a", "d") == pytest.approx(2.0)

    def test_unreachable(self):
        assert widest_path_capacity(weighted_store(), "d", "a") is None

    def test_source_is_destination(self):
        assert widest_path_capacity(weighted_store(), "a", "a") == float("inf")
