"""``repro.api`` — the stable public surface of the package.

Three pieces make up the API (see the README's "Public API" section for a
walkthrough):

* the :class:`GraphSummary` protocol — the contract every summary structure
  satisfies (updates, ``Optional``-returning edge queries, 1-hop
  neighbourhood queries, node weights, memory accounting, serialization and
  a :class:`Capabilities` descriptor for the optional parts);
* the sketch registry and factory — :func:`build` turns a declarative
  :class:`SketchSpec` (sketch name, parameters, backend, memory budget) into
  an instance, with the equal-memory byte→shape arithmetic of the paper's
  comparisons done per sketch in one place; :func:`list_sketches` and
  :func:`sketch_info` introspect the registry, :func:`register_sketch` adds
  new structures, and :func:`from_dict` restores any serializable sketch
  from its snapshot document;
* the :class:`StreamSession` ingestion facade — dataset/stream → summary
  through the chunked batched-update path, with throughput metrics and
  progress hooks.

Quickstart::

    from repro.api import SketchSpec, StreamSession, build, list_sketches

    session = StreamSession("gss")                    # auto-sized from the stream
    session.feed_dataset("email-EuAll", scale=0.25)
    summary = session.summary
    summary.edge_query("n1", "n2")                    # float or None

    tcm = build(SketchSpec("tcm", memory_bytes=8 * summary.memory_bytes()))
    list_sketches()                                   # everything registered
"""

from repro.api.adapters import TriestSummary
from repro.api.protocol import (
    Capabilities,
    GraphQueryInterface,
    GraphSummary,
    ShardIngestStats,
    UnsupportedQueryError,
)
from repro.api.registry import (
    SketchInfo,
    SketchSpec,
    SpecSizingError,
    build,
    from_dict,
    list_sketches,
    register_sketch,
    sketch_info,
)
from repro.api.session import IngestReport, StreamSession

__all__ = [
    "Capabilities",
    "GraphQueryInterface",
    "GraphSummary",
    "IngestReport",
    "ShardIngestStats",
    "SketchInfo",
    "SketchSpec",
    "SpecSizingError",
    "StreamSession",
    "TriestSummary",
    "UnsupportedQueryError",
    "build",
    "from_dict",
    "list_sketches",
    "register_sketch",
    "sketch_info",
]
