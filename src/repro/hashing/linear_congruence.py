"""Linear-congruential sequences for square hashing.

Square hashing (Section V-A of the paper) derives, for every node ``v``, a
sequence of ``r`` alternative matrix addresses

    q_1(v) = (a * f(v) + b) % p
    q_i(v) = (a * q_{i-1}(v) + b) % p
    h_i(v) = (h(v) + q_i(v)) % m

seeded by the node's fingerprint ``f(v)``.  The sequence must be *independent*
(pairwise collisions of different fingerprints look random) and *reversible*
(from ``h_i(v)``, ``i`` and ``f(v)`` the original address ``h(v)`` can be
recovered) — both hold for a linear congruential generator with a full cycle.

Candidate-bucket sampling (Section V-B1) uses the same generator seeded by
``f(s) + f(d)`` to pick ``k`` of the ``r * r`` mapped buckets for an edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

#: Multiplier / increment / modulus triples with good lattice structure, in the
#: spirit of L'Ecuyer's tables.  The modulus is prime so the generator has a
#: long cycle for every non-degenerate seed.
_LCG_PARAMETER_TABLE: Tuple[Tuple[int, int, int], ...] = (
    (1103515245, 12345, 2147483647),
    (69069, 1, 2147483647),
    (40692, 3, 2147483399),
    (48271, 11, 2147483647),
)


def default_lcg_params(index: int = 0) -> Tuple[int, int, int]:
    """Return an ``(a, b, p)`` parameter triple from the built-in table."""
    return _LCG_PARAMETER_TABLE[index % len(_LCG_PARAMETER_TABLE)]


@dataclass(frozen=True)
class LinearCongruentialSequence:
    """A reusable LR-sequence generator ``q_i = (a * q_{i-1} + b) % p``."""

    multiplier: int = 1103515245
    increment: int = 12345
    modulus: int = 2147483647

    def __post_init__(self) -> None:
        if self.modulus <= 1:
            raise ValueError("modulus must be greater than 1")
        if self.multiplier % self.modulus == 0:
            raise ValueError("multiplier must not be a multiple of the modulus")

    def generate(self, seed: int, length: int) -> List[int]:
        """Return the first ``length`` values of the sequence seeded by ``seed``."""
        if length < 0:
            raise ValueError("length must be non-negative")
        values: List[int] = []
        current = seed % self.modulus
        for _ in range(length):
            current = (self.multiplier * current + self.increment) % self.modulus
            values.append(current)
        return values

    def value_at(self, seed: int, index: int) -> int:
        """Return the ``index``-th (1-based) value of the sequence for ``seed``."""
        if index < 1:
            raise ValueError("index is 1-based and must be >= 1")
        current = seed % self.modulus
        for _ in range(index):
            current = (self.multiplier * current + self.increment) % self.modulus
        return current


def address_sequence(
    base_address: int,
    fingerprint: int,
    length: int,
    matrix_width: int,
    lcg: LinearCongruentialSequence = LinearCongruentialSequence(),
) -> List[int]:
    """Return the square-hashing address sequence ``{h_i(v)}`` (Equation 2).

    Parameters
    ----------
    base_address:
        ``h(v)``, the node's primary matrix address.
    fingerprint:
        ``f(v)``, which seeds the LR sequence.
    length:
        ``r``, the number of alternative rows/columns per node.
    matrix_width:
        ``m``, the matrix side length; addresses wrap modulo ``m``.
    """
    if matrix_width <= 0:
        raise ValueError("matrix_width must be positive")
    offsets = lcg.generate(fingerprint, length)
    return [(base_address + offset) % matrix_width for offset in offsets]


def recover_address(
    observed_address: int,
    fingerprint: int,
    index: int,
    matrix_width: int,
    lcg: LinearCongruentialSequence = LinearCongruentialSequence(),
) -> int:
    """Invert :func:`address_sequence`: recover ``h(v)`` from ``h_i(v)``.

    Used by the 1-hop successor / precursor queries to rebuild the node hash
    ``H(v) = h(v) * F + f(v)`` of the *other* endpoint stored in a bucket
    (Section V-A, reversibility requirement).
    """
    offset = lcg.value_at(fingerprint, index)
    return (observed_address - offset) % matrix_width


def candidate_sequence(
    source_fingerprint: int,
    destination_fingerprint: int,
    sample_size: int,
    sequence_length: int,
    lcg: LinearCongruentialSequence = LinearCongruentialSequence(),
) -> List[Tuple[int, int]]:
    """Return ``k`` sampled (row-index, column-index) pairs for an edge.

    This implements Equations 4-5: a LR sequence seeded by ``f(s) + f(d)``
    selects ``k`` candidate buckets among the ``r * r`` mapped buckets.  The
    returned pairs are *indices into the address sequences* (0-based), i.e.
    values in ``[0, r)``.
    """
    if sequence_length <= 0:
        raise ValueError("sequence_length must be positive")
    if sample_size < 0:
        raise ValueError("sample_size must be non-negative")
    seed = source_fingerprint + destination_fingerprint
    draws = lcg.generate(seed, sample_size)
    pairs: List[Tuple[int, int]] = []
    span = sequence_length * sequence_length
    for draw in draws:
        position = draw % span
        pairs.append((position // sequence_length, position % sequence_length))
    return pairs


def unique_candidates(pairs: Sequence[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Deduplicate candidate pairs while keeping their first-seen order."""
    seen = set()
    ordered: List[Tuple[int, int]] = []
    for pair in pairs:
        if pair not in seen:
            seen.add(pair)
            ordered.append(pair)
    return ordered
