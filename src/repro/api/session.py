"""The ingestion facade: dataset/stream → summary, chunked, with metrics.

Every experiment runner (and most applications) repeats the same loop: load a
dataset analog, size a sketch for it, feed the stream through the batched
``update_many`` path in chunks, and keep an eye on throughput.
:class:`StreamSession` packages that loop once:

* accepts a ready-made summary, a :class:`~repro.api.registry.SketchSpec`
  or a registered sketch name;
* feeds :class:`~repro.streaming.stream.GraphStream` instances, iterables of
  :class:`~repro.streaming.edge.StreamEdge`, bare ``(source, destination,
  weight)`` triples, or a registered dataset by name;
* auto-sizes a spec without explicit sizing from the stream's statistics
  (``expected_edges`` = the stream's distinct edge count);
* chunks every feed through :class:`~repro.streaming.batch.HashedBatch`:
  summaries exposing the hashed ingest protocol (``update_many_hashed`` +
  ``hash_spec``) receive columnar batches whose node/routing hashes were
  computed exactly once at the session boundary; everything else receives
  the same normalized batches through ``update_many`` (or a scalar loop),
  with timestamps preserved for windowed summaries;
* reports items/batches/seconds/throughput, optionally through a progress
  hook.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Union

from repro.api.protocol import GraphSummary
from repro.api.registry import SketchSpec, SpecSizingError, build
from repro.obs import trace as _obs
from repro.streaming.batch import HashedBatch, HashSpec

__all__ = ["IngestReport", "StreamSession"]


@dataclass
class IngestReport:
    """Metrics of one (or the running total of all) ``feed`` calls.

    ``shard_items`` and ``queue_depth_high_water`` are populated only when
    the summary is a sharded deployment exposing ``shard_ingest_stats()``
    (:class:`~repro.core.partitioned.PartitionedGSS`,
    :class:`~repro.cluster.ShardedSummary`): items routed to each shard *by
    this feed*, and the largest number of batches in flight to any single
    worker observed so far (always 0 for synchronous in-process sharding).
    """

    items: int = 0
    batches: int = 0
    seconds: float = 0.0
    #: Items this feed routed to each shard (``None`` for unsharded summaries).
    shard_items: Optional[List[int]] = None
    #: High-water mark of per-worker batch queue depth (``None`` unsharded).
    queue_depth_high_water: Optional[int] = None

    @property
    def items_per_second(self) -> float:
        """Observed ingestion throughput (0 when nothing was timed)."""
        return self.items / self.seconds if self.seconds > 0 else 0.0

    @property
    def routing_imbalance(self) -> Optional[float]:
        """Max-over-mean of ``shard_items`` (``None`` for unsharded feeds)."""
        if self.shard_items is None:
            return None
        mean = sum(self.shard_items) / len(self.shard_items) if self.shard_items else 0.0
        if mean == 0:
            return 1.0
        return max(self.shard_items) / mean


class StreamSession:
    """Ingestion facade around one summary structure.

    Parameters
    ----------
    summary:
        A summary instance, a :class:`SketchSpec`, or a registered sketch
        name.  A spec (or name) without explicit sizing is built lazily on
        the first ``feed`` of a :class:`GraphStream`, sized for the stream's
        distinct edge count.
    batch_size:
        Chunk size for the batched ``update_many`` path.
    on_progress:
        Optional hook called with an :class:`IngestReport` after every chunk
        and once more when a ``feed`` completes.

    Examples
    --------
    >>> from repro.api import StreamSession
    >>> session = StreamSession("gss")
    >>> report = session.feed_dataset("email-EuAll", scale=0.05)
    >>> summary = session.summary
    >>> summary.edge_query("n1", "n2") is not None or True
    True
    """

    def __init__(
        self,
        summary: Union[GraphSummary, SketchSpec, str],
        *,
        batch_size: int = 1024,
        on_progress: Optional[Callable[[IngestReport], None]] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.batch_size = batch_size
        self.on_progress = on_progress
        self._pending_spec: Optional[SketchSpec] = None
        self._summary: Optional[GraphSummary] = None
        if isinstance(summary, str):
            summary = SketchSpec(summary)
        if isinstance(summary, SketchSpec):
            try:
                # Specs sized any way the registry accepts (explicit size
                # params included) build immediately; only the dedicated
                # needs-sizing rejection defers to the first feed — every
                # other spec error (unknown sketch, bad parameters, missing
                # required ones) fails fast at the call site.
                self._summary = build(summary)
            except SpecSizingError:
                self._pending_spec = summary  # sized on first feed
        else:
            self._summary = summary
        self._total = IngestReport()
        # Cross-batch hash memos threaded through HashedBatch.from_items so a
        # key seen in an earlier chunk (or feed) is never hashed again.
        self._node_memo: Dict[Hashable, int] = {}
        self._route_memo: Dict[Hashable, int] = {}

    # -- summary access ------------------------------------------------------

    @property
    def summary(self) -> GraphSummary:
        """The summary being fed; raises until a lazily-sized spec is built."""
        if self._summary is None:
            raise RuntimeError(
                "the summary has not been built yet: feed a GraphStream (or "
                "dataset) so the spec can be sized, or give the spec explicit "
                "sizing"
            )
        return self._summary

    @property
    def stats(self) -> IngestReport:
        """Cumulative metrics across every ``feed`` call."""
        return self._total

    def _materialize(self, stream) -> GraphSummary:
        """Build a lazily-sized spec from the stream's statistics."""
        if self._summary is None:
            spec = self._pending_spec
            statistics = stream.statistics()
            self._summary = build(
                spec, expected_edges=max(1, statistics.distinct_edges)
            )
            self._pending_spec = None
        return self._summary

    # -- feeding -------------------------------------------------------------

    def feed_dataset(
        self, name: str, *, scale: float = 1.0, seed: Optional[int] = None
    ) -> IngestReport:
        """Load a registered dataset analog and feed it."""
        from repro.datasets.registry import load_dataset

        return self.feed(load_dataset(name, scale=scale, seed=seed))

    def feed(self, source: Union[Iterable, str]) -> IngestReport:
        """Feed a stream into the summary; returns this call's metrics.

        ``source`` may be a :class:`GraphStream`, any iterable of
        ``StreamEdge``-like objects (anything with ``source`` /
        ``destination`` / ``weight`` attributes), an iterable of
        ``(source, destination, weight)`` triples, or a dataset name.
        """
        if isinstance(source, str):
            return self.feed_dataset(source)
        if self._summary is None:
            if not hasattr(source, "statistics"):
                raise RuntimeError(
                    "a spec without sizing can only be auto-sized from a "
                    "GraphStream (or dataset name); give the spec "
                    "memory_bytes/expected_edges to feed raw iterables"
                )
            self._materialize(source)
        summary = self._summary
        # Windowed summaries route items by timestamp, so StreamEdge inputs
        # keep their fourth element; everything else gets plain triples.
        capabilities = getattr(summary, "capabilities", None)
        windowed = bool(capabilities and capabilities().windowed)
        update_many = getattr(summary, "update_many", None)
        # Summaries speaking the hashed ingest protocol publish their hash
        # spec; the session then hashes each chunk exactly once at this
        # boundary and the columns flow through routing into the matrix
        # backends.  Windowed summaries route by timestamp, which the hashed
        # path does not model — they take the normalized-batch path.
        update_many_hashed = getattr(summary, "update_many_hashed", None)
        spec_of = getattr(summary, "hash_spec", None)
        hash_spec: Optional[HashSpec] = None
        if not windowed and callable(update_many_hashed) and callable(spec_of):
            hash_spec = spec_of()
        # Sharded deployments report per-shard routing; snapshot the counters
        # so this feed's delta can be attributed to it.
        shard_stats = getattr(summary, "shard_ingest_stats", None)
        routed_before = list(shard_stats().items_routed) if shard_stats else None

        report = IngestReport()
        started = time.perf_counter()

        def flush(raw_chunk) -> None:
            # One normalization/hashing pass for every ingest tier: hashed
            # consumers get the columns, batched consumers get the normalized
            # items, scalar summaries get a star-unpacked loop (so a windowed
            # summary's timestamp — the optional fourth element — reaches
            # update() instead of being dropped).
            with _obs.span("session.feed.batch"):
                batch = HashedBatch.from_items(
                    raw_chunk,
                    hash_spec,
                    node_memo=self._node_memo,
                    route_memo=self._route_memo,
                    keep_timestamps=windowed,
                )
                if hash_spec is not None:
                    update_many_hashed(batch)
                elif update_many is not None:
                    update_many(batch.items())
                else:
                    for item in batch.items():
                        summary.update(*item)
            report.items += len(batch)
            report.batches += 1
            report.seconds = time.perf_counter() - started
            self._notify(report)

        batch = []
        for item in source:
            batch.append(item)
            if len(batch) >= self.batch_size:
                flush(batch)
                batch = []
        if batch:
            flush(batch)
        # Pipelined summaries (the multi-process cluster) apply batches
        # asynchronously; barrier before stopping the clock so the reported
        # throughput covers the work, not just the routing.
        barrier = getattr(summary, "flush", None)
        if callable(barrier):
            barrier()
        report.seconds = time.perf_counter() - started
        registry = _obs.active()
        if registry is not None:
            # Whole-feed span, recorded from the already-measured report
            # duration (includes the pipelined flush barrier above).
            registry.histogram(
                _obs.SPAN_FAMILY, span="session.feed"
            ).observe(report.seconds)
            registry.counter(
                "repro_session_items_total",
                "Stream items fed through StreamSession.feed.",
            ).inc(report.items)
        if shard_stats is not None:
            after = shard_stats()
            report.shard_items = [
                now - before
                for now, before in zip(after.items_routed, routed_before)
            ]
            report.queue_depth_high_water = after.queue_depth_high_water
        self._total.items += report.items
        self._total.batches += report.batches
        self._total.seconds += report.seconds
        if report.shard_items is not None:
            if self._total.shard_items is None:
                self._total.shard_items = list(report.shard_items)
            else:
                self._total.shard_items = [
                    total + delta
                    for total, delta in zip(self._total.shard_items, report.shard_items)
                ]
            self._total.queue_depth_high_water = report.queue_depth_high_water
        self._notify(report)
        return report

    def _notify(self, report: IngestReport) -> None:
        if self.on_progress is not None:
            self.on_progress(report)
