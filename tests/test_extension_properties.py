"""Hypothesis property tests for the deployment wrappers and stream transforms.

The invariants extend the core GSS properties to the new layers:

* **Merge additivity** — merging sketches of two stream halves never reports
  less than a sketch of the whole stream (both only over-estimate), and never
  under-estimates the true weight.
* **Partitioning transparency** — a sharded deployment preserves the
  no-under-estimation and no-false-negative invariants of a single sketch.
* **Window soundness** — with a window spanning the whole stream, the
  windowed sketch behaves like a plain sketch (no under-estimation).
* **Transform algebra** — deduplicate(sum) preserves total edge weights, and
  reverse twice is the identity on keys.
"""

from __future__ import annotations

from typing import List, Tuple

from hypothesis import given, settings, strategies as st

from repro.core.config import GSSConfig
from repro.core.gss import GSS
from repro.core.merge import merge_into
from repro.core.partitioned import PartitionedGSS
from repro.core.windowed import WindowedGSS
from repro.queries.primitives import EDGE_NOT_FOUND
from repro.streaming.edge import StreamEdge
from repro.streaming.stream import GraphStream
from repro.streaming.transforms import deduplicate, reverse_edges

edge_items = st.tuples(
    st.integers(min_value=0, max_value=20),
    st.integers(min_value=0, max_value=20),
    st.integers(min_value=1, max_value=5),
)
streams = st.lists(edge_items, min_size=1, max_size=50)

small_configs = st.builds(
    GSSConfig,
    matrix_width=st.integers(min_value=2, max_value=16),
    fingerprint_bits=st.sampled_from([8, 12, 16]),
    rooms=st.integers(min_value=1, max_value=2),
    sequence_length=st.integers(min_value=1, max_value=4),
    candidate_buckets=st.integers(min_value=1, max_value=4),
)


def aggregate(items: List[Tuple[int, int, int]]):
    truth = {}
    for source, destination, weight in items:
        truth[(source, destination)] = truth.get((source, destination), 0.0) + weight
    return truth


def to_stream(items: List[Tuple[int, int, int]]) -> GraphStream:
    return GraphStream(
        [
            StreamEdge(source=s, destination=d, weight=float(w), timestamp=float(i))
            for i, (s, d, w) in enumerate(items)
        ]
    )


@given(items=streams, config=small_configs)
@settings(max_examples=60, deadline=None)
def test_merged_halves_never_underestimate(items, config):
    half = len(items) // 2
    first = GSS(config)
    second = GSS(config)
    for source, destination, weight in items[:half]:
        first.update(source, destination, weight)
    for source, destination, weight in items[half:]:
        second.update(source, destination, weight)
    merged = merge_into(GSS(config), first)
    merge_into(merged, second)
    for (source, destination), weight in aggregate(items).items():
        estimate = merged.edge_query(source, destination)
        assert estimate != EDGE_NOT_FOUND
        assert estimate >= weight - 1e-9


@given(items=streams, config=small_configs, partitions=st.integers(min_value=1, max_value=4))
@settings(max_examples=60, deadline=None)
def test_partitioned_never_underestimates(items, config, partitions):
    sharded = PartitionedGSS(config, partitions=partitions)
    for source, destination, weight in items:
        sharded.update(source, destination, weight)
    for (source, destination), weight in aggregate(items).items():
        estimate = sharded.edge_query(source, destination)
        assert estimate != EDGE_NOT_FOUND
        assert estimate >= weight - 1e-9


@given(items=streams, config=small_configs, partitions=st.integers(min_value=1, max_value=4))
@settings(max_examples=40, deadline=None)
def test_partitioned_has_no_false_negative_neighbors(items, config, partitions):
    sharded = PartitionedGSS(config, partitions=partitions)
    successors = {}
    precursors = {}
    for source, destination, weight in items:
        sharded.update(source, destination, weight)
        successors.setdefault(source, set()).add(destination)
        precursors.setdefault(destination, set()).add(source)
    for node, truth in successors.items():
        assert truth <= sharded.successor_query(node)
    for node, truth in precursors.items():
        assert truth <= sharded.precursor_query(node)


@given(items=streams, config=small_configs, slices=st.integers(min_value=1, max_value=5))
@settings(max_examples=60, deadline=None)
def test_full_span_window_never_underestimates(items, config, slices):
    window = WindowedGSS(config, window_span=float(len(items) + 1), slices=slices)
    for position, (source, destination, weight) in enumerate(items):
        window.update(source, destination, weight, timestamp=float(position))
    for (source, destination), weight in aggregate(items).items():
        estimate = window.edge_query(source, destination)
        assert estimate != EDGE_NOT_FOUND
        assert estimate >= weight - 1e-9


@given(items=streams)
@settings(max_examples=80, deadline=None)
def test_deduplicate_sum_preserves_total_weights(items):
    stream = to_stream(items)
    summed = deduplicate(stream, keep="sum")
    assert summed.aggregate_weights() == stream.aggregate_weights()
    assert len(summed) == len(stream.distinct_edge_keys())


@given(items=streams)
@settings(max_examples=80, deadline=None)
def test_reverse_twice_is_identity_on_keys(items):
    stream = to_stream(items)
    round_trip = reverse_edges(reverse_edges(stream))
    assert [edge.key for edge in round_trip] == [edge.key for edge in stream]
    assert [edge.weight for edge in round_trip] == [edge.weight for edge in stream]
