"""Integration tests: every experiment runner produces the paper's shape.

These use the ``quick`` configuration (tiny analogs) so they run in seconds;
the benchmarks under ``benchmarks/`` run the same code at the default scale.
"""

import pytest

from repro.experiments import (
    ExperimentConfig,
    format_table,
    run_buffer_experiment,
    run_edge_query_experiment,
    run_figure3,
    run_node_query_experiment,
    run_precursor_experiment,
    run_reachability_experiment,
    run_subgraph_experiment,
    run_successor_experiment,
    run_triangle_experiment,
    run_update_speed_experiment,
)
from repro.experiments.config import load_streams
from repro.experiments.report import ExperimentResult


@pytest.fixture(scope="module")
def quick_config():
    return ExperimentConfig.quick()


class TestConfig:
    def test_quick_and_paper_scale_presets(self):
        quick = ExperimentConfig.quick()
        paper = ExperimentConfig.paper_scale()
        assert quick.dataset_scale < paper.dataset_scale
        assert len(paper.datasets) == 5

    def test_recommended_width_covers_edges(self, quick_config):
        [(_, stream)] = load_streams(quick_config)
        statistics = stream.statistics()
        width = quick_config.recommended_width(statistics)
        assert width ** 2 * quick_config.rooms >= statistics.distinct_edges

    def test_sample_items_deterministic(self, quick_config):
        items = list(range(1000))
        first = quick_config.sample_items(items)
        second = quick_config.sample_items(items)
        assert first == second
        assert len(first) == quick_config.query_sample

    def test_sample_items_passthrough_when_small(self, quick_config):
        assert quick_config.sample_items([1, 2, 3]) == [1, 2, 3]

    def test_build_tcm_memory_budget(self, quick_config):
        gss = quick_config.build_gss(20, 16)
        tcm = quick_config.build_tcm(gss, 8.0)
        assert tcm.memory_bytes() <= 8 * gss.config.matrix_memory_bytes() * 1.2


class TestReport:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 2.5, "b": "z"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_result_helpers(self):
        result = ExperimentResult(experiment="x", description="demo")
        result.add(dataset="d", value=1.0)
        result.add(dataset="e", value=2.0)
        assert result.filter(dataset="d") == [{"dataset": "d", "value": 1.0}]
        assert result.column("value") == [1.0, 2.0]
        assert "demo" in result.to_text()


class TestFigure3Runner:
    def test_rows_and_claim(self):
        result = run_figure3()
        assert len(result.rows) > 100
        # the paper's reading: small M/|V| makes successor queries useless
        low = [
            row["correct_rate"]
            for row in result.filter(panel="successor_query", ratio=1)
            if row["degree"] >= 8
        ]
        assert all(rate < 0.1 for rate in low)


class TestAccuracyRunners:
    def test_edge_query_gss_beats_tcm(self, quick_config):
        result = run_edge_query_experiment(quick_config)
        gss_are = max(r["are"] for r in result.rows if r["structure"].startswith("GSS"))
        tcm_are = min(r["are"] for r in result.rows if r["structure"].startswith("TCM"))
        assert gss_are <= tcm_are + 1e-9
        assert all(row["are"] >= 0 for row in result.rows)

    def test_successor_gss_beats_tcm(self, quick_config):
        result = run_successor_experiment(quick_config)
        gss = min(r["precision"] for r in result.rows if r["structure"].startswith("GSS"))
        tcm = max(r["precision"] for r in result.rows if r["structure"].startswith("TCM"))
        assert gss >= tcm - 1e-9
        assert gss > 0.9

    def test_precursor_gss_beats_tcm(self, quick_config):
        result = run_precursor_experiment(quick_config)
        gss = min(r["precision"] for r in result.rows if r["structure"].startswith("GSS"))
        tcm = max(r["precision"] for r in result.rows if r["structure"].startswith("TCM"))
        assert gss >= tcm - 1e-9

    def test_node_query_gss_beats_tcm(self, quick_config):
        result = run_node_query_experiment(quick_config)
        gss = max(r["are"] for r in result.rows if r["structure"].startswith("GSS"))
        tcm = min(r["are"] for r in result.rows if r["structure"].startswith("TCM"))
        assert gss <= tcm + 1e-9

    def test_reachability_gss_at_least_tcm(self, quick_config):
        result = run_reachability_experiment(quick_config)
        gss = min(
            r["true_negative_recall"] for r in result.rows if r["structure"].startswith("GSS")
        )
        tcm = max(
            r["true_negative_recall"] for r in result.rows if r["structure"].startswith("TCM")
        )
        assert gss >= tcm - 1e-9


class TestStructureRunners:
    def test_buffer_ablation_ordering(self, quick_config):
        result = run_buffer_experiment(quick_config)
        assert len(result.rows) == 4 * len(result.filter(configuration="Room=2"))
        for row_with in result.filter(configuration="Room=2"):
            matching = [
                row
                for row in result.filter(configuration="Room=2(NoSquareHash)")
                if row["dataset"] == row_with["dataset"] and row["width"] == row_with["width"]
            ]
            assert matching and row_with["buffer_pct"] <= matching[0]["buffer_pct"] + 1e-9

    def test_update_speed_rows(self, quick_config):
        result = run_update_speed_experiment(quick_config)
        structures = {row["structure"] for row in result.rows}
        assert structures == {
            "GSS",
            "GSS(update_many)",
            "GSS(no sampling)",
            "TCM",
            "TCM(update_many)",
            "Adjacency Lists",
        }
        assert all(row["edges_per_second"] > 0 for row in result.rows)

    def test_triangle_runner(self, quick_config):
        result = run_triangle_experiment(quick_config)
        gss_errors = [r["relative_error"] for r in result.rows if r["structure"] == "GSS"]
        assert gss_errors and all(error < 0.2 for error in gss_errors)

    def test_subgraph_runner(self, quick_config):
        result = run_subgraph_experiment(quick_config)
        assert result.rows
        exact_rates = [r["correct_rate"] for r in result.rows if "exact" in r["structure"]]
        gss_rates = [r["correct_rate"] for r in result.rows if r["structure"] == "GSS"]
        assert all(rate == 1.0 for rate in exact_rates)
        assert all(rate >= 0.8 for rate in gss_rates)
